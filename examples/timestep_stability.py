#!/usr/bin/env python
"""FMM time-stepping: does the SFC ranking survive a drifting input?

§VI-A observes that although the absolute ACD varies with the particle
distribution, "since the relative performance of the curves is
unchanged, there is no incentive to shift the ordering of particles
between FMM iterations to reflect the dynamically changing particle
distribution profile."  This example simulates exactly that scenario: a
Gaussian particle cloud drifts across the domain over several timesteps
and the NFI/FFI ACD of every curve is tracked along the way.

Run with::

    python examples/timestep_stability.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.distributions import Particles
from repro.sfc.registry import PAPER_CURVES

ORDER = 8  # 256 x 256 lattice
NUM_PARTICLES = 6_000
NUM_PROCESSORS = 1_024
TIMESTEPS = 6


def drifting_cloud(step: int, rng: np.random.Generator) -> Particles:
    """A Gaussian cloud whose centre moves along the diagonal each step."""
    side = 1 << ORDER
    centre = side * (0.25 + 0.5 * step / (TIMESTEPS - 1))
    sigma = side / 10
    seen: set[tuple[int, int]] = set()
    while len(seen) < NUM_PARTICLES:
        x = np.rint(rng.normal(centre, sigma, 4 * NUM_PARTICLES)).astype(np.int64)
        y = np.rint(rng.normal(centre, sigma, 4 * NUM_PARTICLES)).astype(np.int64)
        ok = (x >= 0) & (x < side) & (y >= 0) & (y < side)
        seen.update(zip(x[ok].tolist(), y[ok].tolist()))
    cells = np.asarray(sorted(seen)[:NUM_PARTICLES], dtype=np.int64)
    return Particles(cells[:, 0], cells[:, 1], ORDER)


def main() -> None:
    rng = np.random.default_rng(99)
    networks = {
        curve: repro.make_topology("torus", NUM_PROCESSORS, processor_curve=curve)
        for curve in PAPER_CURVES
    }
    models = {
        curve: repro.FmmCommunicationModel(net, particle_curve=curve, radius=1)
        for curve, net in networks.items()
    }

    print(f"{'step':>5}" + "".join(f"{c:>12}" for c in PAPER_CURVES) + "   best")
    rankings = []
    for step in range(TIMESTEPS):
        particles = drifting_cloud(step, rng)
        acds = {c: models[c].evaluate(particles).nfi_acd for c in PAPER_CURVES}
        ranking = tuple(sorted(acds, key=acds.get))
        rankings.append(ranking)
        row = "".join(f"{acds[c]:12.4f}" for c in PAPER_CURVES)
        print(f"{step:>5}{row}   {ranking[0]}")

    winners = {r[0] for r in rankings}
    print(f"\nwinning curve at every timestep: {sorted(winners)}")
    if len(winners) == 1:
        print(
            "the ranking is stable while the cloud drifts -> as the paper"
            " concludes, there is no incentive to re-order particles with a"
            " different SFC between FMM iterations."
        )
    else:
        print("the ranking moved; re-ordering between iterations could pay off.")


if __name__ == "__main__":
    main()
