#!/usr/bin/env python
"""Proximity-preservation study beyond the paper's Fig. 5.

Reproduces the §V ANNS sweep and then pushes into the extensions: the
snake curve (the continuous analogue of row-major singled out by Xu &
Tirthapura), the contrast with the clustering metric (where the ranking
*reverses*), and the 3D curves (future-work item ii).

Run with::

    python examples/anns_exploration.py
"""

from __future__ import annotations

from repro.metrics import anns, anns3d, average_clusters, neighbor_stretch

CURVES_2D = ("hilbert", "zcurve", "gray", "rowmajor", "snake")
CURVES_3D = ("hilbert3d", "morton3d", "gray3d", "rowmajor3d", "snake3d")


def main() -> None:
    print("== Fig. 5(a) reproduction + snake extension (ANNS, radius 1) ==")
    print(f"{'side':>6}" + "".join(f"{c:>12}" for c in CURVES_2D))
    for order in range(2, 9):
        row = [f"{anns(c, order):12.3f}" for c in CURVES_2D]
        print(f"{1 << order:>6}" + "".join(row))

    print("\n== generalised stretch at radius 6 (Fig. 5(b)) ==")
    print(f"{'side':>6}" + "".join(f"{c:>12}" for c in CURVES_2D))
    for order in (5, 7):
        row = [f"{neighbor_stretch(c, order, radius=6).mean:12.3f}" for c in CURVES_2D]
        print(f"{1 << order:>6}" + "".join(row))

    print("\n== the clustering metric reverses the ranking (Moon et al.) ==")
    print("average clusters per 8x8 range query on a 128-lattice:")
    for name in CURVES_2D:
        val = average_clusters(name, 7, query_size=8, rng=0, samples=300)
        print(f"  {name:>10}: {val:7.3f}")
    print(
        "note: Hilbert wins clustering but loses ANNS — the paper's §V"
        " 'surprising' contrast between the two proximity notions."
    )

    print("\n== 3D extension: six-neighbour ANNS on a 16^3 lattice ==")
    for name in CURVES_3D:
        print(f"  {name:>12}: {anns3d(name, 4):10.3f}")
    print("(Z/row-major stay ahead of Hilbert/Gray in 3D as well)")


if __name__ == "__main__":
    main()
