#!/usr/bin/env python
"""Design guide: choose SFCs and a topology for an FMM-type application.

The paper closes §VI with a list of recommendations for implementers.
This example reproduces that decision process for a concrete workload:
it sweeps the SFC pairings on the available networks, folds in the
collective phases the application performs between FMM iterations
(§VII), and prints a ranked recommendation.

Run with::

    python examples/design_guide.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.metrics import compute_acd
from repro.primitives import allgather_ring, allreduce
from repro.sfc.registry import PAPER_CURVES

NUM_PARTICLES = 15_000
ORDER = 9  # 512 x 512 lattice
NUM_PROCESSORS = 1_024
RADIUS = 2


def evaluate_candidate(topology_name: str, curve: str, particles) -> dict:
    """Total per-iteration ACD of the application on one configuration."""
    network = repro.make_topology(topology_name, NUM_PROCESSORS, processor_curve=curve)
    model = repro.FmmCommunicationModel(network, particle_curve=curve, radius=RADIUS)
    report = model.evaluate(particles)

    # Between iterations the application allreduces the error norm and
    # allgathers boundary metadata (one of each per timestep).
    ranks = np.arange(NUM_PROCESSORS)
    allreduce_acd = compute_acd(allreduce(ranks), network).acd
    allgather_acd = compute_acd(allgather_ring(ranks), network).acd

    return {
        "topology": topology_name,
        "curve": curve,
        "nfi": report.nfi_acd,
        "ffi": report.ffi_acd,
        "allreduce": allreduce_acd,
        "allgather": allgather_acd,
        # weight phases by their message volume share in a typical FMM step
        "score": (
            0.5 * report.nfi_acd
            + 0.4 * report.ffi_acd
            + 0.05 * allreduce_acd
            + 0.05 * allgather_acd
        ),
    }


def main() -> None:
    particles = repro.get_distribution("exponential").sample(NUM_PARTICLES, ORDER, rng=7)
    print(
        f"workload: {NUM_PARTICLES} exponentially-distributed particles, "
        f"{NUM_PROCESSORS} processors, near-field radius {RADIUS}\n"
    )

    candidates = [
        evaluate_candidate(topo, curve, particles)
        for topo in ("mesh", "torus", "quadtree", "hypercube")
        for curve in PAPER_CURVES
    ]
    candidates.sort(key=lambda c: c["score"])

    header = f"{'topology':>10} {'SFC':>10} {'NFI':>8} {'FFI':>8} {'allred':>8} {'allgat':>8} {'score':>8}"
    print(header)
    print("-" * len(header))
    for c in candidates:
        print(
            f"{c['topology']:>10} {c['curve']:>10} {c['nfi']:8.3f} {c['ffi']:8.3f} "
            f"{c['allreduce']:8.3f} {c['allgather']:8.3f} {c['score']:8.3f}"
        )

    best = candidates[0]
    print(
        f"\nrecommendation: run on a {best['topology']} with the "
        f"{best['curve']} curve for both particle and processor ordering."
    )
    print(
        "(the paper's §VI conclusion at this regime: recursive curves beat "
        "row-major by a wide margin, and the Hilbert curve is the safest default)"
    )


if __name__ == "__main__":
    main()
