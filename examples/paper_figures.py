#!/usr/bin/env python
"""Regenerate the paper's illustrative figures (Figs. 1-4) as text art.

Fig. 1 — the four space-filling curves; discontinuities show as open
line ends.  Fig. 2 — the three input distributions as density plots.
Fig. 3 — the linear order an SFC assigns to exponentially-distributed
particles.  Fig. 4 — an interaction-list example.

Run with::

    python examples/paper_figures.py
"""

from __future__ import annotations

from repro.distributions import get_distribution
from repro.viz import (
    render_curve,
    render_interaction_list,
    render_particle_order,
    render_particles,
)


def main() -> None:
    print("== Fig. 1: the study's space-filling curves (order 4) ==\n")
    for name in ("hilbert", "zcurve", "gray", "rowmajor"):
        print(f"--- {name} ---")
        print(render_curve(name, 4))
        print()

    print("== Fig. 2: input distributions (4096 particles, 128x128 lattice) ==\n")
    for name in ("uniform", "normal", "exponential"):
        particles = get_distribution(name).sample(4096, 7, rng=13)
        print(f"--- {name} ---")
        print(render_particles(particles, width=32))
        print()

    print("== Fig. 3: particle order under an exponential distribution ==\n")
    particles = get_distribution("exponential").sample(24, 3, rng=5)
    for name in ("hilbert", "zcurve"):
        print(f"--- {name} order ---")
        print(render_particle_order(particles, name))
        print()

    print("== Fig. 4: interaction lists at a finer resolution ==\n")
    print(render_interaction_list(3, 4, level=4))


if __name__ == "__main__":
    main()
