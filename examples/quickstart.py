#!/usr/bin/env python
"""Quickstart: evaluate the ACD of one FMM problem instance.

This walks the paper's §IV pipeline end to end on a small problem:

1. draw particles from an input distribution,
2. build a processor network whose ranks are placed by a
   processor-order SFC,
3. order and chunk the particles with a particle-order SFC,
4. generate the near-field and far-field communication events,
5. report the Average Communicated Distance of each phase.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. 20 000 particles on a 256 x 256 lattice, uniformly distributed.
    distribution = repro.get_distribution("uniform")
    particles = distribution.sample(20_000, order=8, rng=42)
    print(f"sampled {len(particles)} particles on a {particles.side}x{particles.side} lattice")

    # 2. A 32 x 32 torus (1024 processors) ranked by the Hilbert curve.
    network = repro.make_topology("torus", 1024, processor_curve="hilbert")
    print(f"network: {network!r}, diameter {network.diameter}")

    # 3-5. The FMM communication model evaluates everything in one call.
    model = repro.FmmCommunicationModel(network, particle_curve="hilbert", radius=1)
    report = model.evaluate(particles)

    print(f"\nnear-field ACD : {report.nfi_acd:8.4f}  ({report.nfi.count} communications)")
    print(f"far-field  ACD : {report.ffi_acd:8.4f}  ({report.ffi['combined'].count} communications)")
    for phase in ("interpolation", "anterpolation", "interaction"):
        result = report.ffi[phase]
        print(f"  {phase:<14s}: {result.acd:8.4f}  ({result.count} communications)")

    # Contrast with the naive row-major baseline the paper warns about.
    baseline_net = repro.make_topology("torus", 1024, processor_curve="rowmajor")
    baseline = repro.FmmCommunicationModel(baseline_net, particle_curve="rowmajor", radius=1)
    base_report = baseline.evaluate(particles)
    print(f"\nrow-major/row-major baseline: NFI {base_report.nfi_acd:.4f}, FFI {base_report.ffi_acd:.4f}")
    print(
        f"Hilbert/Hilbert reduces NFI ACD by "
        f"{base_report.nfi_acd / report.nfi_acd:.1f}x and FFI ACD by "
        f"{base_report.ffi_acd / report.ffi_acd:.1f}x"
    )


if __name__ == "__main__":
    main()
