#!/usr/bin/env python
"""§VII end-to-end: predict the best configuration for a custom solver.

An (invented, but structurally realistic) iterative PDE solver performs,
per timestep: a near-field halo exchange of its SFC-partitioned unknowns
(4 sub-iterations), one residual allreduce, one log-tree broadcast of
the new timestep size, and — every timestep — a ring allgather of
boundary metadata.  The paper's §VII claims the ACD of each primitive
"can be computed in advance ... to allow algorithm designers to select
the appropriate SFCs for data separation and processor ranking"; this
script does exactly that with :class:`repro.application.ApplicationModel`,
then sanity-checks the winner against the contention simulator.

Run with::

    python examples/custom_application.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.application import ApplicationModel, recommend_configuration
from repro.contention import simulate_exchange
from repro.fmm import nfi_events
from repro.partition import partition_particles
from repro.primitives import allgather_ring, allreduce, broadcast

NUM_PARTICLES = 10_000
ORDER = 8  # 256 x 256 unknowns lattice
NUM_PROCESSORS = 256


def build_model(particle_curve: str) -> ApplicationModel:
    """Assemble the solver's per-timestep communication phases."""
    particles = repro.get_distribution("uniform").sample(NUM_PARTICLES, ORDER, rng=5)
    assignment = partition_particles(particles, particle_curve, NUM_PROCESSORS)
    halo = nfi_events(assignment, radius=1)

    model = ApplicationModel(f"solver[{particle_curve}]")
    model.add_phase("halo exchange", halo, repeats=4)
    model.add_phase("residual allreduce", lambda t: allreduce(np.arange(t.num_processors)))
    model.add_phase("dt broadcast", lambda t: broadcast(np.arange(t.num_processors)))
    model.add_phase("boundary allgather", lambda t: allgather_ring(np.arange(t.num_processors)))
    return model


def main() -> None:
    candidates = {}
    for topo in ("mesh", "torus", "quadtree", "hypercube"):
        for proc_curve in ("hilbert", "zcurve", "rowmajor"):
            label = f"{topo}/{proc_curve}"
            candidates[label] = repro.make_topology(
                topo, NUM_PROCESSORS, processor_curve=proc_curve
            )

    model = build_model(particle_curve="hilbert")
    ranked = recommend_configuration(model, candidates)

    print(f"candidate configurations for '{model.name}' (best first):\n")
    header = f"{'configuration':>22} {'total hops/step':>16} {'ACD':>8}"
    print(header)
    print("-" * len(header))
    for label, report in ranked[:6]:
        total = report.total
        print(f"{label:>22} {total.total_distance:>16} {total.acd:>8.3f}")
    print("   ...")
    for label, report in ranked[-2:]:
        total = report.total
        print(f"{label:>22} {total.total_distance:>16} {total.acd:>8.3f}")

    best_label, best_report = ranked[0]
    print(f"\nper-phase breakdown on {best_label}:")
    for phase, result in best_report.phases.items():
        reps = best_report.repeats[phase]
        print(f"  {phase:<20s} x{reps}: ACD {result.acd:7.3f} ({result.count} msgs)")

    # sanity-check the winner under contention for the dominant phase
    best_net = candidates[best_label]
    particles = repro.get_distribution("uniform").sample(NUM_PARTICLES, ORDER, rng=5)
    halo = nfi_events(partition_particles(particles, "hilbert", NUM_PROCESSORS))
    sim = simulate_exchange(halo, best_net)
    print(
        f"\ncontention check on {best_label}: halo exchange drains in "
        f"{sim.makespan} cycles (congestion bound {sim.congestion}, "
        f"schedule stretch {sim.stretch_over_bounds:.2f})"
    )


if __name__ == "__main__":
    main()
