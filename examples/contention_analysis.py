#!/usr/bin/env python
"""Contention extension: from average distance to link congestion.

The ACD is contention-unaware by design (§IV); the paper's future work
item (i) asks how congestion changes the picture.  This example routes
the near-field traffic of each SFC pairing on a torus with XY routing,
prints the per-link load statistics next to the ACD, and shows the load
distribution of the best and worst configuration.

Run with::

    python examples/contention_analysis.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.contention import link_loads, simulate_exchange
from repro.fmm import nfi_events
from repro.metrics import compute_acd
from repro.partition import partition_particles
from repro.sfc.registry import PAPER_CURVES

NUM_PARTICLES = 20_000
ORDER = 8
NUM_PROCESSORS = 1_024


def sparkline(counts: np.ndarray) -> str:
    """Tiny text histogram (one char per bin)."""
    blocks = " .:-=+*#%@"
    top = counts.max() if counts.max() else 1
    return "".join(blocks[min(int(9 * c / top), 9)] for c in counts)


def main() -> None:
    particles = repro.get_distribution("uniform").sample(NUM_PARTICLES, ORDER, rng=21)
    print(
        f"routing NFI traffic of {NUM_PARTICLES} particles on a "
        f"{NUM_PROCESSORS}-processor torus (XY routing)\n"
    )

    results = {}
    print(f"{'curve':>10} {'ACD':>8} {'max link':>9} {'mean link':>10} {'imbalance':>10}")
    for curve in PAPER_CURVES:
        network = repro.make_topology("torus", NUM_PROCESSORS, processor_curve=curve)
        assignment = partition_particles(particles, curve, NUM_PROCESSORS)
        events = nfi_events(assignment)
        acd = compute_acd(events, network).acd
        loads = link_loads(events, network)
        imbalance = loads.max_load / loads.mean_load if loads.mean_load else 0.0
        results[curve] = loads
        print(
            f"{curve:>10} {acd:8.4f} {loads.max_load:9d} "
            f"{loads.mean_load:10.3f} {imbalance:10.2f}x"
        )

    print("\nload histograms (20 bins, left = idle links, right = hottest):")
    for curve in ("hilbert", "rowmajor"):
        counts, _ = results[curve].load_histogram(bins=20)
        print(f"  {curve:>10} |{sparkline(counts)}|")

    print("\nstore-and-forward simulation (unit-capacity links, all injected at cycle 0):")
    print(f"{'curve':>10} {'makespan':>9} {'mean lat':>9} {'congestion':>11} {'stretch':>8}")
    for curve in PAPER_CURVES:
        network = repro.make_topology("torus", NUM_PROCESSORS, processor_curve=curve)
        assignment = partition_particles(particles, curve, NUM_PROCESSORS)
        sim = simulate_exchange(nfi_events(assignment), network)
        print(
            f"{curve:>10} {sim.makespan:9d} {sim.mean_latency:9.2f} "
            f"{sim.congestion:11d} {sim.stretch_over_bounds:8.2f}"
        )

    print(
        "\nthe ACD winner also minimises total traffic and its worst link"
        " carries far less than the row-major hot spot; in the simulation the"
        " recursive curves finish several times sooner than row-major — the"
        " contention-unaware ranking's headline survives queueing at this load."
    )


if __name__ == "__main__":
    main()
