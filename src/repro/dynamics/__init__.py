"""Time-evolution layer: motion models, step loop, repartitioning.

Drives the static distributions of :mod:`repro.distributions` through a
seeded step loop (drift / diffusion / orbit motion with reflecting
lattice boundaries), re-sorting and re-chunking along the particle-order
curve each step.  The :mod:`repro.experiments.dynamics_study` module
composes this layer with the metric engine into the ``dynamic`` study.
"""

from repro.dynamics.boundary import reflect_positions
from repro.dynamics.evolution import (
    TrajectorySpec,
    clear_trajectory_cache,
    evolve_step,
    resolve_collisions,
    trajectory,
)
from repro.dynamics.motion import (
    MOTIONS,
    DiffusionMotion,
    DriftMotion,
    Motion,
    OrbitMotion,
    get_motion,
)
from repro.dynamics.repartition import migration_volume, owners_by_id, stale_assignment

__all__ = [
    "reflect_positions",
    "Motion",
    "DriftMotion",
    "DiffusionMotion",
    "OrbitMotion",
    "MOTIONS",
    "get_motion",
    "TrajectorySpec",
    "trajectory",
    "clear_trajectory_cache",
    "evolve_step",
    "resolve_collisions",
    "owners_by_id",
    "migration_volume",
    "stale_assignment",
]
