"""Per-step repartitioning and migration accounting.

After every evolution step the particles are re-ordered along the
particle-order curve and re-chunked onto processors — exactly the static
pipeline of :func:`repro.partition.assignment.partition_particles`, run
once per frame.  This module adds the temporal bookkeeping the dynamic
study needs on top of that:

* :func:`owners_by_id` — the owning rank of every particle *by particle
  id* (array index), which is the stable identity across frames;
* :func:`migration_volume` — how many particles changed owner between
  two frames, and the hop-weighted cost of shipping them on the
  evaluation topology;
* :func:`stale_assignment` — the counterfactual where the step-0
  partition is never refreshed: current positions, frozen ownership.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.partition.assignment import Assignment
from repro.partition.chunking import chunk_assignment
from repro.partition.ordering import curve_keys
from repro.sfc.base import SpaceFillingCurve
from repro.topology.base import Topology
from repro.util.validation import check_positive

__all__ = ["owners_by_id", "migration_volume", "stale_assignment"]


def owners_by_id(
    particles: Particles,
    curve: SpaceFillingCurve | str,
    num_processors: int,
) -> IntArray:
    """Owning rank per particle id after a curve re-sort and re-chunk.

    ``result[i]`` is the rank that owns particle ``i`` (the ``i``-th
    entry of the particle arrays) once the set is sorted along ``curve``
    and contiguously chunked onto ``num_processors`` ranks.  Identity is
    positional, so two frames of the same trajectory can be compared
    element-wise.
    """
    p = check_positive(num_processors, "num_processors")
    keys = curve_keys(particles, curve)
    perm = np.argsort(keys, kind="stable")
    owners = np.empty(len(particles), dtype=np.int64)
    owners[perm] = chunk_assignment(len(particles), p)
    return owners


def migration_volume(
    prev_owners: IntArray,
    next_owners: IntArray,
    topology: Topology | None = None,
) -> tuple[int, int]:
    """Count particles whose owner changed, plus hop-weighted cost.

    Returns ``(migrated, hops)``: ``migrated`` is the number of ids with
    differing owners between the two frames, and ``hops`` is the sum of
    topology distances from old to new owner (``0`` when no topology is
    given).  Both are exact integers, so pooled results are bit-stable.
    """
    prev = np.asarray(prev_owners)
    nxt = np.asarray(next_owners)
    if prev.shape != nxt.shape:
        raise ValueError(
            f"owner arrays must be equal length, got {prev.shape} vs {nxt.shape}"
        )
    changed = prev != nxt
    migrated = int(np.count_nonzero(changed))
    if migrated == 0 or topology is None:
        return migrated, 0
    hops = int(topology.distance(prev[changed], nxt[changed]).sum())
    return migrated, hops


def stale_assignment(
    particles: Particles,
    curve: SpaceFillingCurve | str,
    owners: IntArray,
    num_processors: int,
) -> Assignment:
    """Assignment pairing *current* positions with *frozen* ownership.

    This is the "never repartition" counterfactual: particles have moved
    but each is still owned by the rank assigned at step 0 (``owners``
    indexed by particle id).  The particles are sorted along ``curve``
    (event generation expects curve order) while the ownership array is
    permuted alongside them, so ``owner_grid`` reflects the stale
    placement.  The ``processor`` array is generally *not* non-decreasing
    here — that is the point of the counterfactual.
    """
    p = check_positive(num_processors, "num_processors")
    owner_arr = np.asarray(owners, dtype=np.int64)
    if owner_arr.shape != (len(particles),):
        raise ValueError(
            f"owners must have one entry per particle, got shape {owner_arr.shape} "
            f"for {len(particles)} particles"
        )
    keys = curve_keys(particles, curve)
    perm = np.argsort(keys, kind="stable")
    sorted_keys = keys[perm]
    distinct = np.ones(sorted_keys.size, dtype=bool)
    distinct[1:] = sorted_keys[1:] != sorted_keys[:-1]
    if not distinct.all():
        raise ValueError(
            "particles collide on the lattice; resolve collisions during evolution "
            "before building a stale assignment"
        )
    sorted_particles = Particles(particles.x[perm], particles.y[perm], particles.order)
    return Assignment(sorted_particles, sorted_keys, owner_arr[perm], p)
