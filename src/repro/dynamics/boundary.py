"""Reflecting lattice boundaries for time-evolving particle sets.

:class:`~repro.distributions.base.Particles` rejects any coordinate
outside ``[0, 2**order)`` — a drift step that walks off the lattice must
therefore apply a boundary condition *before* constructing the next
step's particle set.  The documented condition for the dynamics layer is
specular reflection: positions fold back off the walls (a particle at
``side - 1`` proposing ``side`` lands on ``side - 2``), which preserves
particle count and keeps trajectories on the lattice for displacements
of any magnitude.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.util.validation import as_index_array, check_positive

__all__ = ["reflect_positions"]


def reflect_positions(positions, side: int) -> IntArray:
    """Fold proposed coordinates back into ``[0, side)`` by reflection.

    The fold is the triangle wave of period ``2 * side - 2``: ``side``
    maps to ``side - 2``, ``-1`` maps to ``1``, and overshoots larger
    than the lattice bounce repeatedly, exactly as a specular wall
    would.  Scalars and arrays are both accepted; the result is always
    ``int64``.
    """
    side = check_positive(side, "side")
    pos = as_index_array(positions, "positions")
    if side == 1:
        return np.zeros_like(pos)
    period = 2 * side - 2
    folded = np.mod(pos, period)
    return np.where(folded >= side, period - folded, folded)
