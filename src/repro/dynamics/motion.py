"""Motion models driving particle sets through time.

Each model turns the current integer particle positions into *proposed*
positions for the next step.  Proposals are always folded back onto the
lattice by :func:`~repro.dynamics.boundary.reflect_positions`; collision
resolution (two particles proposing the same cell) is the job of
:mod:`repro.dynamics.evolution`, not the motion model.

Models are registered in :data:`MOTIONS` so studies can name them with
strings and rebuild them from JSON-native parameter dicts — the same
(name, params) pair is embedded in result-store keys, making trajectories
content-addressable.

Three models cover the scenario axes of the dynamic study:

``drift``
    Per-particle constant velocities drawn once at initialisation;
    velocity components flip sign when the unreflected proposal leaves
    the lattice, so particle streams bounce off the walls coherently.
``diffusion``
    Independent bounded random jumps each step (no state), modelling
    thermal churn that slowly decorrelates any initial structure.
``orbit``
    Deterministic differential rotation about the lattice centre —
    inner particles sweep faster than outer ones, shearing clustered
    (astrophysical) distributions while keeping them clustered.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.dynamics.boundary import reflect_positions
from repro.util.registry import Registry
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "Motion",
    "DriftMotion",
    "DiffusionMotion",
    "OrbitMotion",
    "MOTIONS",
    "get_motion",
]

#: Opaque per-trajectory motion state (arrays keyed by name).
MotionState = dict[str, Any]


class Motion(abc.ABC):
    """A rule producing proposed next-step positions for every particle."""

    #: Registry name of the motion model; set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def params(self) -> dict[str, Any]:
        """JSON-native constructor parameters (round-trips via ``MOTIONS``)."""

    def init_state(self, particles: Particles, rng: np.random.Generator) -> MotionState:
        """Draw any per-trajectory state (velocities, phases) at step 0."""
        del particles, rng
        return {}

    @abc.abstractmethod
    def propose(
        self,
        particles: Particles,
        state: MotionState,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray, MotionState]:
        """Return in-bounds proposed ``(x, y)`` plus the successor state."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"


class DriftMotion(Motion):
    """Constant per-particle velocities with specular wall bounces."""

    name = "drift"

    def __init__(self, speed: int = 1):
        self.speed = check_positive(speed, "speed")

    def params(self) -> dict[str, Any]:
        return {"speed": self.speed}

    def init_state(self, particles: Particles, rng: np.random.Generator) -> MotionState:
        n = len(particles)
        s = self.speed
        vx = rng.integers(-s, s + 1, size=n, dtype=np.int64)
        vy = rng.integers(-s, s + 1, size=n, dtype=np.int64)
        stuck = (vx == 0) & (vy == 0)
        vx = np.where(stuck, np.int64(s), vx)
        return {"vx": vx, "vy": vy}

    def propose(
        self,
        particles: Particles,
        state: MotionState,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray, MotionState]:
        del rng
        side = particles.side
        vx, vy = state["vx"], state["vy"]
        raw_x = particles.x + vx
        raw_y = particles.y + vy
        px = reflect_positions(raw_x, side)
        py = reflect_positions(raw_y, side)
        new_state = {
            "vx": np.where(px != raw_x, -vx, vx),
            "vy": np.where(py != raw_y, -vy, vy),
        }
        return px, py, new_state


class DiffusionMotion(Motion):
    """Independent bounded random jumps each step (stateless churn)."""

    name = "diffusion"

    def __init__(self, scale: int = 1):
        self.scale = check_positive(scale, "scale")

    def params(self) -> dict[str, Any]:
        return {"scale": self.scale}

    def propose(
        self,
        particles: Particles,
        state: MotionState,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray, MotionState]:
        del state
        n = len(particles)
        s = self.scale
        jx = rng.integers(-s, s + 1, size=n, dtype=np.int64)
        jy = rng.integers(-s, s + 1, size=n, dtype=np.int64)
        px = reflect_positions(particles.x + jx, particles.side)
        py = reflect_positions(particles.y + jy, particles.side)
        return px, py, {}


class OrbitMotion(Motion):
    """Differential rotation about the lattice centre (cluster shear).

    Angular speed falls off linearly with radius, so inner particles lap
    outer ones — clustered distributions stay clustered but their shape
    shears, which is the interesting regime for curve-locality drift.
    The map is a pure function of the current positions (no RNG), so the
    per-step seeds only feed the other models.
    """

    name = "orbit"

    def __init__(self, sweep: int = 12, shear: int = 2):
        #: Full revolutions near the centre take ``sweep`` steps.
        self.sweep = check_positive(sweep, "sweep")
        #: Outer angular speed is ``1 / (1 + shear)`` of the inner speed.
        self.shear = check_nonnegative(shear, "shear")

    def params(self) -> dict[str, Any]:
        return {"sweep": self.sweep, "shear": self.shear}

    def propose(
        self,
        particles: Particles,
        state: MotionState,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray, MotionState]:
        del state, rng
        side = particles.side
        centre = (side - 1) / 2.0
        dx = particles.x.astype(np.float64) - centre
        dy = particles.y.astype(np.float64) - centre
        radius = np.hypot(dx, dy)
        rmax = max(centre * np.sqrt(2.0), 1.0)
        omega = (2.0 * np.pi / self.sweep) / (1.0 + self.shear * radius / rmax)
        cos_w, sin_w = np.cos(omega), np.sin(omega)
        nx = np.rint(centre + dx * cos_w - dy * sin_w).astype(np.int64)
        ny = np.rint(centre + dx * sin_w + dy * cos_w).astype(np.int64)
        px = reflect_positions(nx, side)
        py = reflect_positions(ny, side)
        return px, py, {}


MOTIONS: Registry[Motion] = Registry("motion")
MOTIONS.register("drift", DriftMotion)
MOTIONS.register("diffusion", DiffusionMotion, aliases=("random-walk",))
MOTIONS.register("orbit", OrbitMotion, aliases=("rotation",))


def get_motion(name: str, **params: Any) -> Motion:
    """Instantiate the motion model registered under ``name``."""
    return MOTIONS.create(name, **params)
