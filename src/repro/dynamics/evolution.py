"""Time evolution of particle sets: step loop, collisions, trajectories.

The FMM model requires at most one particle per finest-level cell, so a
motion model's raw proposals cannot be applied directly — two particles
may propose the same cell.  :func:`resolve_collisions` applies a
deterministic, order-free acceptance rule:

* a move is accepted only if its target cell was **unoccupied before the
  step** (even if the occupant itself moves away this step), and
* when several particles propose the same free cell, the lowest particle
  id wins; the rest stay put.

Both clauses are pure functions of the (current, proposed) arrays, so
the outcome is independent of evaluation order, worker count, and
platform — a prerequisite for the bit-identical jobs=1 / jobs=4
guarantee of the dynamic study.

Trajectories are seeded with ``SeedSequence`` spawns: child ``0`` draws
the initial distribution, child ``1`` initialises motion state, and step
``t`` consumes child ``1 + t``.  Because spawning is a pure function of
the root entropy and the child index, frame ``t`` is identical no matter
how many total steps a caller asks for — a trajectory of length ``T1``
is a strict prefix of the same spec run to ``T2 > T1``, which is what
lets the study key its result store by ``step`` alone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._typing import IntArray
from repro.distributions import get_distribution
from repro.distributions.base import Particles
from repro.dynamics.motion import Motion, MotionState, get_motion
from repro.util.validation import check_nonnegative

__all__ = [
    "resolve_collisions",
    "evolve_step",
    "TrajectorySpec",
    "trajectory",
    "clear_trajectory_cache",
]


def resolve_collisions(current: IntArray, proposed: IntArray) -> tuple[IntArray, int]:
    """Accept non-conflicting moves; return (next codes, accepted count).

    ``current`` must contain distinct cell codes; the result does too
    (accepted targets are free cells, pairwise distinct, and disjoint
    from every pre-step cell, so no stayer can be collided with).
    """
    out = current.copy()
    moving = np.flatnonzero(proposed != current)
    if moving.size == 0:
        return out, 0
    free = ~np.isin(proposed[moving], current)
    cand = moving[free]
    if cand.size == 0:
        return out, 0
    targets = proposed[cand]
    order = np.lexsort((cand, targets))
    sorted_targets = targets[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = sorted_targets[1:] != sorted_targets[:-1]
    winners = cand[order[first]]
    out[winners] = proposed[winners]
    return out, int(winners.size)


def evolve_step(
    particles: Particles,
    motion: Motion,
    state: MotionState,
    rng: np.random.Generator,
) -> tuple[Particles, MotionState, int]:
    """Advance one step: propose, resolve collisions, rebuild particles.

    Returns the next particle set (same ids, same array positions — the
    index ``i`` of every array is the persistent particle identity), the
    successor motion state, and the number of particles that moved.
    """
    px, py, next_state = motion.propose(particles, state, rng)
    side = np.int64(particles.side)
    codes, accepted = resolve_collisions(particles.cell_codes(), px * side + py)
    moved = Particles(codes // side, codes % side, particles.order)
    return moved, next_state, accepted


@dataclass(frozen=True)
class TrajectorySpec:
    """Hashable identity of a trajectory (store-key compatible fields).

    ``motion_params`` is a sorted tuple of (name, value) pairs so the
    spec hashes and round-trips through JSON-native study kwargs.
    """

    distribution: str
    num_particles: int
    order: int
    motion: str
    motion_params: tuple[tuple[str, Any], ...]
    seed: int

    @classmethod
    def create(
        cls,
        *,
        distribution: str,
        num_particles: int,
        order: int,
        motion: str,
        motion_params: dict[str, Any] | None = None,
        seed: int,
    ) -> "TrajectorySpec":
        params = tuple(sorted((motion_params or {}).items()))
        return cls(distribution, int(num_particles), int(order), motion, params, int(seed))

    def build_motion(self) -> Motion:
        return get_motion(self.motion, **dict(self.motion_params))


#: Process-wide memo of extendable trajectories.  Step units for the same
#: spec land in the same worker often enough that replaying 0..t once per
#: process (instead of once per unit) dominates the cost; the cache is
#: small because frames are tiny integer arrays.
_CACHE: OrderedDict[TrajectorySpec, tuple[list[Particles], MotionState]] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_CAPACITY = 8


def clear_trajectory_cache() -> None:
    """Drop all memoised trajectories (tests and memory-pressure hooks)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def trajectory(spec: TrajectorySpec, steps: int) -> list[Particles]:
    """Frames ``0..steps`` of the trajectory identified by ``spec``.

    Frame ``0`` is the freshly sampled distribution; frame ``t`` is the
    state after ``t`` evolution steps.  Results are memoised per process
    and extended in place when a longer horizon is requested.
    """
    steps = check_nonnegative(steps, "steps")
    with _CACHE_LOCK:
        cached = _CACHE.get(spec)
        if cached is not None:
            _CACHE.move_to_end(spec)
            frames, state = cached
            if len(frames) > steps:
                return frames[: steps + 1]
        else:
            frames, state = [], {}

        root = np.random.SeedSequence(spec.seed)
        children = root.spawn(steps + 2)
        motion = spec.build_motion()
        if not frames:
            dist = get_distribution(spec.distribution)
            first = dist.sample(
                spec.num_particles, spec.order, np.random.default_rng(children[0])
            )
            state = motion.init_state(first, np.random.default_rng(children[1]))
            frames = [first]
        while len(frames) <= steps:
            t = len(frames)
            rng = np.random.default_rng(children[1 + t])
            nxt, state, _ = evolve_step(frames[-1], motion, state, rng)
            frames.append(nxt)
        _CACHE[spec] = (frames, state)
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
        return frames[: steps + 1]
