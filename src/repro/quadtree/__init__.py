"""Spatial quadtree substrate for the FMM communication model."""

from repro.quadtree.cells import (
    cells_are_adjacent,
    children_of,
    level_side,
    neighbor_offsets,
    parent_of,
)
from repro.quadtree.interaction import interaction_list_cells, interaction_offsets
from repro.quadtree.pyramid import EMPTY, occupancy_pyramid, representative_pyramid

__all__ = [
    "parent_of",
    "children_of",
    "level_side",
    "neighbor_offsets",
    "cells_are_adjacent",
    "interaction_offsets",
    "interaction_list_cells",
    "EMPTY",
    "representative_pyramid",
    "occupancy_pyramid",
]
