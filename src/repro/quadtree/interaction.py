"""FMM interaction lists (§III, Fig. 4 of the paper).

The interaction list of a cell ``c`` at level ``l`` contains the
children of ``c``'s parent's neighbours that are *not* adjacent to ``c``
(no shared edge or corner) and live at the same level.  In 2D each cell
has at most 27 such peers.

Because the candidate set depends only on ``c``'s parity within its
parent (which of the four child slots it occupies), the offsets can be
tabulated once per parity class and reused for every cell — this is
what lets the far-field event generation stay fully vectorised.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._typing import IntArray

__all__ = ["interaction_offsets", "interaction_list_cells"]


@lru_cache(maxsize=4)
def _interaction_offsets_table(px: int, py: int) -> IntArray:
    offsets = []
    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            if ox == 0 and oy == 0:
                continue  # the parent's own children are all adjacent
            for ix in (0, 1):
                for iy in (0, 1):
                    dx = 2 * ox + ix - px
                    dy = 2 * oy + iy - py
                    if max(abs(dx), abs(dy)) > 1:
                        offsets.append((dx, dy))
    table = np.asarray(offsets, dtype=np.int64)
    table.setflags(write=False)  # cached instances are shared — keep immutable
    return table


def interaction_offsets(parity_x: int, parity_y: int) -> IntArray:
    """Offsets from a cell with the given parity to its interaction list.

    The four parity classes are tabulated once per process (the
    far-field generator asks for them at every level of every trial) and
    returned as shared read-only arrays.

    Parameters
    ----------
    parity_x, parity_y:
        The cell's coordinates modulo 2 (its slot within the parent).

    Returns
    -------
    ``(m, 2)`` array of ``(dx, dy)`` offsets (``m <= 27``); adding an
    offset to the cell's coordinates yields an interaction-list
    candidate, still subject to domain-boundary and occupancy checks.
    """
    return _interaction_offsets_table(int(parity_x) & 1, int(parity_y) & 1)


def interaction_list_cells(cx: int, cy: int, level: int) -> IntArray:
    """Explicit interaction list of one cell (reference implementation).

    Enumerates the children of the parent's neighbours directly from the
    definition — used by the test-suite to validate the vectorised
    offset tables and by examples for illustration.  Returns the
    in-bounds peers as an ``(m, 2)`` array at the same level.
    """
    side = 1 << level
    if not (0 <= cx < side and 0 <= cy < side):
        raise ValueError(f"cell ({cx}, {cy}) outside level-{level} grid")
    out = []
    px, py = cx >> 1, cy >> 1
    parent_side = side >> 1
    for nx in (px - 1, px, px + 1):
        for ny in (py - 1, py, py + 1):
            if not (0 <= nx < parent_side and 0 <= ny < parent_side):
                continue
            for ix in (0, 1):
                for iy in (0, 1):
                    tx, ty = 2 * nx + ix, 2 * ny + iy
                    if max(abs(tx - cx), abs(ty - cy)) > 1:
                        out.append((tx, ty))
    return np.asarray(out, dtype=np.int64).reshape(-1, 2)
