"""Representative pyramids: who speaks for each quadtree cell.

§III/§IV of the paper adopt the convention that "for each level of
resolution, the lowest ranked processor in a quadrant will collect the
data from the cells at that level" (equivalently, the processor holding
the lowest-indexed particle — with contiguous chunking the two coincide;
see DESIGN.md §3.6).  The *representative pyramid* materialises this:
one grid per quadtree level whose entries are the minimum owning rank
over all particles inside the cell, or :data:`EMPTY` for empty cells.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.util.bits import is_power_of_two

__all__ = ["EMPTY", "representative_pyramid", "occupancy_pyramid"]

#: Sentinel marking an empty cell in representative/occupancy grids.
EMPTY: int = np.iinfo(np.int64).max


def _check_grid(owner_grid: IntArray) -> IntArray:
    grid = np.asarray(owner_grid)
    if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
        raise ValueError(f"owner grid must be square, got shape {grid.shape}")
    if not is_power_of_two(grid.shape[0]):
        raise ValueError(f"owner grid side must be a power of two, got {grid.shape[0]}")
    return grid


def representative_pyramid(owner_grid: IntArray) -> list[IntArray]:
    """Min-rank reduction pyramid over an owner grid.

    Parameters
    ----------
    owner_grid:
        ``(side, side)`` array of owning ranks with ``-1`` marking empty
        lattice cells (as produced by
        :meth:`repro.partition.Assignment.owner_grid`).

    Returns
    -------
    list of arrays
        ``levels[l]`` has shape ``(2**l, 2**l)``; entry ``(cx, cy)`` is
        the minimum rank owning a particle in that level-``l`` cell, or
        :data:`EMPTY` if the cell holds no particles.  ``levels[k]`` is
        the finest level, ``levels[0]`` the root.
    """
    grid = _check_grid(owner_grid).astype(np.int64, copy=True)
    grid[grid < 0] = EMPTY
    levels = [grid]
    while levels[-1].shape[0] > 1:
        g = levels[-1]
        half = g.shape[0] // 2
        levels.append(g.reshape(half, 2, half, 2).min(axis=(1, 3)))
    levels.reverse()
    return levels


def occupancy_pyramid(owner_grid: IntArray) -> list[IntArray]:
    """Particle-count pyramid: entry = number of particles in each cell."""
    grid = _check_grid(owner_grid)
    counts = (grid >= 0).astype(np.int64)
    levels = [counts]
    while levels[-1].shape[0] > 1:
        g = levels[-1]
        half = g.shape[0] // 2
        levels.append(g.reshape(half, 2, half, 2).sum(axis=(1, 3)))
    levels.reverse()
    return levels
