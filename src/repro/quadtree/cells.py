"""Cell arithmetic for the spatial quadtree over a ``2**k`` lattice.

Level ``l`` (0 = root, ``k`` = finest) tiles the domain with
``2**l x 2**l`` square cells; the cell at level-``l`` coordinates
``(cx, cy)`` covers lattice cells ``[cx * 2**(k-l), (cx+1) * 2**(k-l))``
in each axis.  These helpers encode the parent/child/neighbour algebra
the FMM model (§III of the paper) is built on.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray

__all__ = [
    "parent_of",
    "children_of",
    "level_side",
    "neighbor_offsets",
    "cells_are_adjacent",
]


def level_side(level: int) -> int:
    """Number of cells per axis at quadtree level ``level``."""
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    return 1 << level


def parent_of(cx, cy) -> tuple[IntArray, IntArray]:
    """Coordinates of the parent cell one level coarser."""
    cx = np.asarray(cx, dtype=np.int64)
    cy = np.asarray(cy, dtype=np.int64)
    return cx >> 1, cy >> 1


def children_of(cx: int, cy: int) -> IntArray:
    """The four child cells one level finer, as a ``(4, 2)`` array."""
    base = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.int64)
    return base + np.array([2 * cx, 2 * cy], dtype=np.int64)


def neighbor_offsets(radius: int = 1, metric: str = "chebyshev") -> IntArray:
    """All non-zero offsets within ``radius`` under the given metric.

    ``"chebyshev"`` yields the edge/corner neighbourhood the FMM
    near-field uses (8 cells for ``radius=1``, §III); ``"manhattan"``
    yields the cross-shaped neighbourhood of the ANNS metric (§V).
    """
    r = int(radius)
    if r < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    span = np.arange(-r, r + 1, dtype=np.int64)
    dx, dy = np.meshgrid(span, span, indexing="ij")
    offs = np.stack([dx.ravel(), dy.ravel()], axis=1)
    if metric == "chebyshev":
        keep = np.maximum(np.abs(offs[:, 0]), np.abs(offs[:, 1])) >= 1
    elif metric == "manhattan":
        dist = np.abs(offs[:, 0]) + np.abs(offs[:, 1])
        keep = (dist >= 1) & (dist <= r)
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'chebyshev' or 'manhattan'")
    return offs[keep]


def cells_are_adjacent(ax, ay, bx, by) -> np.ndarray:
    """True where cells share an edge or corner (or coincide)."""
    ax, ay = np.asarray(ax, np.int64), np.asarray(ay, np.int64)
    bx, by = np.asarray(bx, np.int64), np.asarray(by, np.int64)
    return np.maximum(np.abs(ax - bx), np.abs(ay - by)) <= 1
