"""Nested tracing spans and typed counters for the whole pipeline.

The experiments stack runs behind three layers of caching (topology
cache, event-artifact cache, result store) and a process pool, but none
of that machinery used to report on itself: cache hit rates, per-phase
wall time and worker utilisation were invisible.  This module is the
single, dependency-free (stdlib-only) telemetry core everything else
reports into:

* **Spans** — nested wall-time intervals (:func:`span`) measured with
  ``time.perf_counter``; each carries a name, static attributes and its
  children, forming a per-run trace tree.
* **Counters** — monotonically increasing totals (:func:`count`):
  cache hits/misses/evictions, store resume hits, events generated vs.
  reused, messages routed, pool busy-seconds.
* **Gauges** — last-written point-in-time values (:func:`gauge`): pool
  size, queue occupancy, resident cache bytes.

Observability is **off by default**: the module-level recorder slot is
``None`` and every entry point degrades to one attribute load plus an
``is None`` test (``span`` returns a shared no-op context manager), so
instrumented hot paths stay within noise of the uninstrumented code —
and recorded runs stay bit-identical, since nothing here feeds back
into the computation.

Worker processes never share a recorder with the parent (no shared
memory); the runner captures each unit's counters in the worker with
:func:`record_unit` and merges them into the parent recorder through
the normal result plumbing (see
:func:`repro.experiments.runner.map_units`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Span",
    "Recorder",
    "enabled",
    "get_recorder",
    "set_recorder",
    "recording",
    "span",
    "count",
    "gauge",
    "record_unit",
    "render_trace",
]


class Span:
    """One timed interval of the trace tree.

    ``duration`` is ``None`` while the span is still open; ``attrs``
    are static labels captured at entry (study name, unit counts, ...).
    """

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: Mapping[str, Any]):
        self.name = name
        self.attrs = dict(attrs)
        self.start = time.perf_counter()
        self.duration: float | None = None
        self.children: list[Span] = []

    def as_dict(self) -> dict[str, Any]:
        """JSON-able representation (durations in seconds)."""
        node: dict[str, Any] = {"name": self.name, "duration_s": self.duration}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [c.as_dict() for c in self.children]
        return node

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """Shared no-op context manager — the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager closing one :class:`Span` on a recorder.

    Built by :meth:`Recorder.span`, which attaches the span to the
    trace tree before handing the context out.
    """

    __slots__ = ("_recorder", "_span")

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._recorder._close(self._span)
        return False


class Recorder:
    """Thread-safe sink for spans, counters and gauges.

    Span nesting is tracked per thread (a span opened on a worker
    thread nests under that thread's open span, or becomes a root);
    counters and gauges are global to the recorder.  All methods are
    safe to call concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._local = threading.local()
        self.roots: list[Span] = []
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}

    # -- spans ---------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span (use as a context manager)."""
        ctx = _SpanContext.__new__(_SpanContext)
        ctx._recorder = self
        node = Span(name, attrs)
        ctx._span = node
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(node)
            else:
                self.roots.append(node)
        stack.append(node)
        node.start = time.perf_counter()  # restart after bookkeeping
        return ctx

    def _close(self, node: Span) -> None:
        node.duration = time.perf_counter() - node.start
        stack = self._stack()
        # tolerate exotic exits (generator finalisation on another frame)
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:
            while stack and stack.pop() is not node:
                pass

    # -- counters and gauges -------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to the monotonically increasing counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def merge_counters(self, counters: Mapping[str, int | float]) -> None:
        """Fold another process's counter totals into this recorder."""
        with self._lock:
            for name, n in counters.items():
                self.counters[name] = self.counters.get(name, 0) + n

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "spans": [root.as_dict() for root in self.roots],
            }

    def find_spans(self, name: str) -> list[Span]:
        """Every recorded span called ``name``, in trace order."""
        with self._lock:
            return [s for root in self.roots for s in root.walk() if s.name == name]


# -- the process-wide recorder slot -----------------------------------------

_recorder: Recorder | None = None


def enabled() -> bool:
    """Whether a recorder is currently installed."""
    return _recorder is not None


def get_recorder() -> Recorder | None:
    """The installed recorder, or ``None`` when observability is off."""
    return _recorder


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install (or remove, with ``None``) the process-wide recorder.

    Returns the previous recorder so callers can restore it.
    """
    global _recorder
    if recorder is not None and not isinstance(recorder, Recorder):
        raise TypeError(f"expected a Recorder or None, got {type(recorder).__name__}")
    previous = _recorder
    _recorder = recorder
    return previous


class recording:
    """``with recording() as rec:`` — scoped observability.

    Installs a fresh (or given) recorder on entry and restores the
    previous one on exit; the recorder stays readable after the block.
    """

    def __init__(self, recorder: Recorder | None = None):
        self.recorder = recorder if recorder is not None else Recorder()
        self._previous: Recorder | None = None

    def __enter__(self) -> Recorder:
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: object) -> bool:
        set_recorder(self._previous)
        return False


def span(name: str, **attrs: Any):
    """A nested span on the installed recorder, or a shared no-op."""
    rec = _recorder
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, **attrs)


def count(name: str, n: int | float = 1) -> None:
    """Bump a counter on the installed recorder (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the installed recorder (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.gauge(name, value)


def record_unit(
    fn: Callable[..., Any],
    *args: Any,
    unit_index: int | None = None,
    attempt: int = 0,
    faults: Any = None,
    in_worker: bool = True,
) -> tuple[Any, dict[str, int | float], float]:
    """Run one unit under a private recorder; return its telemetry.

    The worker-side half of cross-process aggregation: executes
    ``fn(*args)`` with a fresh recorder installed (so cache and store
    instrumentation inside the call lands somewhere collectable even
    when the worker process has no recorder of its own) and returns
    ``(result, counters, busy_seconds)``.  Top-level and picklable, so
    process pools can execute it; the parent merges the counters back
    through the ordinary result stream — no shared memory involved.

    This is also where deterministic fault injection enters the worker:
    when the executor passes a :class:`repro.faults.FaultPlan` (plus
    the unit's index and attempt number), the scheduled fault — crash,
    hang or transient raise — fires *before* the unit runs, so every
    failure mode of the execution layer is reproducible in tests.
    """
    unit_recorder = Recorder()
    previous = set_recorder(unit_recorder)
    start = time.perf_counter()
    try:
        if faults is not None:
            from repro.faults import inject  # stdlib-only, cycle-free

            inject(faults, unit_index if unit_index is not None else 0, attempt, in_worker)
        result = fn(*args)
    finally:
        busy = time.perf_counter() - start
        set_recorder(previous)
    return result, unit_recorder.counters, busy


def render_trace(recorder: Recorder, min_duration: float = 0.0) -> str:
    """Human-readable span tree plus counter/gauge totals."""
    lines: list[str] = []

    def emit(node: Span, depth: int) -> None:
        duration = node.duration
        if duration is not None and duration < min_duration:
            return
        label = f"{duration * 1e3:10.2f} ms" if duration is not None else "      open"
        attrs = "".join(f" {k}={v}" for k, v in node.attrs.items())
        lines.append(f"{label}  {'  ' * depth}{node.name}{attrs}")
        for child in node.children:
            emit(child, depth + 1)

    snap = recorder.snapshot()
    for root in recorder.roots:
        emit(root, 0)
    if snap["counters"]:
        lines.append("counters:")
        for name in sorted(snap["counters"]):
            value = snap["counters"][name]
            shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else value
            lines.append(f"  {name} = {shown}")
    if snap["gauges"]:
        lines.append("gauges:")
        for name in sorted(snap["gauges"]):
            lines.append(f"  {name} = {snap['gauges'][name]:g}")
    return "\n".join(lines)
