"""Per-run manifest: what ran, how long each phase took, what was reused.

Walker & Skjellum and Reissmann et al. both argue that SFC conclusions
should rest on *measured* data-movement and cost profiles; the
:class:`RunManifest` applies the same discipline to this reproduction
itself.  One JSON document per run — written next to the study outputs
by ``repro-experiments --metrics`` — records:

* the effective :class:`~repro.runtime.RuntimeConfig` and experiment
  seed/scale,
* per-study, per-phase wall time (plan / store lookup / campaign /
  compute / collect), distilled from the recorder's span tree,
* every counter and gauge: cache hits/misses/evictions, store resume
  hits, events generated vs. reused, messages routed, and
* worker utilisation (pool busy-seconds over ``jobs x`` wall time).

A warm-store rerun is *provable* from the manifest alone:
``counters["campaign.trials"] == 0`` and ``studies[...].store_hits ==
units`` — no log diffing required (the CI studies-smoke job asserts
exactly that).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.recorder import Recorder, Span

__all__ = ["RunManifest", "MANIFEST_SCHEMA_VERSION"]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: ``run_study`` phase spans surfaced as first-class per-study timings.
STUDY_PHASES: tuple[str, ...] = ("plan", "store.lookup", "campaign", "compute", "collect")


def _span_total(parent: Span, name: str) -> float | None:
    """Summed duration of ``parent``'s direct children called ``name``."""
    matches = [c.duration for c in parent.children if c.name == name and c.duration is not None]
    return round(sum(matches), 6) if matches else None


def _study_entries(recorder: Recorder) -> dict[str, dict[str, Any]]:
    """Per-study wall time and phase breakdown from the span tree."""
    studies: dict[str, dict[str, Any]] = {}
    for node in recorder.find_spans("study"):
        name = str(node.attrs.get("study", "?"))
        phases = {p: _span_total(node, p) for p in STUDY_PHASES}
        entry: dict[str, Any] = {
            "wall_s": round(node.duration, 6) if node.duration is not None else None,
            "phases": {p: d for p, d in phases.items() if d is not None},
        }
        for attr in ("units", "store_hits", "store_misses"):
            if attr in node.attrs:
                entry[attr] = node.attrs[attr]
        if name in studies:  # same study run twice: keep the latest pass
            studies[f"{name}#{sum(k.startswith(name) for k in studies)}"] = entry
        else:
            studies[name] = entry
    return studies


def _worker_stats(recorder: Recorder) -> dict[str, Any]:
    """Pool utilisation from the fan-out counters (see ``map_units``)."""
    counters, gauges = recorder.counters, recorder.gauges
    busy = float(counters.get("pool.busy_s", 0.0)) + float(counters.get("units.busy_s", 0.0))
    wall = float(counters.get("pool.wall_s", 0.0))
    jobs = int(gauges.get("pool.jobs", 1))
    stats: dict[str, Any] = {
        "jobs": jobs,
        "parallel_units": int(counters.get("pool.units", 0)),
        "serial_units": int(counters.get("units.serial", 0)),
        "busy_s": round(busy, 6),
    }
    if wall > 0 and jobs > 0:
        stats["pool_wall_s"] = round(wall, 6)
        stats["utilization"] = round(
            min(1.0, float(counters.get("pool.busy_s", 0.0)) / (wall * jobs)), 4
        )
    return stats


#: Fault-tolerance counters surfaced as a first-class manifest section:
#: how often the pool broke and was rebuilt, and how many units were
#: retried, timed out or finished in degraded-serial mode.
_RESILIENCE_COUNTERS: dict[str, str] = {
    "pool.broken": "pool_broken",
    "pool.rebuilds": "pool_rebuilds",
    "units.retries": "retries",
    "units.timeouts": "timeouts",
    "units.degraded_serial": "degraded_serial",
    "store.corrupt": "store_corrupt",
}


def _resilience(counters: Mapping[str, int | float]) -> dict[str, int]:
    """Fault/recovery profile of the run (empty when nothing went wrong)."""
    return {
        label: int(counters[name])
        for name, label in _RESILIENCE_COUNTERS.items()
        if name in counters
    }


def _service_section(counters: Mapping[str, int | float]) -> dict[str, int]:
    """Query-service lifetime profile (empty when no service ran).

    Distilled from the ``service.*`` counters merged at shutdown:
    requests answered, warm store hits, coalesced joiners (identical
    in-flight requests that shared one computation) and cold
    computations actually executed.
    """
    return {
        name[len("service."):]: int(value)
        for name, value in counters.items()
        if name.startswith("service.")
    }


def _dynamics_section(counters: Mapping[str, int | float]) -> dict[str, int]:
    """Time-evolution profile (empty when no dynamic study ran).

    Distilled from the ``dynamics.*`` counters: evolution steps
    evaluated, particles that changed owner between consecutive frames
    (``migrated``), and curve re-sorts performed (``resorts``).
    """
    return {
        name[len("dynamics."):]: int(value)
        for name, value in counters.items()
        if name.startswith("dynamics.")
    }


def _cache_sections(counters: Mapping[str, int | float]) -> dict[str, dict[str, int | float]]:
    """Group dotted counters into per-subsystem cache sections.

    Counters are the cross-process truth (worker deltas are merged into
    the parent), unlike the in-process ``.stats`` of any one cache
    object.
    """
    sections: dict[str, dict[str, int | float]] = {}
    for prefix in ("topo_cache", "event_cache", "store", "events"):
        section = {
            name[len(prefix) + 1:]: value
            for name, value in counters.items()
            if name.startswith(prefix + ".")
        }
        if section:
            sections[prefix] = section
    return sections


@dataclass(frozen=True)
class RunManifest:
    """One run's observable profile, JSON-serialisable.

    Build with :meth:`from_recorder` at the end of a recorded run;
    persist with :meth:`write` (atomic) and reload with :meth:`load`.
    """

    schema: int = MANIFEST_SCHEMA_VERSION
    created: str = ""
    command: list[str] | None = None
    config: dict[str, Any] = field(default_factory=dict)
    scale: str | None = None
    seed: Any = None
    studies: dict[str, dict[str, Any]] = field(default_factory=dict)
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    caches: dict[str, dict[str, int | float]] = field(default_factory=dict)
    workers: dict[str, Any] = field(default_factory=dict)
    resilience: dict[str, int] = field(default_factory=dict)
    service: dict[str, int] = field(default_factory=dict)
    dynamics: dict[str, int] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_recorder(
        cls,
        recorder: Recorder,
        *,
        config: Mapping[str, Any] | None = None,
        scale: str | None = None,
        seed: Any = None,
        command: list[str] | None = None,
    ) -> "RunManifest":
        """Distil a finished recorder into a manifest."""
        snap = recorder.snapshot()
        return cls(
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            command=list(command) if command is not None else None,
            config=dict(config) if config is not None else {},
            scale=scale,
            seed=seed,
            studies=_study_entries(recorder),
            counters=snap["counters"],
            gauges=snap["gauges"],
            caches=_cache_sections(snap["counters"]),
            workers=_worker_stats(recorder),
            resilience=_resilience(snap["counters"]),
            service=_service_section(snap["counters"]),
            dynamics=_dynamics_section(snap["counters"]),
            spans=snap["spans"],
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (what :meth:`write` serialises)."""
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON atomically; returns the final path.

        A directory path receives ``run_manifest.json`` inside it.
        """
        target = Path(path)
        if target.is_dir() or str(path).endswith(("/", "\\")):
            target.mkdir(parents=True, exist_ok=True)
            target = target / "run_manifest.json"
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True, default=str)
                handle.write("\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest back from disk."""
        data = json.loads(Path(path).read_text())
        known = {f for f in cls.__dataclass_fields__}  # tolerate newer writers
        return cls(**{k: v for k, v in data.items() if k in known})
