"""repro.obs — always-available, near-zero-cost observability.

Nested tracing spans, typed counters/gauges and the per-run
:class:`RunManifest`.  Stdlib-only, so every layer of the pipeline (the
topology cache included) can report into it without import cycles.

Quick tour::

    from repro import obs

    with obs.recording() as rec:          # scoped: restores on exit
        with obs.span("acd", topology="torus"):
            obs.count("messages.routed", 1024)
    print(obs.render_trace(rec))

Disabled (the default — no recorder installed), ``obs.span`` hands back
a shared no-op context manager and ``obs.count``/``obs.gauge`` return
after one ``is None`` test, so instrumentation stays in hot paths
permanently.  Recording never changes results — everything stays
bit-identical.
"""

from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from repro.obs.recorder import (
    Recorder,
    Span,
    count,
    enabled,
    gauge,
    get_recorder,
    record_unit,
    recording,
    render_trace,
    set_recorder,
    span,
)

__all__ = [
    "Recorder",
    "Span",
    "RunManifest",
    "MANIFEST_SCHEMA_VERSION",
    "enabled",
    "get_recorder",
    "set_recorder",
    "recording",
    "span",
    "count",
    "gauge",
    "record_unit",
    "render_trace",
]
