"""repro — reproduction of *Empirical Analysis of Space-Filling Curves for
Scientific Computing Applications* (DeFord & Kalyanaraman, ICPP 2013).

The package implements the paper's **Average Communicated Distance**
(ACD) metric, the Fast Multipole Method communication model it is
evaluated with, and every substrate the study depends on: four
space-filling curves (plus extensions), six network topologies, three
input distributions, SFC-based particle partitioning, communication
primitives for the generalised metric, and an experiment harness that
regenerates every table and figure of the paper.

Quick start::

    import repro

    particles = repro.get_distribution("uniform").sample(20_000, order=8, rng=42)
    network = repro.make_topology("torus", 1024, processor_curve="hilbert")
    model = repro.FmmCommunicationModel(network, particle_curve="hilbert")
    report = model.evaluate(particles)
    print(report.nfi_acd, report.ffi_acd)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record.
"""

from repro.application import (
    ApplicationModel,
    ApplicationPhase,
    ApplicationReport,
    recommend_configuration,
)
from repro.distributions import (
    ExponentialDistribution,
    NormalDistribution,
    ParticleDistribution,
    Particles,
    UniformDistribution,
    get_distribution,
)
from repro.errors import (
    ConfigurationError,
    ReproError,
    ResolutionError,
    SamplingError,
    TopologySizeError,
    UnknownNameError,
)
from repro.fmm import (
    CommunicationEvents,
    FfiEvents,
    FmmCommunicationModel,
    FmmReport,
    ffi_events,
    nfi_events,
)
from repro.metrics import (
    ACDResult,
    acd_breakdown,
    anns,
    average_clusters,
    compute_acd,
    neighbor_stretch,
)
from repro.partition import Assignment, partition_particles
from repro.sfc import (
    GrayCurve,
    HilbertCurve,
    RowMajorCurve,
    SnakeCurve,
    SpaceFillingCurve,
    ZCurve,
    get_curve,
    get_curve3d,
)
from repro.topology import (
    BusTopology,
    HypercubeTopology,
    MeshTopology,
    QuadtreeTopology,
    RingTopology,
    Topology,
    TorusTopology,
    make_topology,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # curves
    "SpaceFillingCurve",
    "HilbertCurve",
    "ZCurve",
    "GrayCurve",
    "RowMajorCurve",
    "SnakeCurve",
    "get_curve",
    "get_curve3d",
    # topologies
    "Topology",
    "BusTopology",
    "RingTopology",
    "MeshTopology",
    "TorusTopology",
    "QuadtreeTopology",
    "HypercubeTopology",
    "make_topology",
    # distributions & partitioning
    "Particles",
    "ParticleDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "ExponentialDistribution",
    "get_distribution",
    "Assignment",
    "partition_particles",
    # FMM model
    "CommunicationEvents",
    "FfiEvents",
    "FmmCommunicationModel",
    "FmmReport",
    "nfi_events",
    "ffi_events",
    # metrics
    "ACDResult",
    "compute_acd",
    "acd_breakdown",
    "anns",
    "neighbor_stretch",
    "average_clusters",
    # application composition (§VII)
    "ApplicationModel",
    "ApplicationPhase",
    "ApplicationReport",
    "recommend_configuration",
    # errors
    "ReproError",
    "ConfigurationError",
    "ResolutionError",
    "TopologySizeError",
    "SamplingError",
    "UnknownNameError",
]
