"""The Average Communicated Distance (ACD) metric — Definition 1 of the paper.

    "Given a particular problem instance, the ACD is defined as the
    average distance for every pairwise communication made over the
    course of the entire application.  The communication distance
    between any two communicating processors is given by the length of
    the shortest path (measured in the number of hops) between the two
    processors along the network interconnect."

:func:`compute_acd` evaluates this for any
:class:`~repro.fmm.events.CommunicationEvents` against any
:class:`~repro.topology.Topology`, streaming over event chunks so the
peak memory stays bounded by the largest chunk.  The model is
contention-unaware by construction (§IV step 6 note).

Distance lookups go through the shared
:class:`~repro.topology.cache.TopologyCache`, so trial-averaged studies
that re-evaluate the same network serve hop distances from a memoised
``p x p`` matrix instead of re-running the distance kernel; pass
``cache=None`` to force direct kernel evaluation (results are
identical either way).

Both entry points also accept a pre-compacted
:class:`~repro.fmm.events.PairHistogram` in place of raw events.  A
histogram evaluation is one gather + dot product against the (cached)
``p x p`` distance matrix — ``O(p**2)`` worst case instead of
``O(#events)`` — and, because every sum stays in integer arithmetic, is
bit-identical to streaming over the events the histogram was compacted
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from repro import kernels
from repro.errors import ConfigurationError
from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.topology.base import Topology
from repro.topology.cache import TopologyCache, get_topology_cache

__all__ = ["ACDResult", "compute_acd", "acd_breakdown"]

#: Either form of an event multiset accepted by the ACD evaluators.
EventsLike = Union[CommunicationEvents, PairHistogram]

_DEFAULT_CACHE = "default"  # sentinel: resolve the shared cache at call time


@dataclass(frozen=True)
class ACDResult:
    """Aggregate of one ACD evaluation.

    Attributes
    ----------
    total_distance:
        Weighted sum of hop distances over all events (§IV's "output the
        sum"); with unit weights this is the plain hop-count sum.
    count:
        Total event weight (= number of events when unweighted).
    """

    total_distance: int
    count: int

    @property
    def acd(self) -> float:
        """The Average Communicated Distance (0.0 for an empty event set)."""
        return self.total_distance / self.count if self.count else 0.0

    def merged(self, other: "ACDResult") -> "ACDResult":
        """Pool two evaluations (same topology) into one aggregate."""
        return ACDResult(
            self.total_distance + other.total_distance, self.count + other.count
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ACDResult(acd={self.acd:.4f}, count={self.count})"


def _check_ranks(src, dst, num_processors: int) -> None:
    """Reject ranks outside ``[0, num_processors)`` (cheap min/max scan)."""
    if not np.asarray(src).size:
        return
    low = min(int(np.min(src)), int(np.min(dst)))
    high = max(int(np.max(src)), int(np.max(dst)))
    if low < 0 or high >= num_processors:
        offender = high if high >= num_processors else low
        raise ValueError(
            f"events reference rank {offender} outside the "
            f"{num_processors}-processor rank space of the topology"
        )


def _histogram_acd(
    histogram: PairHistogram,
    topology: Topology,
    cache: TopologyCache | None,
) -> ACDResult:
    """ACD of a compacted histogram: one distance gather + dot product.

    When the topology's distance matrix is (or becomes) cache-resident,
    the gather + integer dot is fused through
    :func:`repro.kernels.histogram_dot`, which serves it from the
    compiled backend when one is selected; otherwise the distances come
    from the vectorised distance kernel.  All paths are bit-identical.
    """
    if histogram.num_processors > topology.num_processors:
        raise ValueError(
            f"histogram spans {histogram.num_processors} ranks but the "
            f"topology only has {topology.num_processors}"
        )
    if histogram.num_pairs == 0:
        return ACDResult(0, 0)
    _check_ranks(histogram.src, histogram.dst, topology.num_processors)
    matrix = (
        cache.matrix_for_queries(topology, histogram.src.size)
        if cache is not None
        else None
    )
    if matrix is not None:
        total = kernels.histogram_dot(
            matrix, histogram.src, histogram.dst, histogram.weights
        )
    else:
        distances = topology.distance(histogram.src, histogram.dst)
        total = int(distances.astype("int64") @ histogram.weights)
    return ACDResult(total_distance=total, count=histogram.total_weight)


def compute_acd(
    events: EventsLike,
    topology: Topology,
    *,
    cache: TopologyCache | None | str = _DEFAULT_CACHE,
) -> ACDResult:
    """Evaluate the ACD of an event multiset on a topology.

    Weighted events contribute ``weight * distance`` to the total and
    ``weight`` to the count, so the result is the average distance per
    unit of data volume; unweighted events behave as weight 1.

    ``events`` may be raw :class:`CommunicationEvents` (streamed chunk
    by chunk) or a :class:`PairHistogram` (one gather + dot product on
    the distinct rank pairs); the results are bit-identical.

    ``cache`` selects the topology cache serving the distance lookups
    (the process-wide default when omitted, ``None`` to bypass caching).
    """
    if cache == _DEFAULT_CACHE:
        cache = get_topology_cache()
    if isinstance(events, PairHistogram):
        return _histogram_acd(events, topology, cache)
    total = 0
    count = 0
    for src, dst, weights in events.iter_weighted_chunks():
        # Guard every chunk before any distance lookup: a cached matrix
        # would otherwise wrap negative ranks silently (garbage
        # distances) and turn over-range ranks into an IndexError
        # instead of the ValueError the histogram path raises.
        _check_ranks(src, dst, topology.num_processors)
        if cache is None:
            distances = topology.distance(src, dst)
        else:
            distances = cache.distances(topology, src, dst)
        if weights is None:
            total += int(distances.sum())
            count += int(src.size)
        else:
            total += int((distances * weights).sum())
            count += int(weights.sum())
    return ACDResult(total_distance=total, count=count)


def acd_breakdown(
    phases: Mapping[str, EventsLike],
    topology: Topology,
    *,
    cache: TopologyCache | None | str = _DEFAULT_CACHE,
) -> dict[str, ACDResult]:
    """Per-phase ACD plus a pooled ``"combined"`` entry.

    Used for the far-field model where interpolation, anterpolation and
    interaction-list traffic are reported separately and together (§IV
    step 10 sums over all three).  Each phase may be raw events or a
    :class:`PairHistogram`.  The phase name ``"combined"`` is reserved
    for that pooled entry; passing a phase with that name raises
    :class:`~repro.errors.ConfigurationError` instead of silently
    overwriting it.

    ``cache`` is forwarded verbatim to every per-phase
    :func:`compute_acd` call (the shared process cache when omitted,
    ``None`` to bypass caching entirely — e.g. for cache ablations).
    """
    if "combined" in phases:
        raise ConfigurationError(
            'phase name "combined" is reserved for the pooled ACD entry; '
            "rename the phase before calling acd_breakdown"
        )
    out: dict[str, ACDResult] = {}
    combined = ACDResult(0, 0)
    for name, events in phases.items():
        result = compute_acd(events, topology, cache=cache)
        out[name] = result
        combined = combined.merged(result)
    out["combined"] = combined
    return out
