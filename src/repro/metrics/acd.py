"""The Average Communicated Distance (ACD) metric — Definition 1 of the paper.

    "Given a particular problem instance, the ACD is defined as the
    average distance for every pairwise communication made over the
    course of the entire application.  The communication distance
    between any two communicating processors is given by the length of
    the shortest path (measured in the number of hops) between the two
    processors along the network interconnect."

:func:`compute_acd` evaluates this for any
:class:`~repro.fmm.events.CommunicationEvents` against any
:class:`~repro.topology.Topology`, streaming over event chunks so the
peak memory stays bounded by the largest chunk.  The model is
contention-unaware by construction (§IV step 6 note).

Distance lookups go through the shared
:class:`~repro.topology.cache.TopologyCache`, so trial-averaged studies
that re-evaluate the same network serve hop distances from a memoised
``p x p`` matrix instead of re-running the distance kernel; pass
``cache=None`` to force direct kernel evaluation (results are
identical either way).

Both entry points also accept a pre-compacted
:class:`~repro.fmm.events.PairHistogram` in place of raw events.  A
histogram evaluation is one gather + dot product against the (cached)
``p x p`` distance matrix — ``O(p**2)`` worst case instead of
``O(#events)`` — and, because every sum stays in integer arithmetic, is
bit-identical to streaming over the events the histogram was compacted
from.

Memory-bounded (tiled) evaluation
---------------------------------
A ``p x p`` distance matrix is 4 TiB at ``p = 2**20`` — far beyond any
budget — so both entry points also take a ``memory_budget`` (defaulting
to :attr:`repro.runtime.RuntimeConfig.memory_budget`,
``REPRO_MEMORY_BUDGET`` / ``--memory-budget``).  When the dense matrix
would not fit the budget, a histogram is evaluated *tiled*: the
(src, dst) rank plane is partitioned into square tiles sized by
:func:`tile_side_for_budget`, each non-empty tile is evaluated either
against a cached distance block (:meth:`TopologyCache.block_for_queries`
+ the fused :func:`repro.kernels.tile_histogram_dot`) or directly
through the vectorised distance kernel on its pairs, and the per-tile
:class:`ACDResult` partials reduce through :meth:`ACDResult.merged`.
Only tiles containing pairs are visited, so sparse million-rank
histograms cost ``O(#pairs)``, never ``O(p**2)`` — and because every
partial sum is exact ``int64`` arithmetic over a disjoint partition of
the pair set, the tiled result is bit-identical to the dense and
streaming paths.  See :mod:`repro.experiments.sharded` for the
fan-out/resumable form of the same computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import math
from typing import Iterator

import numpy as np

from repro import kernels, obs
from repro.errors import ConfigurationError
from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.runtime import runtime_config
from repro.topology.base import Topology
from repro.topology.cache import TopologyCache, get_topology_cache

__all__ = [
    "ACDResult",
    "compute_acd",
    "acd_breakdown",
    "tile_side_for_budget",
    "iter_histogram_tiles",
    "dense_matrix_bytes",
    "TILE_BYTES_PER_CELL",
]

#: Either form of an event multiset accepted by the ACD evaluators.
EventsLike = Union[CommunicationEvents, PairHistogram]

_DEFAULT_CACHE = "default"  # sentinel: resolve the shared cache at call time
_DEFAULT_BUDGET = "config"  # sentinel: read RuntimeConfig.memory_budget at call time

#: Conservative working-set estimate per tile cell: the resident
#: ``int32`` block plus the ``int64`` build/gather intermediates the
#: vectorised distance kernels allocate while filling it.  At the
#: 2 GiB acceptance budget this yields 8192-rank tiles (a 256 MiB
#: ``int32`` block), comfortably inside the default block-cache budget.
TILE_BYTES_PER_CELL = 32


@dataclass(frozen=True)
class ACDResult:
    """Aggregate of one ACD evaluation.

    Attributes
    ----------
    total_distance:
        Weighted sum of hop distances over all events (§IV's "output the
        sum"); with unit weights this is the plain hop-count sum.
    count:
        Total event weight (= number of events when unweighted).
    """

    total_distance: int
    count: int

    @property
    def acd(self) -> float:
        """The Average Communicated Distance (0.0 for an empty event set)."""
        return self.total_distance / self.count if self.count else 0.0

    def merged(self, other: "ACDResult") -> "ACDResult":
        """Pool two evaluations (same topology) into one aggregate."""
        return ACDResult(
            self.total_distance + other.total_distance, self.count + other.count
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ACDResult(acd={self.acd:.4f}, count={self.count})"


def _check_ranks(src, dst, num_processors: int) -> None:
    """Reject ranks outside ``[0, num_processors)`` (cheap min/max scan)."""
    if not np.asarray(src).size:
        return
    low = min(int(np.min(src)), int(np.min(dst)))
    high = max(int(np.max(src)), int(np.max(dst)))
    if low < 0 or high >= num_processors:
        offender = high if high >= num_processors else low
        raise ValueError(
            f"events reference rank {offender} outside the "
            f"{num_processors}-processor rank space of the topology"
        )


def dense_matrix_bytes(num_processors: int) -> int:
    """Bytes of the full ``p x p`` ``int32`` distance matrix."""
    return num_processors * num_processors * 4


def tile_side_for_budget(memory_budget: int, num_processors: int) -> int:
    """Side length of the square distance tiles fitting ``memory_budget``.

    Sized so one tile's working set — the resident ``int32`` block plus
    the ``int64`` intermediates of its build and gather
    (:data:`TILE_BYTES_PER_CELL` per cell) — stays under the budget:
    ``side = isqrt(budget / TILE_BYTES_PER_CELL)``, clamped to
    ``[1, p]``.  A 2 GiB budget yields 8192-rank tiles; even a 1-byte
    budget degrades gracefully to single-cell tiles rather than failing.
    """
    if memory_budget < 1:
        raise ValueError(f"memory_budget must be >= 1 byte, got {memory_budget}")
    if num_processors < 1:
        raise ValueError(f"num_processors must be >= 1, got {num_processors}")
    side = math.isqrt(memory_budget // TILE_BYTES_PER_CELL)
    return max(1, min(side, num_processors))


def iter_histogram_tiles(
    histogram: PairHistogram,
    num_processors: int,
    tile_side: int,
) -> Iterator[tuple[tuple[int, int], tuple[int, int], np.ndarray, np.ndarray, np.ndarray]]:
    """The non-empty tiles of a histogram on a ``tile_side``-square grid.

    Partitions the ``[0, num_processors) x [0, num_processors)`` rank
    plane into square tiles of side ``tile_side`` (edge tiles are
    clipped, so ``p`` need not be divisible by the side) and yields
    ``(rows, cols, src, dst, weights)`` per tile *containing at least
    one pair*, in row-major tile order.  ``rows``/``cols`` are the
    half-open global rank ranges of the tile; the pair arrays keep
    global ranks and, within a tile, the histogram's canonical
    ``src * p + dst`` ordering — so concatenating the yields is a
    permutation of the histogram and integer reductions over them are
    exact.  Empty tiles are never materialised: the scan is
    ``O(#pairs log #pairs)``, independent of the tile count.
    """
    tile_side = int(tile_side)
    if tile_side < 1:
        raise ValueError(f"tile_side must be >= 1, got {tile_side}")
    p = int(num_processors)
    if histogram.num_processors > p:
        raise ValueError(
            f"histogram spans {histogram.num_processors} ranks but the tile "
            f"grid only covers {p}"
        )
    src, dst, weights = histogram.src, histogram.dst, histogram.weights
    if src.size == 0:
        return
    tile_cols = -(-p // tile_side)  # ceil division
    tile_ids = (src // tile_side) * tile_cols + dst // tile_side
    # Stable sort keeps the canonical src*p+dst order inside each tile.
    order = np.argsort(tile_ids, kind="stable")
    src, dst, weights, tile_ids = src[order], dst[order], weights[order], tile_ids[order]
    boundaries = np.flatnonzero(np.diff(tile_ids)) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    stops = np.concatenate([boundaries, np.array([tile_ids.size], dtype=np.int64)])
    for start, stop in zip(starts, stops):
        tile_row, tile_col = divmod(int(tile_ids[start]), tile_cols)
        rows = (tile_row * tile_side, min((tile_row + 1) * tile_side, p))
        cols = (tile_col * tile_side, min((tile_col + 1) * tile_side, p))
        yield rows, cols, src[start:stop], dst[start:stop], weights[start:stop]


def evaluate_tile(
    topology: Topology,
    cache: TopologyCache | None,
    rows: tuple[int, int],
    cols: tuple[int, int],
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
) -> tuple[int, int]:
    """One tile's weighted distance sum: ``(total, tile_bytes)``.

    Served from a cached distance block through the fused
    :func:`repro.kernels.tile_histogram_dot` once the tile's query
    volume amortises the block build (repeated trials get there
    quickly); until then the pairs go straight through the vectorised
    distance kernel.  Both routes are exact integer arithmetic —
    identical totals.  ``tile_bytes`` reports the working set
    (block bytes, or the gather intermediates on the direct route) for
    the ``acd.tile_bytes_peak`` gauge.
    """
    block = (
        cache.block_for_queries(topology, rows, cols, src.size)
        if cache is not None
        else None
    )
    if block is not None:
        total = kernels.tile_histogram_dot(block, src, dst, weights, rows[0], cols[0])
        return total, int(block.nbytes)
    distances = topology.distance(src, dst)
    total = int(distances.astype("int64") @ weights)
    return total, int(3 * 8 * src.size)  # three int64 intermediates


def _tiled_histogram_acd(
    histogram: PairHistogram,
    topology: Topology,
    cache: TopologyCache | None,
    memory_budget: int,
) -> ACDResult:
    """Memory-bounded histogram ACD: per-tile partials, exact reduction."""
    p = topology.num_processors
    tile_side = tile_side_for_budget(memory_budget, p)
    result = ACDResult(0, 0)
    tiles = 0
    peak = 0
    with obs.span("acd.tiled", processors=p, tile_side=tile_side):
        for rows, cols, src, dst, weights in iter_histogram_tiles(
            histogram, p, tile_side
        ):
            total, tile_bytes = evaluate_tile(
                topology, cache, rows, cols, src, dst, weights
            )
            result = result.merged(ACDResult(total, int(weights.sum())))
            tiles += 1
            peak = max(peak, tile_bytes)
        obs.count("acd.tiles", tiles)
        obs.gauge("acd.tile_bytes_peak", peak)
    return result


def _resolve_budget(memory_budget: "int | None | str") -> int | None:
    if memory_budget == _DEFAULT_BUDGET:
        return runtime_config().memory_budget
    if memory_budget is not None and int(memory_budget) < 1:
        raise ValueError(f"memory_budget must be >= 1 byte, got {memory_budget}")
    return memory_budget


def _histogram_acd(
    histogram: PairHistogram,
    topology: Topology,
    cache: TopologyCache | None,
    memory_budget: int | None,
) -> ACDResult:
    """ACD of a compacted histogram: one distance gather + dot product.

    When the topology's distance matrix is (or becomes) cache-resident,
    the gather + integer dot is fused through
    :func:`repro.kernels.histogram_dot`, which serves it from the
    compiled backend when one is selected; otherwise the distances come
    from the vectorised distance kernel.  All paths are bit-identical.
    """
    if histogram.num_processors > topology.num_processors:
        raise ValueError(
            f"histogram spans {histogram.num_processors} ranks but the "
            f"topology only has {topology.num_processors}"
        )
    if histogram.num_pairs == 0:
        return ACDResult(0, 0)
    _check_ranks(histogram.src, histogram.dst, topology.num_processors)
    if (
        memory_budget is not None
        and dense_matrix_bytes(topology.num_processors) > memory_budget
    ):
        return _tiled_histogram_acd(histogram, topology, cache, memory_budget)
    matrix = (
        cache.matrix_for_queries(topology, histogram.src.size)
        if cache is not None
        else None
    )
    if matrix is not None:
        total = kernels.histogram_dot(
            matrix, histogram.src, histogram.dst, histogram.weights
        )
    else:
        distances = topology.distance(histogram.src, histogram.dst)
        total = int(distances.astype("int64") @ histogram.weights)
    return ACDResult(total_distance=total, count=histogram.total_weight)


def compute_acd(
    events: EventsLike,
    topology: Topology,
    *,
    cache: TopologyCache | None | str = _DEFAULT_CACHE,
    memory_budget: "int | None | str" = _DEFAULT_BUDGET,
) -> ACDResult:
    """Evaluate the ACD of an event multiset on a topology.

    Weighted events contribute ``weight * distance`` to the total and
    ``weight`` to the count, so the result is the average distance per
    unit of data volume; unweighted events behave as weight 1.

    ``events`` may be raw :class:`CommunicationEvents` (streamed chunk
    by chunk) or a :class:`PairHistogram` (one gather + dot product on
    the distinct rank pairs); the results are bit-identical.

    ``cache`` selects the topology cache serving the distance lookups
    (the process-wide default when omitted, ``None`` to bypass caching).

    ``memory_budget`` bounds the evaluation's working set in bytes
    (default: :attr:`RuntimeConfig.memory_budget`; ``None`` for
    unbounded).  When the dense ``p x p`` distance matrix would exceed
    it, histogram evaluations switch to the tiled path and streamed
    evaluations stop materialising the matrix — results are identical
    for any budget.
    """
    if cache == _DEFAULT_CACHE:
        cache = get_topology_cache()
    memory_budget = _resolve_budget(memory_budget)
    if isinstance(events, PairHistogram):
        return _histogram_acd(events, topology, cache, memory_budget)
    if (
        memory_budget is not None
        and dense_matrix_bytes(topology.num_processors) > memory_budget
    ):
        # The cache's matrix section would happily materialise p x p as
        # long as it fits *its* budget; an explicit memory budget that
        # the dense matrix exceeds must keep streaming matrix-free.
        cache = None
    total = 0
    count = 0
    for src, dst, weights in events.iter_weighted_chunks():
        # Guard every chunk before any distance lookup: a cached matrix
        # would otherwise wrap negative ranks silently (garbage
        # distances) and turn over-range ranks into an IndexError
        # instead of the ValueError the histogram path raises.
        _check_ranks(src, dst, topology.num_processors)
        if cache is None:
            distances = topology.distance(src, dst)
        else:
            distances = cache.distances(topology, src, dst)
        if weights is None:
            total += int(distances.sum())
            count += int(src.size)
        else:
            total += int((distances * weights).sum())
            count += int(weights.sum())
    return ACDResult(total_distance=total, count=count)


def acd_breakdown(
    phases: Mapping[str, EventsLike],
    topology: Topology,
    *,
    cache: TopologyCache | None | str = _DEFAULT_CACHE,
    memory_budget: "int | None | str" = _DEFAULT_BUDGET,
) -> dict[str, ACDResult]:
    """Per-phase ACD plus a pooled ``"combined"`` entry.

    Used for the far-field model where interpolation, anterpolation and
    interaction-list traffic are reported separately and together (§IV
    step 10 sums over all three).  Each phase may be raw events or a
    :class:`PairHistogram`.  The phase name ``"combined"`` is reserved
    for that pooled entry; passing a phase with that name raises
    :class:`~repro.errors.ConfigurationError` instead of silently
    overwriting it.

    ``cache`` and ``memory_budget`` are forwarded verbatim to every
    per-phase :func:`compute_acd` call (the shared process cache and
    the configured budget when omitted, ``None`` to bypass caching /
    run unbounded — e.g. for cache ablations).
    """
    if "combined" in phases:
        raise ConfigurationError(
            'phase name "combined" is reserved for the pooled ACD entry; '
            "rename the phase before calling acd_breakdown"
        )
    out: dict[str, ACDResult] = {}
    combined = ACDResult(0, 0)
    for name, events in phases.items():
        result = compute_acd(events, topology, cache=cache, memory_budget=memory_budget)
        out[name] = result
        combined = combined.merged(result)
    out["combined"] = combined
    return out
