"""Energy cost model (after Reissmann & Fernau's locality/energy study).

Reissmann et al. ("A Study of Energy and Locality Effects using
Space-filling Curves") model the energy of a communication pattern as a
per-hop term — every link and router a flit traverses burns a fixed
amount — plus a per-message term for injection/ejection overhead at the
endpoints.  Both inputs are already on hand: the pair histogram gives
the message multiset and the topology's hop metric prices each pair, so

    E = hop_cost * sum(w * d)  +  message_cost * sum(w)

in integer energy units.  The constants are unit-normalised defaults
(a hop is link + router traversal, a message is NIC overhead); only
their *ratio* affects rankings, and both are constructor-overridable.
Rank-local messages (``d = 0``) pay the per-message overhead but no hop
energy, exactly as in the source model.
"""

from __future__ import annotations

from repro.fmm.events import PairHistogram
from repro.metrics.acd import compute_acd
from repro.metrics.base import CommunicationMetric, MetricValue
from repro.topology.base import Topology
from repro.util.validation import check_positive

__all__ = ["EnergyMetric", "DEFAULT_HOP_COST", "DEFAULT_MESSAGE_COST"]

#: Energy units burned per link/router traversal of one unit of weight.
DEFAULT_HOP_COST = 3
#: Energy units of fixed endpoint overhead per unit of message weight.
DEFAULT_MESSAGE_COST = 5


class EnergyMetric(CommunicationMetric):
    """Per-hop plus per-message energy of a communication pattern."""

    name = "energy"

    def __init__(
        self,
        hop_cost: int = DEFAULT_HOP_COST,
        message_cost: int = DEFAULT_MESSAGE_COST,
    ):
        self.hop_cost = check_positive(hop_cost, "hop_cost")
        self.message_cost = check_positive(message_cost, "message_cost")

    def evaluate(self, histogram: PairHistogram, topology: Topology) -> MetricValue:
        # compute_acd supplies the exact integer sums (tiled under a
        # memory budget, cached distances); energy is a linear form.
        acd = compute_acd(histogram, topology)
        return MetricValue(
            total=self.hop_cost * acd.total_distance + self.message_cost * acd.count,
            count=acd.count,
        )
