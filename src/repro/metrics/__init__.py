"""Evaluation metrics: ACD (the paper's contribution), ANNS, clustering."""

from repro.metrics.acd import ACDResult, acd_breakdown, compute_acd
from repro.metrics.anns import (
    StretchResult,
    analytic_anns_gray,
    analytic_anns_rowmajor,
    analytic_anns_zcurve,
    anns,
    neighbor_stretch,
)
from repro.metrics.anns3d import anns3d, neighbor_stretch3d
from repro.metrics.clustering import average_clusters, cluster_count
from repro.metrics.stretch import all_pairs_stretch, max_nearest_neighbor_stretch

__all__ = [
    "ACDResult",
    "compute_acd",
    "acd_breakdown",
    "StretchResult",
    "anns",
    "neighbor_stretch",
    "analytic_anns_rowmajor",
    "analytic_anns_zcurve",
    "analytic_anns_gray",
    "anns3d",
    "neighbor_stretch3d",
    "cluster_count",
    "average_clusters",
    "all_pairs_stretch",
    "max_nearest_neighbor_stretch",
]
