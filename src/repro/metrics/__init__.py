"""Evaluation metrics: ACD (the paper's contribution), ANNS, clustering,
plus the pluggable objective registry (energy, data volume, partition
surface-to-volume)."""

from repro.metrics.acd import ACDResult, acd_breakdown, compute_acd
from repro.metrics.anns import (
    StretchResult,
    analytic_anns_gray,
    analytic_anns_rowmajor,
    analytic_anns_zcurve,
    anns,
    neighbor_stretch,
)
from repro.metrics.anns3d import anns3d, neighbor_stretch3d
from repro.metrics.base import CommunicationMetric, Metric, MetricValue, PartitionMetric
from repro.metrics.clustering import average_clusters, cluster_count
from repro.metrics.data_volume import DataVolumeMetric
from repro.metrics.energy import EnergyMetric
from repro.metrics.registry import (
    METRICS,
    AcdMetric,
    get_metric,
    list_metrics,
    metric_names,
)
from repro.metrics.stretch import all_pairs_stretch, max_nearest_neighbor_stretch
from repro.metrics.surface_volume import SurfaceVolumeMetric, partition_surfaces

__all__ = [
    "ACDResult",
    "compute_acd",
    "acd_breakdown",
    "StretchResult",
    "anns",
    "neighbor_stretch",
    "analytic_anns_rowmajor",
    "analytic_anns_zcurve",
    "analytic_anns_gray",
    "anns3d",
    "neighbor_stretch3d",
    "cluster_count",
    "average_clusters",
    "all_pairs_stretch",
    "max_nearest_neighbor_stretch",
    "Metric",
    "MetricValue",
    "CommunicationMetric",
    "PartitionMetric",
    "AcdMetric",
    "EnergyMetric",
    "DataVolumeMetric",
    "SurfaceVolumeMetric",
    "partition_surfaces",
    "METRICS",
    "get_metric",
    "list_metrics",
    "metric_names",
]
