"""3D nearest-neighbour stretch (extension for future-work item ii)."""

from __future__ import annotations

import numpy as np

from repro.metrics.anns import StretchResult
from repro.octree.cells import neighbor_offsets3d
from repro.sfc.curves3d import Curve3D, get_curve3d

__all__ = ["neighbor_stretch3d", "anns3d"]


def neighbor_stretch3d(
    curve: Curve3D | str,
    order: int | None = None,
    radius: int = 1,
) -> StretchResult:
    """Stretch statistics of a 3D curve over all in-radius pairs.

    The 3D analogue of :func:`repro.metrics.neighbor_stretch`: for every
    pair of lattice points within Manhattan distance ``radius`` the
    stretch is the curve-index gap divided by the spatial distance.
    """
    if isinstance(curve, str):
        if order is None:
            raise ValueError("order is required when passing a curve name")
        curve = get_curve3d(curve, order)
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    side = curve.side
    ax = np.arange(side, dtype=np.int64)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    grid = curve.encode(x.ravel(), y.ravel(), z.ravel()).reshape(side, side, side)
    grid = grid.astype(np.float64)
    total = 0.0
    count = 0
    worst = 0.0
    for dx, dy, dz in neighbor_offsets3d(radius, "manhattan"):
        if not (dx > 0 or (dx == 0 and (dy > 0 or (dy == 0 and dz > 0)))):
            continue  # each unordered pair once
        if max(abs(dx), abs(dy), abs(dz)) >= side:
            continue
        lo = [max(0, -d) for d in (dx, dy, dz)]
        hi = [side - max(0, d) for d in (dx, dy, dz)]
        a = grid[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]]
        b = grid[
            lo[0] + dx : hi[0] + dx, lo[1] + dy : hi[1] + dy, lo[2] + dz : hi[2] + dz
        ]
        if a.size == 0:
            continue
        stretches = np.abs(a - b) / float(abs(dx) + abs(dy) + abs(dz))
        total += float(stretches.sum())
        count += int(stretches.size)
        worst = max(worst, float(stretches.max()))
    return StretchResult(total_stretch=total, count=count, max_stretch=worst)


def anns3d(curve: Curve3D | str, order: int | None = None) -> float:
    """The radius-1 average nearest-neighbour stretch of a 3D curve."""
    return neighbor_stretch3d(curve, order, radius=1).mean
