"""Registry of the study's evaluation metrics (objectives).

Mirrors :mod:`repro.sfc.registry` and :mod:`repro.topology.registry`:
every pluggable objective registers here under a canonical name, the
experiment harness and the ``/recommend`` service validate objective
names against it, and :func:`get_metric` is the uniform factory.

``"acd"`` — the paper's Average Communicated Distance — is registered
like any other metric, so the historical behaviour is simply the
default objective rather than a special case.
"""

from __future__ import annotations

from repro.metrics.acd import compute_acd
from repro.metrics.base import CommunicationMetric, Metric, MetricValue
from repro.metrics.data_volume import DataVolumeMetric
from repro.metrics.energy import EnergyMetric
from repro.metrics.surface_volume import SurfaceVolumeMetric
from repro.util.registry import Registry

__all__ = [
    "METRICS",
    "AcdMetric",
    "get_metric",
    "list_metrics",
    "metric_names",
]


class AcdMetric(CommunicationMetric):
    """The paper's ACD, exposed through the common metric protocol."""

    name = "acd"

    def evaluate(self, histogram, topology) -> MetricValue:
        result = compute_acd(histogram, topology)
        return MetricValue(total=result.total_distance, count=result.count)


METRICS: Registry[Metric] = Registry("metric")
METRICS.register("acd", AcdMetric, aliases=("average communicated distance",))
METRICS.register("energy", EnergyMetric)
METRICS.register("data_volume", DataVolumeMetric, aliases=("bytes",))
METRICS.register(
    "surface_to_volume", SurfaceVolumeMetric, aliases=("surface volume",)
)


def get_metric(name: str) -> Metric:
    """Instantiate the metric registered under ``name`` (with defaults)."""
    return METRICS.create(name)


def list_metrics() -> tuple[str, ...]:
    """Canonical names of all registered metrics, in registration order."""
    return METRICS.names()


def metric_names() -> tuple[str, ...]:
    """Alias of :func:`list_metrics`, matching the other registries."""
    return METRICS.names()
