"""Companion stretch metrics from Xu & Tirthapura (IPDPS'12).

Besides the ANNS, their paper defines the *maximum nearest neighbor
stretch* (worst single pair) and the *all-pairs stretch* (the mean over
every point pair, not only neighbours).  §I of the reproduced paper
positions its radius-``r`` generalisation as "an intermediate measure of
SFC performance between the ANNS and all neighbors stretch", so we
provide the two endpoints for comparison.

The all-pairs stretch is :math:`\\Theta(N^4)` pairs on an
:math:`N \\times N` lattice; it is computed exactly for small lattices
and by seeded Monte-Carlo sampling above a size threshold.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike
from repro.metrics.anns import neighbor_stretch
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve
from repro.util.rng import as_generator

__all__ = ["max_nearest_neighbor_stretch", "all_pairs_stretch"]

#: Lattices with at most this many cells use the exact all-pairs sum.
_EXACT_CELL_LIMIT = 4096


def _resolve(curve: SpaceFillingCurve | str, order: int | None) -> SpaceFillingCurve:
    if isinstance(curve, str):
        if order is None:
            raise ValueError("order is required when passing a curve name")
        return get_curve(curve, order)
    return curve


def max_nearest_neighbor_stretch(
    curve: SpaceFillingCurve | str, order: int | None = None
) -> float:
    """Worst-case index gap between spatially adjacent points."""
    return neighbor_stretch(_resolve(curve, order), radius=1).max_stretch


def all_pairs_stretch(
    curve: SpaceFillingCurve | str,
    order: int | None = None,
    *,
    rng: SeedLike = None,
    samples: int = 200_000,
) -> float:
    """Mean stretch over all (or sampled) distinct point pairs.

    Stretch of a pair is ``|index(a) - index(b)|`` divided by the
    Manhattan distance between the points.
    """
    sfc = _resolve(curve, order)
    size = sfc.size
    if size < 2:
        return 0.0
    if size <= _EXACT_CELL_LIMIT:
        idx = np.arange(size, dtype=np.int64)
        x, y = sfc.decode(idx)
        # all ordered pairs i < j via broadcasting
        dx = np.abs(x[:, None] - x[None, :])
        dy = np.abs(y[:, None] - y[None, :])
        di = np.abs(idx[:, None] - idx[None, :])
        iu = np.triu_indices(size, k=1)
        return float((di[iu] / (dx[iu] + dy[iu])).mean())
    gen = as_generator(rng)
    a = gen.integers(0, size, size=samples)
    b = gen.integers(0, size, size=samples)
    keep = a != b
    a, b = a[keep], b[keep]
    ax, ay = sfc.decode(a)
    bx, by = sfc.decode(b)
    spatial = np.abs(ax - bx) + np.abs(ay - by)
    return float((np.abs(a - b) / spatial).mean())
