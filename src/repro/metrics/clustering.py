"""The clustering-number metric (Moon et al., TKDE 2001).

The paper's related-work discussion contrasts ACD/ANNS with "the most
commonly used metric ... the number of clusters accessed, which measures
the number of times an SFC leaves and reenters a rectilinear region of
interest".  We implement it so the literature's classic finding — the
Hilbert curve minimises range-query clustering, the very result the
paper's surprising ANNS numbers are contrasted against — can be
reproduced inside the same framework.

A *cluster* is a maximal run of consecutive curve indices inside the
query rectangle; fewer clusters mean fewer random seeks (databases) or
fewer remote chunks touched (parallel range queries).
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve
from repro.util.rng import as_generator

__all__ = ["cluster_count", "average_clusters"]


def cluster_count(
    curve: SpaceFillingCurve,
    x0: int,
    y0: int,
    width: int,
    height: int,
) -> int:
    """Number of index clusters covering the rectangle.

    The rectangle spans cells ``[x0, x0 + width) x [y0, y0 + height)``
    and must lie inside the lattice.
    """
    side = curve.side
    if width < 1 or height < 1:
        raise ValueError("query rectangle must be non-empty")
    if not (0 <= x0 and x0 + width <= side and 0 <= y0 and y0 + height <= side):
        raise ValueError(
            f"rectangle ({x0},{y0})+({width}x{height}) exceeds the {side}x{side} lattice"
        )
    xs, ys = np.meshgrid(
        np.arange(x0, x0 + width, dtype=np.int64),
        np.arange(y0, y0 + height, dtype=np.int64),
        indexing="ij",
    )
    idx = np.sort(curve.encode(xs.ravel(), ys.ravel()))
    return int(1 + np.count_nonzero(np.diff(idx) > 1))


def average_clusters(
    curve: SpaceFillingCurve | str,
    order: int | None = None,
    *,
    query_size: int = 8,
    rng: SeedLike = None,
    samples: int = 500,
) -> float:
    """Mean cluster count over random square range queries.

    Parameters
    ----------
    query_size:
        Side of the square query window (cells).
    samples:
        Number of uniformly placed queries to average over.
    """
    if isinstance(curve, str):
        if order is None:
            raise ValueError("order is required when passing a curve name")
        curve = get_curve(curve, order)
    side = curve.side
    if query_size > side:
        raise ValueError(f"query_size {query_size} exceeds lattice side {side}")
    gen = as_generator(rng)
    xs = gen.integers(0, side - query_size + 1, size=samples)
    ys = gen.integers(0, side - query_size + 1, size=samples)
    counts = [
        cluster_count(curve, int(x), int(y), query_size, query_size)
        for x, y in zip(xs, ys)
    ]
    return float(np.mean(counts))
