"""Metric protocol: pluggable objectives over the shared substrates.

The paper scores every curve/topology pairing through one objective —
the ACD.  Related work derives a family of sibling cost models from the
very same inputs: Reissmann et al. attach per-hop and per-message
*energy* terms to the communication pattern, Walker & Skjellum count
*bytes moved*, and Gadouleau & Weinzierl score the *partition quality*
of SFC chunkings.  This module defines the small protocol that lets all
of them plug into the experiment harness (studies, store, ``/recommend``
objectives) uniformly:

* :class:`MetricValue` — the ``(total, count)`` integer aggregate every
  evaluation produces.  Totals are exact integers so pooling across
  trials, processes and store round trips is bit-identical.
* :class:`CommunicationMetric` — evaluates a
  :class:`~repro.fmm.events.PairHistogram` against a topology (the ACD
  substrate: one gather over the distinct rank pairs).
* :class:`PartitionMetric` — evaluates a contiguous SFC chunking of the
  full curve lattice, with no topology involved.

Concrete metrics register in :mod:`repro.metrics.registry`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.fmm.events import PairHistogram
from repro.topology.base import Topology

__all__ = ["MetricValue", "Metric", "CommunicationMetric", "PartitionMetric"]


@dataclass(frozen=True)
class MetricValue:
    """Integer aggregate of one metric evaluation.

    ``total`` is the metric's summed cost (hop-weighted distance, energy
    units, bytes, ...) and ``count`` the event weight it covers; the
    ``mean`` is cost per unit of communication.  Mirrors
    :class:`~repro.metrics.acd.ACDResult` so pooling semantics carry
    over unchanged.
    """

    total: int
    count: int

    @property
    def mean(self) -> float:
        """Cost per unit of event weight (0.0 for an empty evaluation)."""
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "MetricValue") -> "MetricValue":
        """Pool two evaluations of the same metric into one aggregate."""
        return MetricValue(self.total + other.total, self.count + other.count)

    def scaled(self, repetitions: int) -> "MetricValue":
        """The aggregate of ``repetitions`` identical evaluations."""
        return MetricValue(self.total * repetitions, self.count * repetitions)


class Metric(abc.ABC):
    """A registered objective; concrete kinds define the evaluate shape."""

    #: Registry name of the metric (e.g. ``"energy"``); set by subclasses.
    name: str = ""
    #: ``"communication"`` (histogram x topology) or ``"partition"``
    #: (SFC chunking quality); selects which study/service inputs apply.
    kind: str = ""


class CommunicationMetric(Metric):
    """A metric of a communication pattern evaluated on a network."""

    kind = "communication"

    @abc.abstractmethod
    def evaluate(self, histogram: PairHistogram, topology: Topology) -> MetricValue:
        """Score one compacted event histogram on one concrete network.

        Implementations must stay in integer arithmetic (bit-identical
        across chunkings, tilings and store round trips) and must not
        depend on any state outside ``(histogram, topology)``.
        """


class PartitionMetric(Metric):
    """A metric of the contiguous chunking an SFC induces on its lattice."""

    kind = "partition"

    @abc.abstractmethod
    def evaluate(self, curve: str, order: int, num_processors: int) -> dict:
        """Score the ``p``-way contiguous chunking of the full curve.

        Returns a JSON-native mapping (ints and floats only) so results
        persist through the store unchanged.
        """
