"""Data-movement cost model (Walker & Skjellum-style bytes moved).

Message-passing performance models in the MPI tradition charge a
message by the bytes it actually moves through the machine: the payload
crosses every link on its path, is copied out of the send buffer and
into the receive buffer at the endpoints, and a rank-local message
degenerates to a single memory copy.  With ``bytes_per_unit`` bytes per
unit of event weight this gives, over a pair histogram,

    V = bytes_per_unit * ( sum(w * d)          # link crossings
                           + 2 * sum(w | d>0)  # send + receive copies
                           + sum(w | d=0) )    # local memory copy

in exact integer bytes.  Because the histograms identify rank-local
traffic by ``src == dst`` (hop distance zero on every topology), the
local/remote split never consults the network; only the link-crossing
term does.
"""

from __future__ import annotations

from repro.fmm.events import PairHistogram
from repro.metrics.acd import compute_acd
from repro.metrics.base import CommunicationMetric, MetricValue
from repro.topology.base import Topology
from repro.util.validation import check_positive

__all__ = ["DataVolumeMetric", "DEFAULT_BYTES_PER_UNIT"]

#: Payload bytes represented by one unit of event weight (one FMM
#: interaction's worth of coefficients; overridable per instance).
DEFAULT_BYTES_PER_UNIT = 64


class DataVolumeMetric(CommunicationMetric):
    """Total bytes moved: per-hop payload plus endpoint buffer copies."""

    name = "data_volume"

    def __init__(self, bytes_per_unit: int = DEFAULT_BYTES_PER_UNIT):
        self.bytes_per_unit = check_positive(bytes_per_unit, "bytes_per_unit")

    def evaluate(self, histogram: PairHistogram, topology: Topology) -> MetricValue:
        acd = compute_acd(histogram, topology)
        local = (
            int(histogram.weights[histogram.src == histogram.dst].sum())
            if histogram.num_pairs
            else 0
        )
        remote = acd.count - local
        return MetricValue(
            total=self.bytes_per_unit * (acd.total_distance + 2 * remote + local),
            count=acd.count,
        )
