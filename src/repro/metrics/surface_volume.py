"""Discrete surface-to-volume ratio of SFC partitions.

Gadouleau & Weinzierl ("The maximum discrete surface-to-volume ratio of
space-filling curve partitions") study exactly the partitions this
package builds in §IV step 4: cut the curve-ordered lattice into ``p``
contiguous chunks and hand chunk ``i`` to processor ``i``.  Each part is
then a polyomino; its *surface* is the number of exposed unit faces
(lattice-neighbour faces leading out of the part, domain boundary
included) and its *volume* the number of cells.  The partition's score
is the worst part's ratio

    max_i  surface(P_i) / volume(P_i),

which bounds the halo-exchange overhead of a stencil/particle code
relative to its useful work — small is good, and continuous curves
(Hilbert, Peano) provably keep it O(1/sqrt(V)) while discontinuous
orders can shatter a chunk into distant fragments.

Two analytic envelopes from the literature cross-check every
evaluation (asserted in the tests, not here):

* any polyomino of volume ``V`` obeys the isoperimetric lower bound
  ``surface >= 2 * ceil(2 * sqrt(V))``;
* a *connected* chunk (every segment of a continuous curve) satisfies
  ``surface <= 2 * V + 2``, the Gadouleau–Weinzierl worst-case envelope
  for continuous-curve segments, with equality only for snake-like
  degenerate shapes.

All surface counting is exact integer arithmetic over the full lattice,
so results are independent of chunk evaluation order and process count.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import PartitionMetric
from repro.partition.chunking import chunk_assignment
from repro.sfc.registry import get_curve
from repro.util.validation import check_positive

__all__ = ["SurfaceVolumeMetric", "partition_surfaces"]


def partition_surfaces(curve_name: str, order: int, num_processors: int) -> tuple:
    """Exact per-part surface and volume of the contiguous SFC chunking.

    Returns ``(surfaces, volumes)`` as int64 arrays of length ``p``:
    ``surfaces[i]`` counts the exposed unit faces of part ``i`` (4-neighbour
    faces whose other side lies in a different part or outside the
    lattice), ``volumes[i]`` its cell count.
    """
    p = check_positive(num_processors, "num_processors")
    curve = get_curve(curve_name, order)
    if p > curve.size:
        raise ValueError(
            f"cannot cut {curve.size} cells into {p} non-empty parts"
        )
    # part label of each lattice cell: position along the curve -> chunk
    labels = chunk_assignment(curve.size, p)[curve.index_grid()]
    volumes = np.bincount(labels.ravel(), minlength=p)
    # pad with a sentinel part so domain-boundary faces count as exposed
    padded = np.pad(labels, 1, constant_values=-1)
    surfaces = np.zeros(p, dtype=np.int64)
    for shifted in (
        padded[:-2, 1:-1],
        padded[2:, 1:-1],
        padded[1:-1, :-2],
        padded[1:-1, 2:],
    ):
        exposed = labels != shifted
        surfaces += np.bincount(labels[exposed], minlength=p)
    return surfaces, volumes


class SurfaceVolumeMetric(PartitionMetric):
    """Worst-case surface-to-volume ratio over the ``p`` curve chunks."""

    name = "surface_to_volume"

    def evaluate(self, curve: str, order: int, num_processors: int) -> dict:
        surfaces, volumes = partition_surfaces(curve, order, num_processors)
        ratios = surfaces / volumes
        worst = int(np.argmax(ratios))
        return {
            "curve": curve,
            "order": int(order),
            "num_processors": int(num_processors),
            "cells": int(volumes.sum()),
            "total_surface": int(surfaces.sum()),
            "max_ratio": float(ratios[worst]),
            "max_surface": int(surfaces[worst]),
            "max_volume": int(volumes[worst]),
            "mean_ratio": float(ratios.mean()),
        }
