"""Average Nearest Neighbor Stretch (ANNS) and its radius generalisation.

Xu & Tirthapura (IPDPS'12) define the nearest-neighbour stretch of an
SFC as the multiplicative increase in distance between points that are
adjacent in space (Manhattan distance 1) once they are mapped to the
linear order; the ANNS averages this over all such pairs.  §V of the
paper reproduces the metric empirically and generalises it to larger
Manhattan radii: for a pair at spatial distance ``d <= r`` the stretch is
``|index(a) - index(b)| / d``.

The computation feeds every lattice point through the curve's index
grid and accumulates one vectorised pass per stencil offset, so a
512x512 lattice (the paper's largest, Fig. 5) takes milliseconds.
Index grids are memoised in the shared
:class:`~repro.topology.cache.TopologyCache` (keyed by curve name and
order), so sweeping the radius over the same curve decodes the lattice
once.

Analytic cross-checks
---------------------
:func:`analytic_anns_rowmajor` and :func:`analytic_anns_zcurve` compute
the exact ANNS of the two curves Xu & Tirthapura analysed, from closed
forms derived in their paper's spirit (trailing-ones counting for the
Z-curve); the test-suite verifies the empirical pipeline against both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quadtree.cells import neighbor_offsets
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve
from repro.topology.cache import get_topology_cache
from repro.util.validation import check_order

__all__ = [
    "StretchResult",
    "neighbor_stretch",
    "anns",
    "analytic_anns_rowmajor",
    "analytic_anns_zcurve",
    "analytic_anns_gray",
]


@dataclass(frozen=True)
class StretchResult:
    """Aggregate stretch statistics over all in-radius pairs."""

    total_stretch: float
    count: int
    max_stretch: float

    @property
    def mean(self) -> float:
        """Average stretch (the ANNS when radius == 1)."""
        return self.total_stretch / self.count if self.count else 0.0


def neighbor_stretch(
    curve: SpaceFillingCurve | str,
    order: int | None = None,
    radius: int = 1,
) -> StretchResult:
    """Stretch statistics of a curve over all pairs within ``radius``.

    Parameters
    ----------
    curve:
        Curve instance, or registry name (then ``order`` is required).
    radius:
        Manhattan radius of the neighbourhood (1 = classic ANNS;
        Fig. 5(b) of the paper uses 6).
    """
    if isinstance(curve, str):
        if order is None:
            raise ValueError("order is required when passing a curve name")
        curve = get_curve(curve, order)
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    the_curve = curve
    grid = get_topology_cache().table(
        ("index_grid", type(the_curve).__name__, the_curve.name, the_curve.order),
        lambda: the_curve.index_grid().astype(np.float64),
    )
    side = curve.side
    total = 0.0
    count = 0
    worst = 0.0
    for dx, dy in neighbor_offsets(radius, "manhattan"):
        if not (dx > 0 or (dx == 0 and dy > 0)):
            continue  # each unordered pair once
        if abs(dx) >= side or abs(dy) >= side:
            continue  # offset longer than the lattice: no valid pairs
        ax0, ax1 = max(0, -dx), side - max(0, dx)
        ay0, ay1 = max(0, -dy), side - max(0, dy)
        a = grid[ax0:ax1, ay0:ay1]
        b = grid[ax0 + dx : ax1 + dx, ay0 + dy : ay1 + dy]
        if a.size == 0:
            continue
        stretches = np.abs(a - b) / float(abs(dx) + abs(dy))
        total += float(stretches.sum())
        count += int(stretches.size)
        worst = max(worst, float(stretches.max()))
    return StretchResult(total_stretch=total, count=count, max_stretch=worst)


def anns(curve: SpaceFillingCurve | str, order: int | None = None) -> float:
    """The classic ANNS (radius-1 mean stretch) of a curve."""
    return neighbor_stretch(curve, order, radius=1).mean


def analytic_anns_rowmajor(order: int) -> float:
    """Exact ANNS of the row-major order on a ``2**order`` lattice.

    Vertical neighbours are consecutive (stretch 1); horizontal
    neighbours are a full column apart (stretch ``side``); both pair
    families have the same cardinality, so the mean is
    ``(side + 1) / 2``.
    """
    k = check_order(order)
    side = 1 << k
    if side == 1:
        return 0.0
    return (side + 1) / 2.0


def analytic_anns_zcurve(order: int) -> float:
    """Exact ANNS of the Z-curve on a ``2**order`` lattice.

    For a ``+1`` step in ``y`` (the low interleaved coordinate), a value
    ``y`` with exactly ``t`` trailing one-bits jumps by
    ``4**t - (4**t - 1)/3 = (2 * 4**t + 1) / 3`` in the Morton code,
    independent of ``x``; a step in ``x`` (the high coordinate) jumps by
    exactly twice that.  Counting how many ``y`` in ``[0, side-1)`` have
    ``t`` trailing ones gives the exact total.
    """
    k = check_order(order)
    side = 1 << k
    if side == 1:
        return 0.0
    total = 0
    for t in range(k):
        # values in [0, side-1) with exactly t trailing ones
        n_vals = side >> (t + 1)
        jump = (2 * 4**t + 1) // 3
        # y-steps: `side` columns worth of pairs; x-steps: double jump
        total += n_vals * side * jump  # dy = +1 pairs
        total += n_vals * side * 2 * jump  # dx = +1 pairs
    pairs = 2 * side * (side - 1)
    return total / pairs


def analytic_anns_gray(order: int) -> float:
    """Exact ANNS of the Gray order on a ``2**order`` lattice: ``3 * side / 4``.

    The Gray-rank flip pattern averages out remarkably cleanly: summing
    the rank gaps of the ``y`` steps (which flip the trailing run of
    even Morton bits plus one) and the doubled ``x`` steps over the full
    lattice gives exactly ``3 * side / 4`` at every order — 1.5x the
    Z-curve/row-major value and the worst of the four study curves.
    The test-suite verifies this closed form against the empirical
    pipeline to machine precision for orders 1-9.
    """
    k = check_order(order)
    side = 1 << k
    if side == 1:
        return 0.0
    return 3 * side / 4
