"""Per-link traffic under dimension-ordered routing (extension).

§VIII lists "the impact of ... network contention on communication
efficiency" as future work; the ACD itself is contention-unaware.  This
module takes the same communication-event multisets and, instead of
summing shortest-path lengths, *routes* every message with XY
(dimension-ordered) routing on a mesh or torus and accumulates how many
messages cross each physical link.  The maximum link load is the
classic congestion lower bound on communication time.

The accumulation uses difference arrays: each message contributes
``+1/-1`` at its segment end-points and one cumulative sum per axis
recovers the loads, so routing ``E`` events on an ``s x s`` network
costs ``O(E + s^2)`` rather than ``O(E * s)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatArray, IntArray
from repro.fmm.events import CommunicationEvents
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

__all__ = ["LinkLoadResult", "link_loads"]


@dataclass(frozen=True)
class LinkLoadResult:
    """Traffic accumulated on every physical link of a grid network.

    Attributes
    ----------
    horizontal:
        Loads on +x links; entry ``[x, y]`` is the link from ``(x, y)``
        to ``(x+1, y)`` (modulo the side for a torus).  Shape is
        ``(side-1, side)`` for a mesh and ``(side, side)`` for a torus.
    vertical:
        Loads on +y links; entry ``[x, y]`` is the link from ``(x, y)``
        to ``(x, y+1)``.  Shape is ``(side, side-1)`` for a mesh and
        ``(side, side)`` for a torus.
    """

    horizontal: IntArray
    vertical: IntArray

    @property
    def max_load(self) -> int:
        """Heaviest single-link traffic (congestion bound)."""
        candidates = [int(a.max()) for a in (self.horizontal, self.vertical) if a.size]
        return max(candidates) if candidates else 0

    @property
    def mean_load(self) -> float:
        """Average traffic per physical link."""
        total_links = self.horizontal.size + self.vertical.size
        return self.total_traffic / total_links if total_links else 0.0

    @property
    def total_traffic(self) -> int:
        """Total link crossings = total hop distance of all events."""
        return int(self.horizontal.sum()) + int(self.vertical.sum())

    def load_histogram(self, bins: int = 20) -> tuple[FloatArray, FloatArray]:
        """Histogram of per-link loads (counts, bin edges)."""
        loads = np.concatenate([self.horizontal.ravel(), self.vertical.ravel()])
        counts, edges = np.histogram(loads, bins=bins)
        return counts.astype(np.float64), edges


def _segments(
    a: IntArray, b: IntArray, side: int, wrap: bool
) -> tuple[IntArray, IntArray]:
    """Start and length of the +direction link segment crossed per event."""
    if not wrap:
        lo = np.minimum(a, b)
        return lo, np.abs(a - b)
    forward = (b - a) % side
    use_forward = forward <= side - forward
    start = np.where(use_forward, a, b)
    length = np.where(use_forward, forward, side - forward)
    return start, length


def _accumulate_axis(
    start: IntArray, length: IntArray, row: IntArray, side: int, wrap: bool
) -> IntArray:
    """Difference-array accumulation of 1D segments, one row per message."""
    diff = np.zeros((side + 1, side), dtype=np.int64)
    end = start + length
    over = end > side
    hi1 = np.where(over, side, end)
    np.add.at(diff, (start, row), 1)
    np.add.at(diff, (hi1, row), -1)
    if wrap and np.any(over):
        wrapped = np.nonzero(over)[0]
        np.add.at(diff, (np.zeros(wrapped.size, dtype=np.int64), row[wrapped]), 1)
        np.add.at(diff, (end[wrapped] - side, row[wrapped]), -1)
    loads = np.cumsum(diff[:-1], axis=0)
    return loads if wrap else loads[: side - 1]


def link_loads(events: CommunicationEvents, topology) -> LinkLoadResult:
    """Route all events with XY routing and accumulate per-link traffic.

    Supports :class:`~repro.topology.MeshTopology` and
    :class:`~repro.topology.TorusTopology` (on the torus the shorter
    wrap direction is taken per dimension, ties going forward).
    """
    if isinstance(topology, TorusTopology):
        wrap = True
    elif isinstance(topology, MeshTopology):
        wrap = False
    else:
        raise TypeError(
            f"link loads require a mesh or torus topology, got {type(topology).__name__}"
        )
    side = topology.side
    h_shape = (side, side) if wrap else (side - 1, side)
    v_shape = (side, side) if wrap else (side, side - 1)
    horizontal = np.zeros(h_shape, dtype=np.int64)
    vertical = np.zeros(v_shape, dtype=np.int64)
    for src, dst in events.iter_chunks():
        ax, ay = topology.layout.coords(src)
        bx, by = topology.layout.coords(dst)
        # X leg at the source row y = ay
        sx, lx = _segments(ax, bx, side, wrap)
        horizontal += _accumulate_axis(sx, lx, ay, side, wrap)
        # Y leg at the destination column x = bx; the accumulator indexes
        # (segment position, row) = (y, x), so transpose into [x, y] form.
        sy, ly = _segments(ay, by, side, wrap)
        vertical += _accumulate_axis(sy, ly, bx, side, wrap).T
    return LinkLoadResult(horizontal=horizontal, vertical=vertical)
