"""Contention modelling extension: link loads and exchange simulation."""

from repro.contention.linkload import LinkLoadResult, link_loads
from repro.contention.routing import RoutedBatch, route, route_batch, route_events
from repro.contention.simulator import SimulationResult, simulate_exchange

__all__ = [
    "LinkLoadResult",
    "link_loads",
    "route",
    "route_events",
    "route_batch",
    "RoutedBatch",
    "SimulationResult",
    "simulate_exchange",
]
