"""Deterministic routing: expand rank pairs into link-level paths.

The contention simulator needs the exact sequence of directed links a
message crosses.  Each topology gets its textbook deterministic router:

* bus / ring — walk the line (shorter arc on the ring),
* mesh / torus — XY dimension-ordered routing (shorter wrap per axis),
* hypercube — e-cube routing (fix differing bits from the lowest),
* quadtree / octree — up to the lowest common ancestor switch and down,
* fat tree — the same up/down tree walk, over leaf ranks directly,
* dragonfly — minimal direct routing (gateway router, global link,
  gateway router),
* mesh3d / torus3d — XYZ dimension-ordered routing.

Every hop is a directed edge between *network nodes*; for the quadtree
the interior switches appear as ``("sw", level, cx, cy)`` nodes, for the
direct networks nodes are the ranks themselves.  Paths are minimal: the
number of hops always equals :meth:`Topology.distance` (property-tested),
so simulated latencies are directly comparable to the ACD.

Two entry points share the same per-topology route definitions:

* :func:`route` — one scalar path as a Python list of nodes (handy for
  inspection and property tests),
* :func:`route_batch` — the whole event batch in one vectorised pass,
  returning a :class:`RoutedBatch` of dense integer link ids in CSR
  layout.  This is what the simulator consumes; node sequences are
  built with NumPy repeat/scatter kernels (no per-message Python loop)
  and per-topology lookup tables are memoised through the shared
  :mod:`repro.topology.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro import kernels
from repro._typing import IntArray
from repro.topology.base import Topology
from repro.topology.bus import BusTopology
from repro.topology.cache import TopologyCache, get_topology_cache
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fat_tree import FatTreeTopology
from repro.topology.grid3d import Mesh3DTopology, OctreeTopology, Torus3DTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.mesh import MeshTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology
from repro.util.bits import bit_length, popcount

__all__ = ["route", "route_events", "route_batch", "RoutedBatch"]

Node = Hashable


def _line_path(a: int, b: int) -> list[Node]:
    step = 1 if b >= a else -1
    return list(range(a, b + step, step))


def _ring_path(a: int, b: int, p: int) -> list[Node]:
    forward = (b - a) % p
    if forward <= p - forward:
        return [(a + i) % p for i in range(forward + 1)]
    back = p - forward
    return [(a - i) % p for i in range(back + 1)]


def _axis_walk(start: int, target: int, side: int, wrap: bool) -> list[int]:
    """Coordinates visited along one axis (inclusive of both ends)."""
    if not wrap:
        step = 1 if target >= start else -1
        return list(range(start, target + step, step))
    forward = (target - start) % side
    if forward <= side - forward:
        return [(start + i) % side for i in range(forward + 1)]
    back = side - forward
    return [(start - i) % side for i in range(back + 1)]


def _grid_path(topo: MeshTopology, a: int, b: int, wrap: bool) -> list[Node]:
    gax, gay = topo.layout.coords(np.array([a]))
    gbx, gby = topo.layout.coords(np.array([b]))
    ax, ay, bx, by = int(gax[0]), int(gay[0]), int(gbx[0]), int(gby[0])
    grid = topo.layout.rank_grid()
    path = [grid[x, ay] for x in _axis_walk(ax, bx, topo.side, wrap)]
    path.extend(grid[bx, y] for y in _axis_walk(ay, by, topo.side, wrap)[1:])
    return [int(r) for r in path]


def _hypercube_path(topo: HypercubeTopology, a: int, b: int) -> list[Node]:
    labels = topo._labels  # rank -> node label
    inv = np.empty(topo.num_processors, dtype=np.int64)
    inv[labels] = np.arange(topo.num_processors)
    cur = int(labels[a])
    target = int(labels[b])
    path = [a]
    bit = 0
    while cur != target:
        if (cur ^ target) & (1 << bit):
            cur ^= 1 << bit
            path.append(int(inv[cur]))
        bit += 1
    return path


def _tree_path(a: int, b: int, za: int, zb: int, m: int, bits: int) -> list[Node]:
    """Leaf-LCA-leaf walk through a complete switch tree.

    ``bits`` is the digit width (2 for quadtree, 3 for octree); the
    switch at level ``l`` is identified by the leading ``bits * l`` code
    bits of the leaves it covers.
    """
    if a == b:
        return [a]
    common = m
    diff = za ^ zb
    if diff:
        common = m - ((diff.bit_length() + bits - 1) // bits)
    path: list[Node] = [a]
    for level in range(m - 1, common - 1, -1):
        path.append(("sw", level, za >> (bits * (m - level))))
    for level in range(common + 1, m):
        path.append(("sw", level, zb >> (bits * (m - level))))
    path.append(b)
    return path


def _dragonfly_path(topo: DragonflyTopology, a: int, b: int) -> list[Node]:
    """Minimal direct routing: gateway router, global link, gateway router."""
    s = topo.group_size
    gi, ri = a // s, a % s
    gj, rj = b // s, b % s
    if gi == gj:
        return [a] if a == b else [a, b]
    attach_i = gj if gj < gi else gj - 1
    attach_j = gi if gi < gj else gi - 1
    path: list[Node] = [a]
    if ri != attach_i:
        path.append(gi * s + attach_i)
    path.append(gj * s + attach_j)
    if rj != attach_j:
        path.append(b)
    return path


def _grid3d_path(topo: Mesh3DTopology, a: int, b: int, wrap: bool) -> list[Node]:
    gax, gay, gaz = topo.layout.coords(np.array([a]))
    gbx, gby, gbz = topo.layout.coords(np.array([b]))
    ax, ay, az = int(gax[0]), int(gay[0]), int(gaz[0])
    bx, by, bz = int(gbx[0]), int(gby[0]), int(gbz[0])
    side = topo.side
    rank = np.empty((side, side, side), dtype=np.int64)
    gx, gy, gz = topo.layout.coords(np.arange(topo.num_processors, dtype=np.int64))
    rank[gx, gy, gz] = np.arange(topo.num_processors, dtype=np.int64)
    path = [int(rank[x, ay, az]) for x in _axis_walk(ax, bx, side, wrap)]
    path.extend(int(rank[bx, y, az]) for y in _axis_walk(ay, by, side, wrap)[1:])
    path.extend(int(rank[bx, by, z]) for z in _axis_walk(az, bz, side, wrap)[1:])
    return path


def route(topology: Topology, src: int, dst: int) -> list[Node]:
    """The node sequence a message visits from ``src`` to ``dst``.

    The returned list includes both endpoints; consecutive entries are
    the directed links crossed.  ``len(path) - 1`` equals the topology's
    hop distance.
    """
    a, b = int(src), int(dst)
    if isinstance(topology, RingTopology):
        return _ring_path(a, b, topology.num_processors)
    if isinstance(topology, BusTopology):
        return _line_path(a, b)
    if isinstance(topology, TorusTopology):
        return _grid_path(topology, a, b, wrap=True)
    if isinstance(topology, MeshTopology):
        return _grid_path(topology, a, b, wrap=False)
    if isinstance(topology, HypercubeTopology):
        return _hypercube_path(topology, a, b)
    if isinstance(topology, QuadtreeTopology):
        return _tree_path(
            a, b, int(topology._zcodes[a]), int(topology._zcodes[b]), topology.height, 2
        )
    if isinstance(topology, FatTreeTopology):
        return _tree_path(a, b, a, b, topology.height, 2)
    if isinstance(topology, DragonflyTopology):
        return _dragonfly_path(topology, a, b)
    if isinstance(topology, OctreeTopology):
        return _tree_path(
            a, b, int(topology._codes[a]), int(topology._codes[b]), topology.height, 3
        )
    if isinstance(topology, Torus3DTopology):
        return _grid3d_path(topology, a, b, wrap=True)
    if isinstance(topology, Mesh3DTopology):
        return _grid3d_path(topology, a, b, wrap=False)
    raise TypeError(f"no router registered for {type(topology).__name__}")


def route_events(topology: Topology, src, dst) -> list[list[Node]]:
    """Route a batch of rank pairs; one path per event."""
    return [route(topology, int(a), int(b)) for a, b in zip(src, dst)]


# ----------------------------------------------------------------------
# Batched routing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoutedBatch:
    """All routed paths of an event batch, as integer link ids in CSR form.

    Message ``i`` crosses the directed links
    ``links[offsets[i]:offsets[i + 1]]`` in order.  Link ids come from a
    per-topology analytic encoding ``node * degree + direction`` (no
    hashing or deduplication pass), so ids lie in ``[0, num_links)``
    where ``num_links`` is the size of the id space — a small multiple
    of the node count; per-link state fits in flat arrays.
    """

    links: IntArray
    offsets: IntArray
    num_links: int

    @property
    def num_messages(self) -> int:
        """Number of routed messages."""
        return self.offsets.size - 1

    @property
    def total_hops(self) -> int:
        """Total link crossings over all messages."""
        return int(self.links.size)

    def hop_counts(self) -> IntArray:
        """Per-message path length in hops."""
        return np.diff(self.offsets)

    def link_loads(self) -> IntArray:
        """Messages crossing each link id (congestion profile).

        Ids never used by the batch (or by the topology) report zero.
        """
        return np.bincount(self.links, minlength=self.num_links)

    @property
    def congestion(self) -> int:
        """Max messages sharing one directed link."""
        return int(self.link_loads().max()) if self.links.size else 0

    @property
    def dilation(self) -> int:
        """Longest routed path in hops."""
        return int(self.hop_counts().max()) if self.num_messages else 0


def _csr_layout(lengths: IntArray) -> tuple[IntArray, IntArray, IntArray]:
    """CSR offsets, per-slot message index and within-message position.

    Delegates to :func:`repro.kernels.csr_expand`, which serves the
    expansion from the compiled backend when one is built and selected
    (``REPRO_KERNEL_BACKEND``); both backends are bit-identical.
    """
    return kernels.csr_expand(np.asarray(lengths, dtype=np.int64))


def _axis_legs(a: IntArray, b: IntArray, side: int, wrap: bool) -> tuple[IntArray, IntArray]:
    """Signed unit step and leg length along one axis (shorter arc on wrap)."""
    if not wrap:
        return np.sign(b - a), np.abs(b - a)
    forward = (b - a) % side
    use_forward = forward <= side - forward
    step = np.where(use_forward, 1, -1)
    length = np.where(use_forward, forward, side - forward)
    return step, length


def _line_links(a: IntArray, b: IntArray, p: int, wrap: bool) -> tuple[IntArray, IntArray, int]:
    # link id = source node * 2 + (0 for the +1 direction, 1 for -1)
    step, length = _axis_legs(a, b, p, wrap)
    offsets, owner, within = _csr_layout(length)
    source = a[owner] + step[owner] * within
    if wrap:
        source %= p
    links = source * 2 + (step[owner] < 0)
    return links, offsets, 2 * p


def _grid_links(
    topo: MeshTopology, a: IntArray, b: IntArray, wrap: bool, cache: TopologyCache
) -> tuple[IntArray, IntArray, int]:
    # link id = source rank * 4 + direction (0:+x, 1:-x, 2:+y, 3:-y)
    side = topo.side
    grid = cache.topology_table(
        topo, "rank_grid_i32", lambda: topo.layout.rank_grid().astype(np.int32)
    )
    ax, ay = topo.layout.coords(a)
    bx, by = topo.layout.coords(b)
    sx, dx = _axis_legs(ax, bx, side, wrap)
    sy, dy = _axis_legs(ay, by, side, wrap)
    offsets, owner, within = _csr_layout(dx + dy)
    # The per-hop gathers are memory-bound; int32 intermediates halve
    # the traffic (coordinates and ranks comfortably fit 32 bits).
    within = within.astype(np.int32)
    ax, ay, bx, by, sx, sy = (v.astype(np.int32) for v in (ax, ay, bx, by, sx, sy))
    dxo = dx.astype(np.int32)[owner]
    on_x = within < dxo
    axo, ayo, sxo = ax[owner], ay[owner], sx[owner]
    x = np.where(on_x, axo + sxo * within, bx[owner])
    y = np.where(on_x, ayo, ayo + sy[owner] * (within - dxo))
    if wrap:
        x %= side
        y %= side
    direction = np.where(
        on_x,
        np.where(sxo > 0, 0, 1),
        np.where(sy[owner] > 0, 2, 3),
    ).astype(np.int32)
    links = (grid[x, y] * 4 + direction).astype(np.int64)
    return links, offsets, 4 * topo.num_processors


def _grid3d_links(
    topo: Mesh3DTopology, a: IntArray, b: IntArray, wrap: bool, cache: TopologyCache
) -> tuple[IntArray, IntArray, int]:
    # link id = source rank * 6 + direction (0:+x, 1:-x, ..., 5:-z)
    side = topo.side

    def build_rank_cube():
        cube = np.empty((side, side, side), dtype=np.int64)
        gx, gy, gz = topo.layout.coords(np.arange(topo.num_processors, dtype=np.int64))
        cube[gx, gy, gz] = np.arange(topo.num_processors, dtype=np.int64)
        return cube

    cube = cache.topology_table(topo, "rank_cube", build_rank_cube)
    ax, ay, az = topo.layout.coords(a)
    bx, by, bz = topo.layout.coords(b)
    sx, dx = _axis_legs(ax, bx, side, wrap)
    sy, dy = _axis_legs(ay, by, side, wrap)
    sz, dz = _axis_legs(az, bz, side, wrap)
    offsets, owner, within = _csr_layout(dx + dy + dz)
    dxo, dyo = dx[owner], dy[owner]
    on_x = within < dxo
    on_y = ~on_x & (within < dxo + dyo)
    on_z = ~on_x & ~on_y
    x = np.where(on_x, ax[owner] + sx[owner] * within, bx[owner])
    y = np.where(on_x, ay[owner], np.where(on_y, ay[owner] + sy[owner] * (within - dxo), by[owner]))
    z = np.where(on_z, az[owner] + sz[owner] * (within - dxo - dyo), az[owner])
    if wrap:
        x %= side
        y %= side
        z %= side
    direction = np.where(
        on_x,
        np.where(sx[owner] > 0, 0, 1),
        np.where(
            on_y,
            np.where(sy[owner] > 0, 2, 3),
            np.where(sz[owner] > 0, 4, 5),
        ),
    )
    links = cube[x, y, z] * 6 + direction
    return links, offsets, 6 * topo.num_processors


def _hypercube_links(
    topo: HypercubeTopology, a: IntArray, b: IntArray, cache: TopologyCache
) -> tuple[IntArray, IntArray, int]:
    # link id = source rank * dimension + flipped bit (direction is implied:
    # the source fixes which way the bit flips)
    p = topo.num_processors
    dim = max(topo.dimension, 1)
    labels = topo._labels

    def build_inverse():
        inv = np.empty(p, dtype=np.int64)
        inv[labels] = np.arange(p, dtype=np.int64)
        return inv

    inv = cache.topology_table(topo, "label_inverse", build_inverse)
    la, lb = labels[a], labels[b]
    diff = la ^ lb
    offsets, _, _ = _csr_layout(popcount(diff))
    links = np.empty(offsets[-1], dtype=np.int64)
    starts = offsets[:-1]
    for bit in range(topo.dimension):
        sel = np.flatnonzero((diff >> bit) & 1)
        if not sel.size:
            continue
        # e-cube order: this bit is fixed after the lower set bits of diff
        hop = popcount(diff[sel] & ((1 << bit) - 1))
        source = la[sel] ^ (diff[sel] & ((1 << bit) - 1))
        links[starts[sel] + hop] = inv[source] * dim + bit
    return links, offsets, p * dim


def _tree_links(
    topo: Topology, codes: IntArray, a: IntArray, b: IntArray, bits: int, cache: TopologyCache
) -> tuple[IntArray, IntArray, int]:
    # Every tree edge joins a child node to its parent switch; the child end
    # identifies the edge, so  link id = child node id * 2 + (0 up, 1 down).
    # Node ids: leaves are their ranks; the switch at level ``l`` (root = 0)
    # with code prefix ``c`` gets id  p + (fanout**l - 1)//(fanout - 1) + c.
    p = topo.num_processors
    m: int = topo.height  # type: ignore[attr-defined]
    fanout = 1 << bits
    switch_base = [p + (fanout**level - 1) // (fanout - 1) for level in range(m + 1)]
    num_nodes = switch_base[m]
    za, zb = codes[a], codes[b]
    diff = za ^ zb
    common = m - ((bit_length(diff) + bits - 1) // bits)
    up = m - common  # tree edges climbed (>= 1 for distinct leaves)
    offsets, _, _ = _csr_layout(2 * up)
    links = np.empty(offsets[-1], dtype=np.int64)
    starts = offsets[:-1]
    links[starts] = a * 2  # first hop: leaf ``a`` up to its switch
    links[offsets[1:] - 1] = b * 2 + 1  # last hop: down into leaf ``b``
    for level in range(m):
        shift = bits * (m - level)
        # switches at this level appear strictly below the LCA
        sel = np.flatnonzero(common <= level - 1)
        if not sel.size:
            continue
        # climbing out of the level-l switch: hop index  m - level
        links[starts[sel] + (m - level)] = (switch_base[level] + (za[sel] >> shift)) * 2
        # descending into the level-l switch: hop index  up + (level-common) - 1
        pos = up[sel] + (level - common[sel]) - 1
        links[starts[sel] + pos] = (switch_base[level] + (zb[sel] >> shift)) * 2 + 1
    return links, offsets, 2 * num_nodes


def _dragonfly_links(
    topo: DragonflyTopology, a: IntArray, b: IntArray
) -> tuple[IntArray, IntArray, int]:
    # link id = source rank * group_size + local target router index; the
    # source's own index marks its (unique) global link, a slot no local
    # hop uses.  Id space: p * group_size.
    s = topo.group_size
    gi, ri = a // s, a % s
    gj, rj = b // s, b % s
    same = gi == gj
    attach_i = topo.attach_router(gi, gj)
    attach_j = topo.attach_router(gj, gi)
    first_local = ~same & (ri != attach_i)
    last_local = ~same & (rj != attach_j)
    lengths = np.where(same, 1, 1 + first_local + last_local)
    offsets, _, _ = _csr_layout(lengths)
    links = np.empty(offsets[-1], dtype=np.int64)
    starts = offsets[:-1]
    links[starts[same]] = (a * s + rj)[same]
    links[starts[first_local]] = (a * s + attach_i)[first_local]
    gateway = starts + first_local
    diff = ~same
    links[gateway[diff]] = ((gi * s + attach_i) * s + attach_i)[diff]
    links[(gateway + 1)[last_local]] = ((gj * s + attach_j) * s + rj)[last_local]
    return links, offsets, topo.num_processors * s


def _link_paths(
    topology: Topology, a: IntArray, b: IntArray, cache: TopologyCache
) -> tuple[IntArray, IntArray, int]:
    """CSR link-id sequences for all pairs plus the id-space size."""
    if isinstance(topology, RingTopology):
        return _line_links(a, b, topology.num_processors, wrap=True)
    if isinstance(topology, BusTopology):
        return _line_links(a, b, topology.num_processors, wrap=False)
    if isinstance(topology, TorusTopology):
        return _grid_links(topology, a, b, wrap=True, cache=cache)
    if isinstance(topology, MeshTopology):
        return _grid_links(topology, a, b, wrap=False, cache=cache)
    if isinstance(topology, HypercubeTopology):
        return _hypercube_links(topology, a, b, cache=cache)
    if isinstance(topology, QuadtreeTopology):
        return _tree_links(topology, topology._zcodes, a, b, bits=2, cache=cache)
    if isinstance(topology, FatTreeTopology):
        return _tree_links(topology, topology._codes, a, b, bits=2, cache=cache)
    if isinstance(topology, DragonflyTopology):
        return _dragonfly_links(topology, a, b)
    if isinstance(topology, OctreeTopology):
        return _tree_links(topology, topology._codes, a, b, bits=3, cache=cache)
    if isinstance(topology, Torus3DTopology):
        return _grid3d_links(topology, a, b, wrap=True, cache=cache)
    if isinstance(topology, Mesh3DTopology):
        return _grid3d_links(topology, a, b, wrap=False, cache=cache)
    raise TypeError(f"no router registered for {type(topology).__name__}")


def route_batch(
    topology: Topology, src, dst, *, cache: TopologyCache | None = None
) -> RoutedBatch:
    """Route every ``(src, dst)`` pair in one vectorised pass.

    Every pair must be a genuine network message (``src != dst``);
    callers filter local traffic first.  Per-topology lookup tables are
    memoised in ``cache`` (the shared default when omitted), so repeated
    batches on the same network only pay for the path construction.

    The hop sequences agree link-for-link with the scalar :func:`route`
    (property-tested); only the representation differs.
    """
    a = np.ascontiguousarray(np.asarray(src, dtype=np.int64))
    b = np.ascontiguousarray(np.asarray(dst, dtype=np.int64))
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"src and dst must be equal-length 1D arrays, got {a.shape} vs {b.shape}")
    if a.size and np.any(a == b):
        raise ValueError("route_batch requires src != dst for every pair")
    if cache is None:
        cache = get_topology_cache()
    if not a.size:
        return RoutedBatch(
            links=np.empty(0, dtype=np.int64),
            offsets=np.zeros(1, dtype=np.int64),
            num_links=0,
        )
    links, offsets, num_links = _link_paths(topology, a, b, cache)
    return RoutedBatch(links=links, offsets=offsets, num_links=num_links)
