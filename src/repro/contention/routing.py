"""Deterministic routing: expand rank pairs into link-level paths.

The contention simulator needs the exact sequence of directed links a
message crosses.  Each topology gets its textbook deterministic router:

* bus / ring — walk the line (shorter arc on the ring),
* mesh / torus — XY dimension-ordered routing (shorter wrap per axis),
* hypercube — e-cube routing (fix differing bits from the lowest),
* quadtree / octree — up to the lowest common ancestor switch and down,
* mesh3d / torus3d — XYZ dimension-ordered routing.

Every hop is a directed edge between *network nodes*; for the quadtree
the interior switches appear as ``("sw", level, cx, cy)`` nodes, for the
direct networks nodes are the ranks themselves.  Paths are minimal: the
number of hops always equals :meth:`Topology.distance` (property-tested),
so simulated latencies are directly comparable to the ACD.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.topology.base import Topology
from repro.topology.bus import BusTopology
from repro.topology.grid3d import Mesh3DTopology, OctreeTopology, Torus3DTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.mesh import MeshTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology

__all__ = ["route", "route_events"]

Node = Hashable


def _line_path(a: int, b: int) -> list[Node]:
    step = 1 if b >= a else -1
    return list(range(a, b + step, step))


def _ring_path(a: int, b: int, p: int) -> list[Node]:
    forward = (b - a) % p
    if forward <= p - forward:
        return [(a + i) % p for i in range(forward + 1)]
    back = p - forward
    return [(a - i) % p for i in range(back + 1)]


def _axis_walk(start: int, target: int, side: int, wrap: bool) -> list[int]:
    """Coordinates visited along one axis (inclusive of both ends)."""
    if not wrap:
        step = 1 if target >= start else -1
        return list(range(start, target + step, step))
    forward = (target - start) % side
    if forward <= side - forward:
        return [(start + i) % side for i in range(forward + 1)]
    back = side - forward
    return [(start - i) % side for i in range(back + 1)]


def _grid_path(topo: MeshTopology, a: int, b: int, wrap: bool) -> list[Node]:
    gax, gay = topo.layout.coords(np.array([a]))
    gbx, gby = topo.layout.coords(np.array([b]))
    ax, ay, bx, by = int(gax[0]), int(gay[0]), int(gbx[0]), int(gby[0])
    grid = topo.layout.rank_grid()
    path = [grid[x, ay] for x in _axis_walk(ax, bx, topo.side, wrap)]
    path.extend(grid[bx, y] for y in _axis_walk(ay, by, topo.side, wrap)[1:])
    return [int(r) for r in path]


def _hypercube_path(topo: HypercubeTopology, a: int, b: int) -> list[Node]:
    labels = topo._labels  # rank -> node label
    inv = np.empty(topo.num_processors, dtype=np.int64)
    inv[labels] = np.arange(topo.num_processors)
    cur = int(labels[a])
    target = int(labels[b])
    path = [a]
    bit = 0
    while cur != target:
        if (cur ^ target) & (1 << bit):
            cur ^= 1 << bit
            path.append(int(inv[cur]))
        bit += 1
    return path


def _tree_path(a: int, b: int, za: int, zb: int, m: int, bits: int) -> list[Node]:
    """Leaf-LCA-leaf walk through a complete switch tree.

    ``bits`` is the digit width (2 for quadtree, 3 for octree); the
    switch at level ``l`` is identified by the leading ``bits * l`` code
    bits of the leaves it covers.
    """
    if a == b:
        return [a]
    common = m
    diff = za ^ zb
    if diff:
        common = m - ((diff.bit_length() + bits - 1) // bits)
    path: list[Node] = [a]
    for level in range(m - 1, common - 1, -1):
        path.append(("sw", level, za >> (bits * (m - level))))
    for level in range(common + 1, m):
        path.append(("sw", level, zb >> (bits * (m - level))))
    path.append(b)
    return path


def _grid3d_path(topo: Mesh3DTopology, a: int, b: int, wrap: bool) -> list[Node]:
    gax, gay, gaz = topo.layout.coords(np.array([a]))
    gbx, gby, gbz = topo.layout.coords(np.array([b]))
    ax, ay, az = int(gax[0]), int(gay[0]), int(gaz[0])
    bx, by, bz = int(gbx[0]), int(gby[0]), int(gbz[0])
    side = topo.side
    rank = np.empty((side, side, side), dtype=np.int64)
    gx, gy, gz = topo.layout.coords(np.arange(topo.num_processors, dtype=np.int64))
    rank[gx, gy, gz] = np.arange(topo.num_processors, dtype=np.int64)
    path = [int(rank[x, ay, az]) for x in _axis_walk(ax, bx, side, wrap)]
    path.extend(int(rank[bx, y, az]) for y in _axis_walk(ay, by, side, wrap)[1:])
    path.extend(int(rank[bx, by, z]) for z in _axis_walk(az, bz, side, wrap)[1:])
    return path


def route(topology: Topology, src: int, dst: int) -> list[Node]:
    """The node sequence a message visits from ``src`` to ``dst``.

    The returned list includes both endpoints; consecutive entries are
    the directed links crossed.  ``len(path) - 1`` equals the topology's
    hop distance.
    """
    a, b = int(src), int(dst)
    if isinstance(topology, RingTopology):
        return _ring_path(a, b, topology.num_processors)
    if isinstance(topology, BusTopology):
        return _line_path(a, b)
    if isinstance(topology, TorusTopology):
        return _grid_path(topology, a, b, wrap=True)
    if isinstance(topology, MeshTopology):
        return _grid_path(topology, a, b, wrap=False)
    if isinstance(topology, HypercubeTopology):
        return _hypercube_path(topology, a, b)
    if isinstance(topology, QuadtreeTopology):
        return _tree_path(
            a, b, int(topology._zcodes[a]), int(topology._zcodes[b]), topology.height, 2
        )
    if isinstance(topology, OctreeTopology):
        return _tree_path(
            a, b, int(topology._codes[a]), int(topology._codes[b]), topology.height, 3
        )
    if isinstance(topology, Torus3DTopology):
        return _grid3d_path(topology, a, b, wrap=True)
    if isinstance(topology, Mesh3DTopology):
        return _grid3d_path(topology, a, b, wrap=False)
    raise TypeError(f"no router registered for {type(topology).__name__}")


def route_events(topology: Topology, src, dst) -> list[list[Node]]:
    """Route a batch of rank pairs; one path per event."""
    return [route(topology, int(a), int(b)) for a, b in zip(src, dst)]
