"""Cycle-based store-and-forward network simulation.

The ACD metric is deliberately contention-unaware (§IV step 6 of the
paper): it averages shortest-path lengths as if every message travelled
alone.  This simulator replays a communication event multiset on the
actual network with **unit-capacity directed links** (one message per
link per cycle, FIFO queueing), which yields:

* the **makespan** — cycles until every message is delivered, the
  quantity a real bulk-synchronous exchange step would observe,
* per-message **latencies** (mean and maximum),
* link **utilisation**, and
* the two classical lower bounds (max link load = congestion, max path
  length = dilation), so the schedule quality is visible.

Messages follow the deterministic minimal routes of
:mod:`repro.contention.routing`; injection is all-at-once at cycle 0
(the paper's "all of the processors are trying to communicate at the
same time over the same network" scenario).

The core loop is event-driven per link: at every cycle each busy link
forwards exactly one queued message one hop.  Complexity is
``O(total hops + active links per cycle)``; tens of thousands of
message-hops simulate in well under a second.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.fmm.events import CommunicationEvents
from repro.contention.routing import route
from repro.topology.base import Topology

__all__ = ["SimulationResult", "simulate_exchange"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one contention simulation.

    Attributes
    ----------
    makespan:
        Cycle at which the last message arrived (0 for no messages).
    num_messages:
        Number of simulated messages (zero-hop self-messages excluded).
    mean_latency, max_latency:
        Delivery-cycle statistics over the simulated messages.
    congestion:
        Max messages sharing one directed link (lower bound on makespan).
    dilation:
        Longest routed path in hops (lower bound on makespan).
    total_hops:
        Total message-hops transmitted (= total link busy-cycles).
    """

    makespan: int
    num_messages: int
    mean_latency: float
    max_latency: int
    congestion: int
    dilation: int
    total_hops: int

    @property
    def stretch_over_bounds(self) -> float:
        """Makespan divided by the larger lower bound (1.0 = optimal)."""
        bound = max(self.congestion, self.dilation)
        return self.makespan / bound if bound else 1.0


def simulate_exchange(
    events: CommunicationEvents,
    topology: Topology,
    *,
    max_cycles: int = 10_000_000,
) -> SimulationResult:
    """Simulate the delivery of all events injected at cycle 0.

    Raises ``RuntimeError`` if the exchange has not drained within
    ``max_cycles`` (a guard against pathological inputs; FIFO queueing
    over finite traffic always terminates well before this).
    """
    # Build per-message hop lists (directed node pairs).
    paths: list[list[tuple]] = []
    for src, dst in events.iter_chunks():
        for a, b in zip(src.tolist(), dst.tolist()):
            if a == b:
                continue  # local messages never enter the network
            nodes = route(topology, a, b)
            paths.append(list(zip(nodes[:-1], nodes[1:])))

    if not paths:
        return SimulationResult(0, 0, 0.0, 0, 0, 0, 0)

    load: dict[tuple, int] = defaultdict(int)
    for hops in paths:
        for link in hops:
            load[link] += 1
    congestion = max(load.values())
    dilation = max(len(hops) for hops in paths)
    total_hops = sum(len(hops) for hops in paths)

    # FIFO queues per directed link; messages identified by index.
    queues: dict[tuple, deque[int]] = defaultdict(deque)
    next_hop = [0] * len(paths)  # index of the hop each message waits for
    for i, hops in enumerate(paths):
        queues[hops[0]].append(i)

    active: list[tuple] = list(queues)  # links with waiting traffic
    arrivals: list[int] = [0] * len(paths)
    delivered = 0
    cycle = 0
    while delivered < len(paths):
        cycle += 1
        if cycle > max_cycles:
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles with "
                f"{len(paths) - delivered} messages in flight"
            )
        moved: list[tuple[int, tuple]] = []  # (message, link it just crossed)
        for link in active:
            queue = queues[link]
            msg = queue.popleft()
            moved.append((msg, link))
        # enqueue survivors onto their next links, collect new active set
        for msg, _ in moved:
            next_hop[msg] += 1
            hops = paths[msg]
            if next_hop[msg] >= len(hops):
                arrivals[msg] = cycle
                delivered += 1
            else:
                queues[hops[next_hop[msg]]].append(msg)
        active = [link for link, queue in queues.items() if queue]

    return SimulationResult(
        makespan=cycle,
        num_messages=len(paths),
        mean_latency=sum(arrivals) / len(paths),
        max_latency=max(arrivals),
        congestion=congestion,
        dilation=dilation,
        total_hops=total_hops,
    )
