"""Cycle-based store-and-forward network simulation.

The ACD metric is deliberately contention-unaware (§IV step 6 of the
paper): it averages shortest-path lengths as if every message travelled
alone.  This simulator replays a communication event multiset on the
actual network with **unit-capacity directed links** (one message per
link per cycle, FIFO queueing), which yields:

* the **makespan** — cycles until every message is delivered, the
  quantity a real bulk-synchronous exchange step would observe,
* per-message **latencies** (mean and maximum),
* link **utilisation**, and
* the two classical lower bounds (max link load = congestion, max path
  length = dilation), so the schedule quality is visible.

Messages follow the deterministic minimal routes of
:mod:`repro.contention.routing`; injection is all-at-once at cycle 0
(the paper's "all of the processors are trying to communicate at the
same time over the same network" scenario).

Weighted events (see :mod:`repro.fmm.events`) inject proportional
traffic: an event of weight ``w`` becomes ``w`` unit messages (flits)
that each traverse the full route, matching the weighted-ACD semantics
where a weighted event counts ``w`` times.  Zero-weight events send
nothing.

Two engines share identical scheduling semantics and produce identical
results (cross-checked by the test-suite):

* ``engine="batched"`` (default) — per-cycle NumPy link scheduling over
  the CSR arrays of :func:`repro.contention.routing.route_batch`.  All
  routes are precomputed in one vectorised pass; per-link FIFO queues
  are intrusive linked lists in flat arrays; the set of busy links is
  maintained incrementally, so a cycle costs ``O(active links)`` NumPy
  work regardless of how many links the exchange ever touched.
* ``engine="reference"`` — the retained pure-Python slow path (deque
  per link), kept as the behavioural oracle for the batched engine.

Scheduling discipline (both engines): every busy link forwards the
message at its queue head each cycle; messages arriving at a queue in
the same cycle enqueue in ascending order of the link they crossed,
and the initial injection enqueues in event order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro._typing import IntArray
from repro.contention.routing import RoutedBatch, route_batch
from repro.fmm.events import CommunicationEvents
from repro.topology.base import Topology
from repro.topology.cache import TopologyCache

__all__ = ["SimulationResult", "simulate_exchange"]

_ENGINES = ("batched", "reference")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one contention simulation.

    Attributes
    ----------
    makespan:
        Cycle at which the last message arrived (0 for no messages).
    num_messages:
        Number of simulated unit messages (zero-hop self-messages
        excluded; an event of weight ``w`` contributes ``w``).
    mean_latency, max_latency:
        Delivery-cycle statistics over the simulated messages.
    congestion:
        Max messages sharing one directed link (lower bound on makespan).
    dilation:
        Longest routed path in hops (lower bound on makespan).
    total_hops:
        Total message-hops transmitted (= total link busy-cycles).
    """

    makespan: int
    num_messages: int
    mean_latency: float
    max_latency: int
    congestion: int
    dilation: int
    total_hops: int

    @property
    def stretch_over_bounds(self) -> float:
        """Makespan divided by the larger lower bound (1.0 = optimal)."""
        bound = max(self.congestion, self.dilation)
        return self.makespan / bound if bound else 1.0


def _network_pairs(events: CommunicationEvents) -> tuple[IntArray, IntArray]:
    """Flatten events into unit-message pairs (weights expanded, locals dropped)."""
    srcs: list[IntArray] = []
    dsts: list[IntArray] = []
    for s, d, w in events.iter_weighted_chunks():
        keep = s != d
        if w is not None:
            keep &= w > 0
        s, d = s[keep], d[keep]
        if w is not None:
            wk = w[keep]
            s, d = np.repeat(s, wk), np.repeat(d, wk)
        if s.size:
            srcs.append(s)
            dsts.append(d)
    if not srcs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(srcs), np.concatenate(dsts)


def _overflow(max_cycles: int, in_flight: int) -> RuntimeError:
    return RuntimeError(
        f"simulation exceeded {max_cycles} cycles with {in_flight} messages in flight"
    )


def _drain_batched(batch: RoutedBatch, max_cycles: int) -> IntArray:
    """NumPy per-cycle engine; returns the arrival cycle of every message."""
    links, offsets = batch.links, batch.offsets
    num_messages = batch.num_messages
    pos = offsets[:-1].copy()  # index into ``links`` of each message's next hop
    end = offsets[1:]
    # Intrusive per-link FIFO: head/tail message per link, next-in-queue per message.
    head = np.full(batch.num_links, -1, dtype=np.int64)
    tail = np.full(batch.num_links, -1, dtype=np.int64)
    nxt = np.full(num_messages, -1, dtype=np.int64)

    def enqueue(msgs: IntArray, targets: IntArray) -> IntArray:
        """Append ``msgs`` (already ordered) to their target queues.

        Returns the sorted unique target links.  Within one call,
        messages bound for the same link enqueue in their given order.
        """
        order = np.argsort(targets, kind="stable")
        q, ql = msgs[order], targets[order]
        starts = np.flatnonzero(np.concatenate([[True], ql[1:] != ql[:-1]]))
        ends = np.concatenate([starts[1:], [q.size]])
        nxt[q[:-1]] = q[1:]  # chain everything, then cut at group boundaries
        nxt[q[ends - 1]] = -1
        group_links = ql[starts]
        first, last = q[starts], q[ends - 1]
        empty = head[group_links] == -1
        head[group_links[empty]] = first[empty]
        occupied = ~empty
        nxt[tail[group_links[occupied]]] = first[occupied]
        tail[group_links] = last
        return group_links

    arrivals = np.zeros(num_messages, dtype=np.int64)
    active = enqueue(np.arange(num_messages, dtype=np.int64), links[pos])
    delivered = 0
    cycle = 0
    while delivered < num_messages:
        cycle += 1
        if cycle > max_cycles:
            raise _overflow(max_cycles, num_messages - delivered)
        moved = head[active]  # every active link forwards its queue head
        new_heads = nxt[moved]
        head[active] = new_heads
        tail[active[new_heads == -1]] = -1
        pos[moved] += 1
        done = pos[moved] == end[moved]
        finished = moved[done]
        arrivals[finished] = cycle
        delivered += finished.size
        in_flight = moved[~done]
        if in_flight.size:
            # ``moved`` follows ``active`` (ascending link id), so same-cycle
            # arrivals enqueue ordered by the link they just crossed.
            refilled = enqueue(in_flight, links[pos[in_flight]])
            # merge two sorted id sets (cheaper than a hashed union1d)
            merged = np.sort(np.concatenate([active[head[active] != -1], refilled]))
            keep = np.empty(merged.size, dtype=bool)
            keep[:1] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            active = merged[keep]
        else:
            active = active[head[active] != -1]
    return arrivals


def _drain_reference(batch: RoutedBatch, max_cycles: int) -> IntArray:
    """Pure-Python oracle engine over the same routed link arrays.

    Maintains the busy-link set incrementally (links join when their
    queue becomes non-empty and leave when it drains) instead of
    rescanning every queue ever touched, and applies the same
    deterministic enqueue order as the batched engine.
    """
    links = batch.links.tolist()
    offsets = batch.offsets.tolist()
    num_messages = batch.num_messages
    pos = list(offsets[:-1])
    queues: dict[int, deque[int]] = {}
    active: set[int] = set()
    for msg in range(num_messages):
        link = links[pos[msg]]
        queue = queues.get(link)
        if queue is None:
            queues[link] = queue = deque()
            active.add(link)
        queue.append(msg)
    arrivals = np.zeros(num_messages, dtype=np.int64)
    delivered = 0
    cycle = 0
    while delivered < num_messages:
        cycle += 1
        if cycle > max_cycles:
            raise _overflow(max_cycles, num_messages - delivered)
        moved: list[int] = []
        drained: list[int] = []
        for link in sorted(active):
            queue = queues[link]
            moved.append(queue.popleft())
            if not queue:
                drained.append(link)
        active.difference_update(drained)
        for msg in moved:
            pos[msg] += 1
            if pos[msg] == offsets[msg + 1]:
                arrivals[msg] = cycle
                delivered += 1
            else:
                link = links[pos[msg]]
                queue = queues.get(link)
                if queue is None:
                    queues[link] = queue = deque()
                if not queue:
                    active.add(link)
                queue.append(msg)
    return arrivals


def simulate_exchange(
    events: CommunicationEvents,
    topology: Topology,
    *,
    max_cycles: int = 10_000_000,
    engine: str = "batched",
    cache: TopologyCache | None = None,
) -> SimulationResult:
    """Simulate the delivery of all events injected at cycle 0.

    Parameters
    ----------
    engine:
        ``"batched"`` (vectorised, default) or ``"reference"`` (the
        retained pure-Python slow path); both produce identical results.
    cache:
        Topology cache for the batch router's lookup tables (shared
        default when omitted).

    Raises ``RuntimeError`` if the exchange has not drained within
    ``max_cycles`` (a guard against pathological inputs; FIFO queueing
    over finite traffic always terminates well before this).
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {_ENGINES}")
    with obs.span("simulate", engine=engine, processors=topology.num_processors):
        with obs.span("simulate.route"):
            src, dst = _network_pairs(events)
            if not src.size:
                return SimulationResult(0, 0, 0.0, 0, 0, 0, 0)
            batch = route_batch(topology, src, dst, cache=cache)
        obs.count("sim.messages", batch.num_messages)
        obs.count("sim.hops", batch.total_hops)
        with obs.span("simulate.drain"):
            drain = _drain_batched if engine == "batched" else _drain_reference
            arrivals = drain(batch, max_cycles)
        obs.count("sim.cycles", int(arrivals.max()))
    return SimulationResult(
        makespan=int(arrivals.max()),
        num_messages=batch.num_messages,
        mean_latency=float(arrivals.mean()),
        max_latency=int(arrivals.max()),
        congestion=batch.congestion,
        dilation=batch.dilation,
        total_hops=batch.total_hops,
    )
