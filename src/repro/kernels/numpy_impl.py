"""Pure-NumPy reference implementations of the switchable kernels.

These are the canonical semantics: the native backend must agree
bit-for-bit with every function here on every input (see
``tests/kernels/test_backends.py``), and they are the permanent
fallback when the compiled module is absent.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray

__all__ = ["csr_expand", "histogram_dot", "tile_histogram_dot"]


def csr_expand(lengths: IntArray) -> tuple[IntArray, IntArray, IntArray]:
    """CSR offsets, per-slot row index and within-row position."""
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(lengths)])
    owner = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    within = np.arange(offsets[-1], dtype=np.int64) - offsets[owner]
    return offsets, owner, within


def histogram_dot(matrix: IntArray, src: IntArray, dst: IntArray, weights: IntArray) -> int:
    """One distance gather + integer dot product (exact ``int64`` math)."""
    p, q = matrix.shape
    if src.size and (
        int(src.min()) < 0 or int(src.max()) >= p or int(dst.min()) < 0 or int(dst.max()) >= q
    ):
        raise ValueError("histogram ranks fall outside the distance matrix")
    return int(matrix[src, dst].astype(np.int64) @ weights)


def tile_histogram_dot(
    block: IntArray,
    src: IntArray,
    dst: IntArray,
    weights: IntArray,
    row_off: int,
    col_off: int,
) -> int:
    """:func:`histogram_dot` against one tile of the distance matrix.

    ``block`` holds ``matrix[row_off:row_off+h, col_off:col_off+w]``;
    ``src``/``dst`` carry *global* ranks, rebased here.  Exact ``int64``
    math, so the sum over disjoint tiles equals one dense dot.
    """
    h, w = block.shape
    local_src = src - row_off
    local_dst = dst - col_off
    if src.size and (
        int(local_src.min()) < 0
        or int(local_src.max()) >= h
        or int(local_dst.min()) < 0
        or int(local_dst.max()) >= w
    ):
        raise ValueError("histogram ranks fall outside the distance block")
    return int(block[local_src, local_dst].astype(np.int64) @ weights)
