/* Optional compiled kernels for repro.kernels.
 *
 * Three hot inner loops, kept deliberately tiny:
 *
 *   csr_expand(lengths)              -> (offsets, owner, within)
 *   histogram_dot(matrix, src, dst, weights) -> int
 *   tile_histogram_dot(block, src, dst, weights, row_off, col_off) -> int
 *
 * All must be bit-identical to repro/kernels/numpy_impl.py — all
 * arithmetic is 64-bit integer, no floating point anywhere.  The
 * extension is built best-effort by setup.py; when it is absent the
 * package transparently uses the NumPy implementations.
 */
#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <Python.h>
#include <numpy/arrayobject.h>

static PyObject *
csr_expand(PyObject *self, PyObject *args)
{
    PyArrayObject *lengths;
    if (!PyArg_ParseTuple(args, "O!", &PyArray_Type, &lengths))
        return NULL;
    if (PyArray_TYPE(lengths) != NPY_INT64 || PyArray_NDIM(lengths) != 1 ||
        !PyArray_IS_C_CONTIGUOUS(lengths)) {
        PyErr_SetString(PyExc_ValueError,
                        "lengths must be a contiguous 1D int64 array");
        return NULL;
    }
    npy_intp n = PyArray_DIM(lengths, 0);
    const npy_int64 *len = (const npy_int64 *)PyArray_DATA(lengths);

    npy_intp off_dims[1] = {n + 1};
    PyArrayObject *offsets =
        (PyArrayObject *)PyArray_SimpleNew(1, off_dims, NPY_INT64);
    if (offsets == NULL)
        return NULL;
    npy_int64 *off = (npy_int64 *)PyArray_DATA(offsets);
    npy_int64 total = 0;
    off[0] = 0;
    for (npy_intp i = 0; i < n; i++) {
        if (len[i] < 0) {
            Py_DECREF(offsets);
            PyErr_SetString(PyExc_ValueError, "lengths must be non-negative");
            return NULL;
        }
        total += len[i];
        off[i + 1] = total;
    }

    npy_intp slot_dims[1] = {(npy_intp)total};
    PyArrayObject *owner =
        (PyArrayObject *)PyArray_SimpleNew(1, slot_dims, NPY_INT64);
    PyArrayObject *within =
        (PyArrayObject *)PyArray_SimpleNew(1, slot_dims, NPY_INT64);
    if (owner == NULL || within == NULL) {
        Py_DECREF(offsets);
        Py_XDECREF(owner);
        Py_XDECREF(within);
        return NULL;
    }
    npy_int64 *own = (npy_int64 *)PyArray_DATA(owner);
    npy_int64 *wit = (npy_int64 *)PyArray_DATA(within);
    npy_int64 slot = 0;
    for (npy_intp i = 0; i < n; i++) {
        const npy_int64 li = len[i];
        for (npy_int64 j = 0; j < li; j++, slot++) {
            own[slot] = i;
            wit[slot] = j;
        }
    }
    return Py_BuildValue("(NNN)", offsets, owner, within);
}

static PyObject *
histogram_dot(PyObject *self, PyObject *args)
{
    PyArrayObject *matrix, *src, *dst, *weights;
    if (!PyArg_ParseTuple(args, "O!O!O!O!", &PyArray_Type, &matrix,
                          &PyArray_Type, &src, &PyArray_Type, &dst,
                          &PyArray_Type, &weights))
        return NULL;
    if (PyArray_NDIM(matrix) != 2 || !PyArray_IS_C_CONTIGUOUS(matrix) ||
        (PyArray_TYPE(matrix) != NPY_INT32 && PyArray_TYPE(matrix) != NPY_INT64)) {
        PyErr_SetString(PyExc_ValueError,
                        "matrix must be a contiguous 2D int32/int64 array");
        return NULL;
    }
    const PyArrayObject *vecs[3] = {src, dst, weights};
    for (int i = 0; i < 3; i++) {
        if (PyArray_TYPE(vecs[i]) != NPY_INT64 || PyArray_NDIM(vecs[i]) != 1 ||
            !PyArray_IS_C_CONTIGUOUS(vecs[i])) {
            PyErr_SetString(PyExc_ValueError,
                            "src, dst and weights must be contiguous 1D int64 arrays");
            return NULL;
        }
    }
    npy_intp n = PyArray_DIM(src, 0);
    if (PyArray_DIM(dst, 0) != n || PyArray_DIM(weights, 0) != n) {
        PyErr_SetString(PyExc_ValueError,
                        "src, dst and weights must have equal length");
        return NULL;
    }
    const npy_intp rows = PyArray_DIM(matrix, 0);
    const npy_intp cols = PyArray_DIM(matrix, 1);
    const npy_int64 *s = (const npy_int64 *)PyArray_DATA(src);
    const npy_int64 *d = (const npy_int64 *)PyArray_DATA(dst);
    const npy_int64 *w = (const npy_int64 *)PyArray_DATA(weights);
    npy_int64 total = 0;
    if (PyArray_TYPE(matrix) == NPY_INT32) {
        const npy_int32 *m = (const npy_int32 *)PyArray_DATA(matrix);
        for (npy_intp i = 0; i < n; i++) {
            if (s[i] < 0 || s[i] >= rows || d[i] < 0 || d[i] >= cols) {
                PyErr_SetString(PyExc_ValueError,
                                "histogram ranks fall outside the distance matrix");
                return NULL;
            }
            total += (npy_int64)m[s[i] * cols + d[i]] * w[i];
        }
    } else {
        const npy_int64 *m = (const npy_int64 *)PyArray_DATA(matrix);
        for (npy_intp i = 0; i < n; i++) {
            if (s[i] < 0 || s[i] >= rows || d[i] < 0 || d[i] >= cols) {
                PyErr_SetString(PyExc_ValueError,
                                "histogram ranks fall outside the distance matrix");
                return NULL;
            }
            total += m[s[i] * cols + d[i]] * w[i];
        }
    }
    return PyLong_FromLongLong((long long)total);
}

static PyObject *
tile_histogram_dot(PyObject *self, PyObject *args)
{
    PyArrayObject *block, *src, *dst, *weights;
    long long row_off, col_off;
    if (!PyArg_ParseTuple(args, "O!O!O!O!LL", &PyArray_Type, &block,
                          &PyArray_Type, &src, &PyArray_Type, &dst,
                          &PyArray_Type, &weights, &row_off, &col_off))
        return NULL;
    if (PyArray_NDIM(block) != 2 || !PyArray_IS_C_CONTIGUOUS(block) ||
        (PyArray_TYPE(block) != NPY_INT32 && PyArray_TYPE(block) != NPY_INT64)) {
        PyErr_SetString(PyExc_ValueError,
                        "block must be a contiguous 2D int32/int64 array");
        return NULL;
    }
    const PyArrayObject *vecs[3] = {src, dst, weights};
    for (int i = 0; i < 3; i++) {
        if (PyArray_TYPE(vecs[i]) != NPY_INT64 || PyArray_NDIM(vecs[i]) != 1 ||
            !PyArray_IS_C_CONTIGUOUS(vecs[i])) {
            PyErr_SetString(PyExc_ValueError,
                            "src, dst and weights must be contiguous 1D int64 arrays");
            return NULL;
        }
    }
    npy_intp n = PyArray_DIM(src, 0);
    if (PyArray_DIM(dst, 0) != n || PyArray_DIM(weights, 0) != n) {
        PyErr_SetString(PyExc_ValueError,
                        "src, dst and weights must have equal length");
        return NULL;
    }
    const npy_intp rows = PyArray_DIM(block, 0);
    const npy_intp cols = PyArray_DIM(block, 1);
    const npy_int64 *s = (const npy_int64 *)PyArray_DATA(src);
    const npy_int64 *d = (const npy_int64 *)PyArray_DATA(dst);
    const npy_int64 *w = (const npy_int64 *)PyArray_DATA(weights);
    npy_int64 total = 0;
    if (PyArray_TYPE(block) == NPY_INT32) {
        const npy_int32 *m = (const npy_int32 *)PyArray_DATA(block);
        for (npy_intp i = 0; i < n; i++) {
            const npy_int64 r = s[i] - (npy_int64)row_off;
            const npy_int64 c = d[i] - (npy_int64)col_off;
            if (r < 0 || r >= rows || c < 0 || c >= cols) {
                PyErr_SetString(PyExc_ValueError,
                                "histogram ranks fall outside the distance block");
                return NULL;
            }
            total += (npy_int64)m[r * cols + c] * w[i];
        }
    } else {
        const npy_int64 *m = (const npy_int64 *)PyArray_DATA(block);
        for (npy_intp i = 0; i < n; i++) {
            const npy_int64 r = s[i] - (npy_int64)row_off;
            const npy_int64 c = d[i] - (npy_int64)col_off;
            if (r < 0 || r >= rows || c < 0 || c >= cols) {
                PyErr_SetString(PyExc_ValueError,
                                "histogram ranks fall outside the distance block");
                return NULL;
            }
            total += m[r * cols + c] * w[i];
        }
    }
    return PyLong_FromLongLong((long long)total);
}

static PyMethodDef native_methods[] = {
    {"csr_expand", csr_expand, METH_VARARGS,
     "CSR offsets/owner/within expansion of an int64 lengths array."},
    {"histogram_dot", histogram_dot, METH_VARARGS,
     "Integer gather+dot of a distance matrix over (src, dst, weights)."},
    {"tile_histogram_dot", tile_histogram_dot, METH_VARARGS,
     "Integer gather+dot of one distance block over globally-ranked pairs."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT, "repro.kernels._native",
    "Compiled CSR-expansion and histogram-ACD kernels.", -1, native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    import_array();
    return PyModule_Create(&native_module);
}
