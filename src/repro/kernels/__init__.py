"""Switchable compute kernels: pure NumPy with an optional native fast path.

Two inner loops dominate large simulated exchanges and histogram ACD
evaluations once the engine-level wins (batching, artifact sharing,
caching) are in place:

* the **CSR expansion** of :func:`repro.contention.routing.route_batch`
  (``lengths -> offsets / owner / within``), and
* the **gather + dot** of the pair-histogram ACD (``sum over pairs of
  D[src, dst] * weight``).

Both have a pure-NumPy implementation (:mod:`repro.kernels.numpy_impl`)
and an optional compiled one (``repro.kernels._native``, a small C
extension built best-effort by ``setup.py``; no compiler or NumPy
headers at build time simply means the module is absent).  The active
backend is selected by :attr:`repro.runtime.RuntimeConfig.kernel_backend`
(``REPRO_KERNEL_BACKEND`` ∈ ``{auto, numpy, native}``):

* ``auto`` (default) — native when the compiled module imports, NumPy
  otherwise;
* ``numpy`` — always the pure-NumPy path;
* ``native`` — the compiled path, *degrading to NumPy with a one-time
  RuntimeWarning* when the module is unavailable.

The two backends are bit-identical on every input (property-tested in
``tests/kernels``); the knob only ever changes speed, never results.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro._typing import IntArray
from repro.kernels import numpy_impl
from repro.runtime import runtime_config

__all__ = [
    "csr_expand",
    "histogram_dot",
    "tile_histogram_dot",
    "active_backend",
    "native_available",
]

try:  # the extension is optional by design; absence is not an error
    from repro.kernels import _native  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - exercised when the ext is absent
    _native = None

_warned_missing_native = False


def native_available() -> bool:
    """Whether the compiled ``repro.kernels._native`` module imported."""
    return _native is not None


def active_backend() -> str:
    """The backend (``"numpy"`` or ``"native"``) the next call will use.

    Resolves :attr:`RuntimeConfig.kernel_backend` against availability;
    a forced ``native`` without the compiled module degrades to
    ``numpy`` and warns once per process.
    """
    global _warned_missing_native
    requested = runtime_config().kernel_backend
    if requested == "numpy":
        return "numpy"
    if _native is not None:
        return "native"
    if requested == "native" and not _warned_missing_native:
        _warned_missing_native = True
        warnings.warn(
            "REPRO_KERNEL_BACKEND=native requested but the compiled "
            "repro.kernels._native module is unavailable; falling back to "
            "the pure-NumPy kernels (results are identical)",
            RuntimeWarning,
            stacklevel=2,
        )
    return "numpy"


def csr_expand(lengths: IntArray) -> tuple[IntArray, IntArray, IntArray]:
    """CSR layout of variable-length rows: ``offsets``, ``owner``, ``within``.

    ``offsets`` has ``lengths.size + 1`` entries (``offsets[-1]`` is the
    total slot count); slot ``j`` belongs to row ``owner[j]`` at
    position ``within[j]`` inside that row.  This is the expansion
    every batched router builds its per-hop gathers on.
    """
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    if active_backend() == "native":
        return _native.csr_expand(lengths)
    return numpy_impl.csr_expand(lengths)


def histogram_dot(matrix: IntArray, src: IntArray, dst: IntArray, weights: IntArray) -> int:
    """The ACD inner product ``sum_i matrix[src[i], dst[i]] * weights[i]``.

    ``matrix`` is a C-contiguous 2D ``int32``/``int64`` distance matrix;
    ``src``/``dst``/``weights`` are equal-length 1D ``int64`` arrays.
    All arithmetic is integer (the native path accumulates in 64 bits
    exactly like NumPy's ``int64`` dot), so both backends return the
    same Python int.  Raises :class:`ValueError` on out-of-range ranks.
    """
    matrix = np.ascontiguousarray(matrix)
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    if src.shape != dst.shape or src.shape != weights.shape or src.ndim != 1:
        raise ValueError("src, dst and weights must be equal-length 1D arrays")
    if active_backend() == "native" and matrix.dtype in (np.int32, np.int64):
        return int(_native.histogram_dot(matrix, src, dst, weights))
    return numpy_impl.histogram_dot(matrix, src, dst, weights)


def tile_histogram_dot(
    block: IntArray,
    src: IntArray,
    dst: IntArray,
    weights: IntArray,
    row_off: int,
    col_off: int,
) -> int:
    """:func:`histogram_dot` against one tile of the distance matrix.

    ``block`` is the C-contiguous ``int32``/``int64`` sub-block
    ``matrix[row_off:row_off+h, col_off:col_off+w]`` and ``src``/``dst``
    carry *global* ranks — the offsets rebase them into the tile.  The
    fused gather + ``int64`` dot of the memory-budgeted tiled ACD path:
    summing the returns over a disjoint tiling of the pair set is
    bit-identical to one dense :func:`histogram_dot`.  Raises
    :class:`ValueError` when any rebased rank falls outside the block.
    """
    block = np.ascontiguousarray(block)
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    if src.shape != dst.shape or src.shape != weights.shape or src.ndim != 1:
        raise ValueError("src, dst and weights must be equal-length 1D arrays")
    row_off = int(row_off)
    col_off = int(col_off)
    if (
        active_backend() == "native"
        and block.dtype in (np.int32, np.int64)
        # hasattr guards against a stale compiled module from an older build
        and hasattr(_native, "tile_histogram_dot")
    ):
        return int(_native.tile_histogram_dot(block, src, dst, weights, row_off, col_off))
    return numpy_impl.tile_histogram_dot(block, src, dst, weights, row_off, col_off)
