"""One place for every runtime knob: the :class:`RuntimeConfig`.

The experiments stack grew seven ``REPRO_*`` environment variables, each
parsed ad hoc where it was consumed (jobs in the runner, the store
directory in the store, cache budgets at two different import sites).
This module is now the single parser: every env var is a *documented
default* for one :class:`RuntimeConfig` field, read in exactly one
place (:meth:`RuntimeConfig.from_env`), and the consuming modules —
:mod:`repro.experiments.runner`, :mod:`repro.experiments.store`,
:mod:`repro.experiments.artifacts`, :mod:`repro.topology.cache`,
:func:`repro.experiments.config.active_scale` — ask
:func:`runtime_config` instead of ``os.environ``.

===========================  =======================  ==================
Environment variable         Field                    Default
===========================  =======================  ==================
``REPRO_SCALE``              ``scale``                ``"small"``
``REPRO_JOBS``               ``jobs``                 ``None`` (serial)
``REPRO_STORE``              ``store_dir``            ``None`` (no store; dir path or ``sqlite://`` URL)
``REPRO_CACHE_ENTRIES``      ``cache_entries``        ``32``
``REPRO_CACHE_MATRIX_BYTES`` ``cache_matrix_bytes``   ``256 MiB``
``REPRO_EVENT_CACHE_BYTES``  ``event_cache_bytes``    ``256 MiB``
``REPRO_EVENT_CACHE_ENTRIES`` ``event_cache_entries`` ``256``
``REPRO_TRACE``              ``trace``                ``False``
``REPRO_METRICS``            ``metrics_path``         ``None``
``REPRO_MAX_RETRIES``        ``max_retries``          ``2``
``REPRO_UNIT_TIMEOUT``       ``unit_timeout``         ``None`` (no limit)
``REPRO_STRICT``             ``strict``               ``False``
``REPRO_FAULTS``             ``faults``               ``None`` (no faults)
``REPRO_KERNEL_BACKEND``     ``kernel_backend``       ``"auto"``
``REPRO_MEMORY_BUDGET``      ``memory_budget``        ``None`` (unbounded)
===========================  =======================  ==================

Precedence: an explicit :func:`configure` (or ``with configure(...):``)
beats the environment, which beats the built-in defaults.  While no
config is installed, :func:`runtime_config` re-reads the environment on
every call, so tests that monkeypatch ``REPRO_*`` keep working.

This module is import-light (stdlib only) so the lowest layers — the
topology cache in particular — can read it without import cycles; the
side-effectful application of a config (pool default, cache swaps,
recorder installation) lives in :func:`configure` behind local imports.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "RuntimeConfig",
    "runtime_config",
    "configure",
    "parse_bytes",
    "parse_store_url",
    "ENV_VARS",
    "KERNEL_BACKENDS",
    "STORE_SCHEMES",
]

#: Environment variable -> :class:`RuntimeConfig` field, the documented
#: defaults table above in code form.
ENV_VARS: dict[str, str] = {
    "REPRO_SCALE": "scale",
    "REPRO_JOBS": "jobs",
    "REPRO_STORE": "store_dir",
    "REPRO_CACHE_ENTRIES": "cache_entries",
    "REPRO_CACHE_MATRIX_BYTES": "cache_matrix_bytes",
    "REPRO_EVENT_CACHE_BYTES": "event_cache_bytes",
    "REPRO_EVENT_CACHE_ENTRIES": "event_cache_entries",
    "REPRO_TRACE": "trace",
    "REPRO_METRICS": "metrics_path",
    "REPRO_MAX_RETRIES": "max_retries",
    "REPRO_UNIT_TIMEOUT": "unit_timeout",
    "REPRO_STRICT": "strict",
    "REPRO_FAULTS": "faults",
    "REPRO_KERNEL_BACKEND": "kernel_backend",
    "REPRO_MEMORY_BUDGET": "memory_budget",
}

#: Accepted values of ``kernel_backend`` (see :mod:`repro.kernels`).
KERNEL_BACKENDS = ("auto", "numpy", "native")

#: Store-URL schemes accepted by :func:`parse_store_url` (see
#: :mod:`repro.experiments.backends` for the backends they select).
STORE_SCHEMES = ("dir", "sqlite")

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Byte-size suffixes accepted by :func:`parse_bytes`.  All multiples are
#: binary (``K == KB == KiB == 2**10``) — memory budgets describe RAM.
_BYTE_SUFFIXES: dict[str, int] = {
    "": 1,
    "b": 1,
    **{
        prefix + suffix: 1 << shift
        for prefix, shift in (("k", 10), ("m", 20), ("g", 30), ("t", 40))
        for suffix in ("", "b", "ib")
    },
}


def parse_bytes(size: "int | str") -> int:
    """Parse a byte count like ``"2GiB"``, ``"512M"`` or ``"1048576"``.

    Suffixes are case-insensitive binary multiples (``K``/``KB``/``KiB``
    all mean ``2**10``); a bare number is bytes.  Fractions are allowed
    with a suffix (``"1.5GiB"``) and truncate to whole bytes.
    """
    if isinstance(size, int):
        return size
    import re

    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*", str(size))
    unit = match.group(2).lower() if match else None
    if match is None or unit not in _BYTE_SUFFIXES:
        raise ValueError(
            f"cannot parse byte size {size!r}; expected e.g. 1048576, 512MiB, 2GiB"
        )
    return int(float(match.group(1)) * _BYTE_SUFFIXES[unit])


def parse_store_url(url: str) -> tuple[str, str]:
    """Parse a result-store URL into ``(scheme, filesystem path)``.

    The one grammar behind ``REPRO_STORE``, ``--store`` and
    :func:`repro.experiments.store.open_store`:

    * a plain path (no scheme) — a directory store: ``results/`` or
      ``/var/cache/repro`` → ``("dir", path)``;
    * ``dir://<path>`` — the same, explicitly;
    * ``sqlite://<path>`` — a shared SQLite (WAL) database file:
      everything after the scheme is the path verbatim, so
      ``sqlite:///var/results.db`` is absolute and
      ``sqlite://results.db`` is relative.

    Raises ``ValueError`` for an unknown scheme or an empty path, so a
    typo in ``REPRO_STORE`` fails loudly at configuration time instead
    of silently creating a directory named ``sqlite:``.
    """
    text = str(url).strip()
    scheme, sep, rest = text.partition("://")
    if not sep:
        scheme, rest = "dir", text
    elif scheme not in STORE_SCHEMES:
        raise ValueError(
            f"unknown store scheme {scheme!r} in {url!r}; "
            f"expected a plain directory path or one of: "
            + ", ".join(f"{s}://" for s in STORE_SCHEMES)
        )
    if not rest:
        raise ValueError(f"store URL {url!r} has an empty path")
    return scheme, rest


def _int_env(env: Mapping[str, str], var: str, default: int, minimum: int = 0) -> int:
    raw = env.get(var, "").strip()
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        raise ValueError(f"{var} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class RuntimeConfig:
    """Every knob controlling *how* experiments run (never *what* they
    compute — results are bit-identical under any config).

    Attributes
    ----------
    scale:
        Default workload scale name (``"small"`` / ``"paper"``).
    jobs:
        Worker processes for trial/unit fan-out; ``None`` means serial.
    store_dir:
        Location of the persistent result store — a directory path or a
        backend URL (``sqlite://path/to/results.db`` for the shared
        WAL-mode SQLite backend; see :func:`parse_store_url` for the
        grammar).  ``None`` disables the store.
    cache_entries, cache_matrix_bytes:
        Topology-cache budgets (entries per section / max bytes of one
        distance matrix; ``0`` disables matrix caching).
    event_cache_bytes, event_cache_entries:
        Event-artifact cache budgets (``bytes=0`` disables caching).
    trace:
        Install an :mod:`repro.obs` recorder for the run.
    metrics_path:
        Where to write the :class:`~repro.obs.RunManifest` (implies
        ``trace`` for CLI runs); ``None`` writes nothing.
    max_retries:
        Additional attempts granted to a unit that raised or timed out
        before the failure becomes fatal (``0`` disables retries).
    unit_timeout:
        Per-unit wall-clock budget in seconds for pool execution; a
        hung worker is torn down and the unit retried.  ``None``
        disables timeouts.
    strict:
        Fail fast on the first fault instead of retrying, rebuilding
        the pool or degrading to serial (completed units still flush
        to the store first).
    faults:
        Deterministic fault-injection plan (see :mod:`repro.faults`),
        e.g. ``"crash:unit=3; raise:rate=0.1:seed=7; hang:unit=5"``.
    kernel_backend:
        Compute-kernel backend for the CSR expansion and histogram-ACD
        inner loops (see :mod:`repro.kernels`): ``"auto"`` uses the
        compiled module when built, ``"numpy"`` forces the pure-NumPy
        path, ``"native"`` requests the compiled path (degrading to
        NumPy with a warning when it is unavailable).  Results are
        bit-identical under every setting.
    memory_budget:
        Peak working-set bytes one metric evaluation may allocate
        (``REPRO_MEMORY_BUDGET``, e.g. ``"2GiB"``).  When set, the
        histogram-ACD path switches from the dense ``p x p`` distance
        matrix to memory-bounded tiles whenever the matrix would exceed
        the budget (see :mod:`repro.metrics.acd`), and
        :meth:`~repro.fmm.events.CommunicationEvents.compact` sizes its
        dense scratch table from the same budget.  ``None`` leaves the
        dense paths unbounded (the previous behaviour).  Results are
        bit-identical under any budget.
    """

    scale: str = "small"
    jobs: int | None = None
    store_dir: str | None = None
    cache_entries: int = 32
    cache_matrix_bytes: int = 256 << 20
    event_cache_bytes: int = 256 << 20
    event_cache_entries: int = 256
    trace: bool = False
    metrics_path: str | None = None
    max_retries: int = 2
    unit_timeout: float | None = None
    strict: bool = False
    faults: str | None = None
    kernel_backend: str = "auto"
    memory_budget: int | None = None

    def __post_init__(self) -> None:
        if self.store_dir is not None:
            parse_store_url(self.store_dir)  # raises ValueError on a bad URL
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 byte or None, got {self.memory_budget}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1 or None, got {self.jobs}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0 or None, got {self.unit_timeout}")
        if self.faults:
            from repro.faults import parse_faults  # stdlib-only, cycle-free

            parse_faults(self.faults)  # raises ValueError on a bad plan
        for name in ("cache_matrix_bytes", "event_cache_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("cache_entries", "event_cache_entries"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "RuntimeConfig":
        """Parse the ``REPRO_*`` variables (the one place that does)."""
        if env is None:
            env = os.environ
        jobs_raw = env.get("REPRO_JOBS", "").strip()
        store_raw = env.get("REPRO_STORE", "").strip()
        metrics_raw = env.get("REPRO_METRICS", "").strip()
        timeout_raw = env.get("REPRO_UNIT_TIMEOUT", "").strip()
        faults_raw = env.get("REPRO_FAULTS", "").strip()
        budget_raw = env.get("REPRO_MEMORY_BUDGET", "").strip()
        try:
            memory_budget = parse_bytes(budget_raw) if budget_raw else None
        except ValueError:
            raise ValueError(
                f"REPRO_MEMORY_BUDGET must be a byte size (e.g. 2GiB), got {budget_raw!r}"
            ) from None
        try:
            unit_timeout = float(timeout_raw) if timeout_raw else None
        except ValueError:
            raise ValueError(
                f"REPRO_UNIT_TIMEOUT must be a number of seconds, got {timeout_raw!r}"
            ) from None
        return cls(
            scale=env.get("REPRO_SCALE", "").strip() or "small",
            jobs=max(1, int(jobs_raw)) if jobs_raw else None,
            store_dir=store_raw or None,
            cache_entries=_int_env(env, "REPRO_CACHE_ENTRIES", 32, minimum=1),
            cache_matrix_bytes=_int_env(env, "REPRO_CACHE_MATRIX_BYTES", 256 << 20),
            event_cache_bytes=_int_env(env, "REPRO_EVENT_CACHE_BYTES", 256 << 20),
            event_cache_entries=_int_env(env, "REPRO_EVENT_CACHE_ENTRIES", 256, minimum=1),
            trace=env.get("REPRO_TRACE", "").strip().lower() in _TRUTHY,
            metrics_path=metrics_raw or None,
            max_retries=_int_env(env, "REPRO_MAX_RETRIES", 2),
            unit_timeout=unit_timeout,
            strict=env.get("REPRO_STRICT", "").strip().lower() in _TRUTHY,
            faults=faults_raw or None,
            kernel_backend=env.get("REPRO_KERNEL_BACKEND", "").strip().lower() or "auto",
            memory_budget=memory_budget,
        )

    def replace(self, **overrides: Any) -> "RuntimeConfig":
        """A copy with ``overrides`` applied (validated)."""
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (recorded verbatim in the run manifest)."""
        return dataclasses.asdict(self)


#: The explicitly installed config, or ``None`` (= read the environment).
_active: RuntimeConfig | None = None


def runtime_config() -> RuntimeConfig:
    """The effective config: the installed one, else freshly env-parsed."""
    return _active if _active is not None else RuntimeConfig.from_env()


class _Configured:
    """Handle returned by :func:`configure`; context manager restores.

    The config is applied *immediately* on construction — using the
    handle as a context manager is optional and merely makes the change
    scoped.
    """

    def __init__(self, config: RuntimeConfig):
        self.config = config
        self._restore = _apply(config)

    def __enter__(self) -> RuntimeConfig:
        return self.config

    def __exit__(self, *exc: object) -> bool:
        self.restore()
        return False

    def restore(self) -> None:
        """Undo this configure (idempotent)."""
        actions, self._restore = self._restore, []
        for action in reversed(actions):
            action()


def _apply(config: RuntimeConfig) -> list:
    """Install ``config`` process-wide; returns undo actions (LIFO).

    Local imports keep :mod:`repro.runtime` import-light; by the time
    anyone calls :func:`configure`, the experiment layers are loadable.
    """
    global _active
    from repro import obs
    from repro.experiments import artifacts, runner
    from repro.topology import cache as topo_cache

    undo: list = []

    previous_active = _active
    _active = config

    def restore_active(prev=previous_active):
        global _active
        _active = prev

    undo.append(restore_active)

    previous_jobs = runner._default_jobs
    runner.set_default_jobs(config.jobs)
    undo.append(lambda: runner.set_default_jobs(previous_jobs))

    current_topo = topo_cache.get_topology_cache()
    if (
        current_topo.max_matrix_bytes != config.cache_matrix_bytes
        or current_topo._matrices.max_entries != config.cache_entries
    ):
        replaced = topo_cache.set_topology_cache(
            topo_cache.TopologyCache(
                max_entries=config.cache_entries,
                max_matrix_bytes=config.cache_matrix_bytes,
            )
        )
        undo.append(lambda: topo_cache.set_topology_cache(replaced))

    current_events = artifacts.get_event_cache()
    if (
        current_events.max_bytes != config.event_cache_bytes
        or current_events.max_entries != config.event_cache_entries
    ):
        replaced_events = artifacts.set_event_cache(
            artifacts.EventArtifactCache(
                max_bytes=config.event_cache_bytes,
                max_entries=config.event_cache_entries,
            )
        )
        undo.append(lambda: artifacts.set_event_cache(replaced_events))

    if config.trace and obs.get_recorder() is None:
        previous_recorder = obs.set_recorder(obs.Recorder())
        undo.append(lambda: obs.set_recorder(previous_recorder))

    return undo


def configure(config: RuntimeConfig | None = None, **overrides: Any) -> _Configured:
    """Install a runtime config (optionally scoped).

    Either pass a full :class:`RuntimeConfig`, or field overrides that
    are applied on top of the current effective config::

        configure(jobs=8, store_dir="results/")          # permanent

        with configure(trace=True, jobs=4):              # scoped
            run_study("fig6")

    Applying a config installs the ``jobs`` default for the process
    pool, swaps the topology/event caches when their budgets changed
    (statistics reset with the swap), and installs an
    :mod:`repro.obs` recorder when ``trace`` is set and none is active.
    The returned handle restores all of it on ``__exit__`` (or via
    ``.restore()``).
    """
    base = config if config is not None else runtime_config()
    effective = base.replace(**overrides) if overrides else base
    return _Configured(effective)
