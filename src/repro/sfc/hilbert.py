"""Hilbert curve, §II-A.1 of the paper.

Two implementations live here:

* :func:`loop_encode` / :func:`loop_decode` — the classical iterative
  quadrant-rotation algorithm (one pass of ``np.where`` rotations per
  bit of the coordinates).  This is the original reference kernel; it
  is retained verbatim because the state-machine tables are *derived
  from it* and the equivalence suite pins the two bit-identical.
* :class:`HilbertCurve` — the production path: a table-driven state
  automaton (see :mod:`repro.sfc.statemachine`) that interleaves the
  coordinates into a Morton code once and then consumes several bit
  levels per table gather, replacing the four per-level ``np.where``
  rotations with one lookup.

Both agree with the independent recursive construction in
:mod:`repro.sfc.recursive` (cross-validated in the test suite).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.statemachine import CurveStateMachine, derive_machine
from repro.util.bits import deinterleave2, interleave2

__all__ = ["HilbertCurve", "loop_encode", "loop_decode"]

#: Levels fused into one table gather; 4 states x 4**8 chunk entries
#: keeps both chunk tables inside 2 MiB while an order-12 encode needs
#: only two gathers.
_RADIX_2D = 8


def loop_encode(side: int, x: IntArray, y: IntArray) -> IntArray:
    """Reference kernel: per-level quadrant-rotation encode."""
    n = np.int64(side)
    x = x.astype(np.int64, copy=True)
    y = y.astype(np.int64, copy=True)
    d = np.zeros(np.broadcast(x, y).shape, dtype=np.int64)
    s = int(n) >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += (s * s) * ((3 * rx) ^ ry)
        # Rotate the frame so the next-level quadrant looks canonical:
        # when ry == 0, optionally flip (if rx == 1) and transpose.
        noswap = ry != 0
        flip = (ry == 0) & (rx == 1)
        x = np.where(flip, n - 1 - x, x)
        y = np.where(flip, n - 1 - y, y)
        x, y = np.where(noswap, x, y), np.where(noswap, y, x)
        s >>= 1
    return d


def loop_decode(side: int, index: IntArray) -> tuple[IntArray, IntArray]:
    """Reference kernel: per-level quadrant-rotation decode."""
    t = index.astype(np.int64, copy=True)
    x = np.zeros(t.shape, dtype=np.int64)
    y = np.zeros(t.shape, dtype=np.int64)
    s = 1
    while s < side:
        rx = 1 & (t >> 1)
        ry = 1 & (t ^ rx)
        noswap = ry != 0
        flip = (ry == 0) & (rx == 1)
        x = np.where(flip, s - 1 - x, x)
        y = np.where(flip, s - 1 - y, y)
        x, y = np.where(noswap, x, y), np.where(noswap, y, x)
        x = x + s * rx
        y = y + s * ry
        t >>= 2
        s <<= 1
    return x, y


def _loop_ordering(order: int) -> IntArray:
    """Cells in curve order per the reference kernel (derivation input)."""
    side = 1 << order
    x, y = loop_decode(side, np.arange(side * side, dtype=np.int64))
    return np.stack([x, y], axis=1)


@lru_cache(maxsize=1)
def hilbert_machine() -> CurveStateMachine:
    """The 2D Hilbert automaton, derived once from the reference kernel."""
    return derive_machine(_loop_ordering, ndim=2, radix=_RADIX_2D)


class HilbertCurve(SpaceFillingCurve):
    """Discrete Hilbert curve :math:`\\mathcal{H}_k`; geometrically continuous."""

    name = "hilbert"
    continuous = True

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        return hilbert_machine().encode_from_interleaved(
            interleave2(x, y), self._order
        )

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        code = hilbert_machine().decode_to_interleaved(index, self._order)
        return deinterleave2(code)
