"""Hilbert curve, §II-A.1 of the paper.

The implementation is the classical iterative quadrant-rotation
algorithm (one pass per bit of the coordinates), vectorised so that the
per-bit work is a handful of NumPy ``where``/mask operations over the
whole input array.  Its recursive structure — four rotated copies of the
previous iteration with aligned entry/exit points — is validated against
the independent construction in :mod:`repro.sfc.recursive`.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve

__all__ = ["HilbertCurve"]


class HilbertCurve(SpaceFillingCurve):
    """Discrete Hilbert curve :math:`\\mathcal{H}_k`; geometrically continuous."""

    name = "hilbert"
    continuous = True

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        n = np.int64(self.side)
        x = x.astype(np.int64, copy=True)
        y = y.astype(np.int64, copy=True)
        d = np.zeros(np.broadcast(x, y).shape, dtype=np.int64)
        s = int(n) >> 1
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += (s * s) * ((3 * rx) ^ ry)
            # Rotate the frame so the next-level quadrant looks canonical:
            # when ry == 0, optionally flip (if rx == 1) and transpose.
            noswap = ry != 0
            flip = (ry == 0) & (rx == 1)
            x = np.where(flip, n - 1 - x, x)
            y = np.where(flip, n - 1 - y, y)
            x, y = np.where(noswap, x, y), np.where(noswap, y, x)
            s >>= 1
        return d

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        t = index.astype(np.int64, copy=True)
        x = np.zeros(t.shape, dtype=np.int64)
        y = np.zeros(t.shape, dtype=np.int64)
        s = 1
        while s < self.side:
            rx = 1 & (t >> 1)
            ry = 1 & (t ^ rx)
            noswap = ry != 0
            flip = (ry == 0) & (rx == 1)
            x = np.where(flip, s - 1 - x, x)
            y = np.where(flip, s - 1 - y, y)
            x, y = np.where(noswap, x, y), np.where(noswap, y, x)
            x = x + s * rx
            y = y + s * ry
            t >>= 2
            s <<= 1
        return x, y
