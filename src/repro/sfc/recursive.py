"""Independent recursive reference constructions of the study's curves.

§II-A of the paper describes each curve twice: by its bit-manipulation
formula (the efficient route, used by the production classes) and by its
recursive quadrant construction (the route used for theoretical
analysis).  This module implements the *recursive* constructions in
plain Python, deliberately sharing no code with the vectorised kernels,
so the test-suite can cross-validate two independent derivations of
every ordering.

Each function returns the list of cells in curve order as an
``(4**order, 2)`` int64 array (row ``i`` = coordinates of index ``i``).

Notes on the Gray order
-----------------------
The paper summarises the Gray recursion as "the lower two copies are
not rotated and the upper two are rotated 180°".  Deriving the exact
recursion from the defining formula (order Morton codes by their Gray
rank) shows the odd-parity quadrants contain the *reversed* sub-sequence,
which coincides with a reflected copy rather than a rotation; the
derivation is reproduced in the docstring of
:func:`gray_recursive_ordering`.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.util.validation import check_order

__all__ = [
    "hilbert_recursive_ordering",
    "zcurve_recursive_ordering",
    "gray_recursive_ordering",
    "rowmajor_recursive_ordering",
    "peano_recursive_ordering",
]

#: A practical cap: the reference recursions materialise Python lists and
#: are meant for validation at small orders only.
_MAX_REFERENCE_ORDER = 10

#: The Peano reference grows as ``9**order``, so its cap is lower.
_MAX_PEANO_REFERENCE_ORDER = 6


def _check(order: int) -> int:
    k = check_order(order, max_order=_MAX_REFERENCE_ORDER)
    return k


def _to_array(points: list[tuple[int, int]]) -> IntArray:
    return np.asarray(points, dtype=np.int64).reshape(len(points), 2)


def hilbert_recursive_ordering(order: int) -> IntArray:
    """Hilbert curve via the four-copies-with-rotation recursion.

    :math:`\\mathcal{H}_{k+1}` consists of copies of
    :math:`\\mathcal{H}_k` placed in quadrant order
    ``(0,0) → (0,1) → (1,1) → (1,0)``; the first copy is transposed and
    the last anti-transposed so entry and exit points align.
    """
    k = _check(order)

    def build(level: int) -> list[tuple[int, int]]:
        if level == 0:
            return [(0, 0)]
        prev = build(level - 1)
        s = 1 << (level - 1)
        out: list[tuple[int, int]] = []
        out.extend((v, u) for u, v in prev)  # quadrant (0,0): transpose
        out.extend((u, v + s) for u, v in prev)  # quadrant (0,1)
        out.extend((u + s, v + s) for u, v in prev)  # quadrant (1,1)
        out.extend((2 * s - 1 - v, s - 1 - u) for u, v in prev)  # (1,0): anti-transpose
        return out

    return _to_array(build(k))


def zcurve_recursive_ordering(order: int) -> IntArray:
    """Z-curve via recursion: quadrants in Morton order, copies unrotated."""
    k = _check(order)

    def build(level: int) -> list[tuple[int, int]]:
        if level == 0:
            return [(0, 0)]
        prev = build(level - 1)
        s = 1 << (level - 1)
        out: list[tuple[int, int]] = []
        for qx, qy in ((0, 0), (0, 1), (1, 0), (1, 1)):
            out.extend((u + qx * s, v + qy * s) for u, v in prev)
        return out

    return _to_array(build(k))


def gray_recursive_ordering(order: int) -> IntArray:
    """Gray order via recursion.

    Quadrants are visited in the reflected-Gray sequence of their
    ``(x_hi, y_hi)`` code: ``(0,0) → (0,1) → (1,1) → (1,0)``.  Because the
    Gray rank of a code ``z`` prefix-XORs all higher bits into each output
    bit, a quadrant whose 2-bit code has odd parity contributes its
    sub-sequence with all rank bits complemented — i.e. *reversed*:
    ``gray(M-1-m) = gray(m) XOR topbit`` shows the reversed sequence is a
    reflected copy of the original.
    """
    k = _check(order)

    def build(level: int) -> list[tuple[int, int]]:
        if level == 0:
            return [(0, 0)]
        prev = build(level - 1)
        s = 1 << (level - 1)
        out: list[tuple[int, int]] = []
        for qx, qy in ((0, 0), (0, 1), (1, 1), (1, 0)):
            sub = prev if (qx ^ qy) == 0 else prev[::-1]
            out.extend((u + qx * s, v + qy * s) for u, v in sub)
        return out

    return _to_array(build(k))


def rowmajor_recursive_ordering(order: int) -> IntArray:
    """Row-major order built by explicit double loop (trivial reference)."""
    k = _check(order)
    side = 1 << k
    return _to_array([(x, y) for x in range(side) for y in range(side)])


def peano_recursive_ordering(order: int) -> IntArray:
    """Peano curve via the nine-copies serpentine recursion.

    :math:`\\mathcal{P}_{k+1}` places nine copies of
    :math:`\\mathcal{P}_k` in a 3x3 arrangement of sub-squares visited in
    serpentine order (columns bottom-to-top, alternating direction).  A
    copy is reflected along an axis whenever the serpentine has traversed
    an odd number of sub-squares in the *other* axis — exactly the
    digit-complement rule of the closed form — so entry and exit points
    of consecutive copies coincide and the curve stays continuous.

    Returns a ``(9**order, 2)`` array (note: *not* ``4**order``).
    """
    k = check_order(order, max_order=_MAX_PEANO_REFERENCE_ORDER)

    def build(level: int) -> list[tuple[int, int]]:
        if level == 0:
            return [(0, 0)]
        prev = build(level - 1)
        s = 3 ** (level - 1)
        out: list[tuple[int, int]] = []
        for qx in range(3):
            ys = range(3) if qx % 2 == 0 else range(2, -1, -1)
            for qy in ys:
                flip_x = qy % 2 == 1
                flip_y = qx % 2 == 1
                for u, v in prev:
                    cu = s - 1 - u if flip_x else u
                    cv = s - 1 - v if flip_y else v
                    out.append((qx * s + cu, qy * s + cv))
        return out

    return _to_array(build(k))
