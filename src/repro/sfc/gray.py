"""Gray order, §II-A.2 of the paper.

"The Gray order takes the Z-curve representations of each point and
orders them by the Gray code": the cell whose Morton code is ``z`` is
visited at position ``gray^{-1}(z)``, i.e. the position of ``z`` within
the reflected-Gray-code sequence.  Equivalently this is the recursive
construction where the two lower quadrant copies are unrotated and the
two upper copies are rotated 180° (validated against
:mod:`repro.sfc.recursive` in the test-suite).
"""

from __future__ import annotations

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve
from repro.util.bits import deinterleave2, gray_decode, gray_encode, interleave2

__all__ = ["GrayCurve"]


class GrayCurve(SpaceFillingCurve):
    """Gray-code order: index = ``gray_decode(morton(x, y))``."""

    name = "gray"
    continuous = False

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        return gray_decode(interleave2(x, y))

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        return deinterleave2(gray_encode(index))
