"""Registry of the study's space-filling curves.

``PAPER_CURVES`` lists the four curves evaluated throughout the paper in
the order its tables use; :func:`get_curve` accepts the friendly names
that appear in the paper's tables ("Hilbert Curve", "Z-Curve", "Gray
Code", "Row Major") as aliases.
"""

from __future__ import annotations

from repro.sfc.base import SpaceFillingCurve
from repro.sfc.gray import GrayCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.peano import PeanoCurve
from repro.sfc.rowmajor import RowMajorCurve
from repro.sfc.snake import SnakeCurve
from repro.sfc.zcurve import ZCurve
from repro.util.registry import Registry

__all__ = ["CURVES", "PAPER_CURVES", "ALL_CURVES", "get_curve", "curve_names"]

CURVES: Registry[SpaceFillingCurve] = Registry("space-filling curve")
CURVES.register("hilbert", HilbertCurve, aliases=("hilbert curve", "h"))
CURVES.register("zcurve", ZCurve, aliases=("z-curve", "z", "morton", "z curve"))
CURVES.register("gray", GrayCurve, aliases=("gray code", "gray order", "g"))
CURVES.register("rowmajor", RowMajorCurve, aliases=("row major", "row-major", "rm"))
CURVES.register("snake", SnakeCurve, aliases=("boustrophedon",))
CURVES.register("peano", PeanoCurve, aliases=("peano curve",))

#: The four curves evaluated in the paper, in its table order.
PAPER_CURVES: tuple[str, ...] = ("hilbert", "zcurve", "gray", "rowmajor")

#: Every registered 2D curve (paper curves + extensions).
ALL_CURVES: tuple[str, ...] = CURVES.names()


def get_curve(name: str, order: int) -> SpaceFillingCurve:
    """Instantiate the curve registered under ``name`` at the given order."""
    return CURVES.create(name, order)


def curve_names() -> tuple[str, ...]:
    """Canonical names of all registered curves."""
    return CURVES.names()
