"""Three-dimensional space-filling curves (extension).

The paper evaluates 2D only but lists "validation ... using 3D" as
future work (§VIII item ii).  This module provides the 3D counterparts
of the study's curves so the ANNS and ACD machinery can be exercised on
octree-style problems:

* :class:`Morton3D` — 3D bit interleaving,
* :class:`Gray3D` — Gray rank of the Morton code,
* :class:`RowMajor3D` — lexicographic scan,
* :class:`Snake3D` — boustrophedon scan (continuous),
* :class:`Hilbert3D` — Skilling's transpose algorithm (continuous),
  vectorised over NumPy arrays.

All classes share the :class:`Curve3D` interface, a 3D sibling of
:class:`repro.sfc.base.SpaceFillingCurve`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._typing import IntArray
from repro.util.bits import (
    MAX_BITS_3D,
    deinterleave3,
    gray_decode,
    gray_encode,
    interleave3,
)
from repro.util.registry import Registry
from repro.util.validation import check_in_range, check_order

__all__ = [
    "Curve3D",
    "Morton3D",
    "Gray3D",
    "RowMajor3D",
    "Snake3D",
    "Hilbert3D",
    "CURVES3D",
    "get_curve3d",
]


class Curve3D(abc.ABC):
    """A discrete space-filling curve on a ``2**order`` cube lattice."""

    name: str = ""
    continuous: bool = False

    def __init__(self, order: int):
        self._order = check_order(order, max_order=MAX_BITS_3D)

    @property
    def order(self) -> int:
        """The curve order :math:`k`."""
        return self._order

    @property
    def side(self) -> int:
        """Lattice side length ``2**order``."""
        return 1 << self._order

    @property
    def size(self) -> int:
        """Number of lattice cells ``8**order``."""
        return 1 << (3 * self._order)

    @abc.abstractmethod
    def _encode(self, x: IntArray, y: IntArray, z: IntArray) -> IntArray:
        """Kernel mapping validated coordinate arrays to indices."""

    @abc.abstractmethod
    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray, IntArray]:
        """Kernel mapping validated index arrays to coordinates."""

    def encode(self, x, y, z) -> IntArray:
        """Map lattice coordinates to curve indices in ``[0, size)``."""
        scalar = np.isscalar(x) and np.isscalar(y) and np.isscalar(z)
        xa = check_in_range(x, 0, self.side, "x")
        ya = check_in_range(y, 0, self.side, "y")
        za = check_in_range(z, 0, self.side, "z")
        xa, ya, za = np.broadcast_arrays(xa, ya, za)
        out = self._encode(xa, ya, za)
        return int(out[()]) if scalar and out.ndim == 0 else out

    def decode(self, index) -> tuple[IntArray, IntArray, IntArray]:
        """Map curve indices back to lattice coordinates."""
        scalar = np.isscalar(index)
        idx = check_in_range(index, 0, self.size, "index")
        x, y, z = self._decode(idx)
        if scalar and np.ndim(x) == 0:
            return int(x[()]), int(y[()]), int(z[()])
        return x, y, z

    def ordering(self) -> IntArray:
        """Cells in curve order as an ``(size, 3)`` array."""
        x, y, z = self._decode(np.arange(self.size, dtype=np.int64))
        return np.stack([x, y, z], axis=1)

    def step_lengths(self) -> IntArray:
        """Manhattan distances between consecutive cells along the curve."""
        pts = self.ordering()
        return np.abs(np.diff(pts, axis=0)).sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self._order})"


class Morton3D(Curve3D):
    """3D Z-curve: index = bit interleave of ``(x, y, z)``."""

    name = "morton3d"

    def _encode(self, x, y, z):
        return interleave3(x, y, z)

    def _decode(self, index):
        return deinterleave3(index)


class Gray3D(Curve3D):
    """3D Gray order: Gray rank of the 3D Morton code."""

    name = "gray3d"

    def _encode(self, x, y, z):
        return gray_decode(interleave3(x, y, z))

    def _decode(self, index):
        return deinterleave3(gray_encode(index))


class RowMajor3D(Curve3D):
    """Lexicographic scan: index = ``x * side**2 + y * side + z``."""

    name = "rowmajor3d"

    def _encode(self, x, y, z):
        side = np.int64(self.side)
        return (x * side + y) * side + z

    def _decode(self, index):
        side = np.int64(self.side)
        return index // (side * side), (index // side) % side, index % side


class Snake3D(Curve3D):
    """Boustrophedon scan in 3D; consecutive cells are always neighbours."""

    name = "snake3d"
    continuous = True

    def _encode(self, x, y, z):
        side = np.int64(self.side)
        ypos = np.where(x & 1, side - 1 - y, y)
        # Parity of the number of completed z-sweeps decides the z direction.
        zpos = np.where((x * side + ypos) & 1, side - 1 - z, z)
        return (x * side + ypos) * side + zpos

    def _decode(self, index):
        side = np.int64(self.side)
        x = index // (side * side)
        ypos = (index // side) % side
        zpos = index % side
        y = np.where(x & 1, side - 1 - ypos, ypos)
        z = np.where((x * side + ypos) & 1, side - 1 - zpos, zpos)
        return x, y, z


class Hilbert3D(Curve3D):
    """3D Hilbert curve via Skilling's transpose algorithm (2004).

    The algorithm works on the "transpose" representation of the index —
    ``n`` words each holding every ``n``-th bit — and applies one
    Gray-code/rotation sweep per bit level.  Each sweep is a fixed number
    of vectorised mask operations, so encoding ``m`` points costs
    ``O(m * order)`` NumPy ops.
    """

    name = "hilbert3d"
    continuous = True
    _NDIM = 3

    def _axes_to_transpose(self, coords: list[np.ndarray]) -> list[np.ndarray]:
        n, b = self._NDIM, self._order
        X = [c.astype(np.int64, copy=True) for c in coords]
        m = 1 << (b - 1)
        # Inverse undo of the rotation work
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                cond = (X[i] & q) != 0
                t = np.where(cond, 0, (X[0] ^ X[i]) & p)
                X[0] ^= np.where(cond, p, t)
                X[i] ^= t
            q >>= 1
        # Gray encode
        for i in range(1, n):
            X[i] ^= X[i - 1]
        t = np.zeros_like(X[0])
        q = m
        while q > 1:
            t ^= np.where((X[n - 1] & q) != 0, q - 1, 0)
            q >>= 1
        for i in range(n):
            X[i] ^= t
        return X

    def _transpose_to_axes(self, words: list[np.ndarray]) -> list[np.ndarray]:
        n, b = self._NDIM, self._order
        X = [w.astype(np.int64, copy=True) for w in words]
        top = 2 << (b - 1)
        # Gray decode by halving
        t = X[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            X[i] ^= X[i - 1]
        X[0] ^= t
        # Undo excess rotation work
        q = 2
        while q != top:
            p = q - 1
            for i in range(n - 1, -1, -1):
                cond = (X[i] & q) != 0
                t = np.where(cond, 0, (X[0] ^ X[i]) & p)
                X[0] ^= np.where(cond, p, t)
                X[i] ^= t
            q <<= 1
        return X

    def _encode(self, x, y, z):
        if self._order == 0:
            return np.zeros(np.broadcast(x, y, z).shape, dtype=np.int64)
        X = self._axes_to_transpose([x, y, z])
        return interleave3(X[0], X[1], X[2])

    def _decode(self, index):
        if self._order == 0:
            zero = np.zeros(np.shape(index), dtype=np.int64)
            return zero, zero.copy(), zero.copy()
        words = list(deinterleave3(index))
        X = self._transpose_to_axes(words)
        return X[0], X[1], X[2]


CURVES3D: Registry[Curve3D] = Registry("3D space-filling curve")
CURVES3D.register("hilbert3d", Hilbert3D, aliases=("hilbert",))
CURVES3D.register("morton3d", Morton3D, aliases=("zcurve", "morton", "z"))
CURVES3D.register("gray3d", Gray3D, aliases=("gray",))
CURVES3D.register("rowmajor3d", RowMajor3D, aliases=("rowmajor",))
CURVES3D.register("snake3d", Snake3D, aliases=("snake",))


def get_curve3d(name: str, order: int) -> Curve3D:
    """Instantiate the 3D curve registered under ``name``."""
    return CURVES3D.create(name, order)
