"""Three-dimensional space-filling curves (extension).

The paper evaluates 2D only but lists "validation ... using 3D" as
future work (§VIII item ii).  This module provides the 3D counterparts
of the study's curves so the ANNS and ACD machinery can be exercised on
octree-style problems:

* :class:`Morton3D` — 3D bit interleaving,
* :class:`Gray3D` — Gray rank of the Morton code,
* :class:`RowMajor3D` — lexicographic scan,
* :class:`Snake3D` — boustrophedon scan (continuous),
* :class:`Hilbert3D` — Skilling's transpose algorithm (continuous),
  vectorised over NumPy arrays.

All classes share the :class:`Curve3D` interface, a 3D sibling of
:class:`repro.sfc.base.SpaceFillingCurve`.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro._typing import IntArray
from repro.util.bits import (
    MAX_BITS_3D,
    deinterleave3,
    gray_decode,
    gray_encode,
    interleave3,
)
from repro.util.registry import Registry
from repro.util.validation import check_in_range, check_order

__all__ = [
    "Curve3D",
    "Morton3D",
    "Gray3D",
    "RowMajor3D",
    "Snake3D",
    "Hilbert3D",
    "CURVES3D",
    "get_curve3d",
]


class Curve3D(abc.ABC):
    """A discrete space-filling curve on a ``2**order`` cube lattice."""

    name: str = ""
    continuous: bool = False

    def __init__(self, order: int):
        self._order = check_order(order, max_order=MAX_BITS_3D)

    @property
    def order(self) -> int:
        """The curve order :math:`k`."""
        return self._order

    @property
    def side(self) -> int:
        """Lattice side length ``2**order``."""
        return 1 << self._order

    @property
    def size(self) -> int:
        """Number of lattice cells ``8**order``."""
        return 1 << (3 * self._order)

    @abc.abstractmethod
    def _encode(self, x: IntArray, y: IntArray, z: IntArray) -> IntArray:
        """Kernel mapping validated coordinate arrays to indices."""

    @abc.abstractmethod
    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray, IntArray]:
        """Kernel mapping validated index arrays to coordinates."""

    def encode(self, x, y, z) -> IntArray:
        """Map lattice coordinates to curve indices in ``[0, size)``."""
        scalar = np.isscalar(x) and np.isscalar(y) and np.isscalar(z)
        xa = check_in_range(x, 0, self.side, "x")
        ya = check_in_range(y, 0, self.side, "y")
        za = check_in_range(z, 0, self.side, "z")
        xa, ya, za = np.broadcast_arrays(xa, ya, za)
        out = self._encode(xa, ya, za)
        return int(out[()]) if scalar and out.ndim == 0 else out

    def decode(self, index) -> tuple[IntArray, IntArray, IntArray]:
        """Map curve indices back to lattice coordinates."""
        scalar = np.isscalar(index)
        idx = check_in_range(index, 0, self.size, "index")
        x, y, z = self._decode(idx)
        if scalar and np.ndim(x) == 0:
            return int(x[()]), int(y[()]), int(z[()])
        return x, y, z

    def ordering(self) -> IntArray:
        """Cells in curve order as an ``(size, 3)`` array."""
        x, y, z = self._decode(np.arange(self.size, dtype=np.int64))
        return np.stack([x, y, z], axis=1)

    def step_lengths(self) -> IntArray:
        """Manhattan distances between consecutive cells along the curve."""
        pts = self.ordering()
        return np.abs(np.diff(pts, axis=0)).sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self._order})"


class Morton3D(Curve3D):
    """3D Z-curve: index = bit interleave of ``(x, y, z)``."""

    name = "morton3d"

    def _encode(self, x, y, z):
        return interleave3(x, y, z)

    def _decode(self, index):
        return deinterleave3(index)


class Gray3D(Curve3D):
    """3D Gray order: Gray rank of the 3D Morton code."""

    name = "gray3d"

    def _encode(self, x, y, z):
        return gray_decode(interleave3(x, y, z))

    def _decode(self, index):
        return deinterleave3(gray_encode(index))


class RowMajor3D(Curve3D):
    """Lexicographic scan: index = ``x * side**2 + y * side + z``."""

    name = "rowmajor3d"

    def _encode(self, x, y, z):
        side = np.int64(self.side)
        return (x * side + y) * side + z

    def _decode(self, index):
        side = np.int64(self.side)
        return index // (side * side), (index // side) % side, index % side


class Snake3D(Curve3D):
    """Boustrophedon scan in 3D; consecutive cells are always neighbours."""

    name = "snake3d"
    continuous = True

    def _encode(self, x, y, z):
        side = np.int64(self.side)
        ypos = np.where(x & 1, side - 1 - y, y)
        # Parity of the number of completed z-sweeps decides the z direction.
        zpos = np.where((x * side + ypos) & 1, side - 1 - z, z)
        return (x * side + ypos) * side + zpos

    def _decode(self, index):
        side = np.int64(self.side)
        x = index // (side * side)
        ypos = (index // side) % side
        zpos = index % side
        y = np.where(x & 1, side - 1 - ypos, ypos)
        z = np.where((x * side + ypos) & 1, side - 1 - zpos, zpos)
        return x, y, z


def skilling_encode(order: int, x, y, z) -> IntArray:
    """Reference kernel: Skilling's transpose algorithm (2004), encode.

    Works on the "transpose" representation of the index — three words
    each holding every third bit — and applies one Gray-code/rotation
    sweep per bit level (``O(m * order)`` NumPy ops for ``m`` points).
    Retained as the derivation source and equivalence oracle for the
    table-driven :class:`Hilbert3D`.
    """
    if order == 0:
        return np.zeros(np.broadcast(x, y, z).shape, dtype=np.int64)
    n = 3
    X = [c.astype(np.int64, copy=True) for c in (x, y, z)]
    m = 1 << (order - 1)
    # Inverse undo of the rotation work
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            cond = (X[i] & q) != 0
            t = np.where(cond, 0, (X[0] ^ X[i]) & p)
            X[0] ^= np.where(cond, p, t)
            X[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, n):
        X[i] ^= X[i - 1]
    t = np.zeros_like(X[0])
    q = m
    while q > 1:
        t ^= np.where((X[n - 1] & q) != 0, q - 1, 0)
        q >>= 1
    for i in range(n):
        X[i] ^= t
    return interleave3(X[0], X[1], X[2])


def skilling_decode(order: int, index) -> tuple[IntArray, IntArray, IntArray]:
    """Reference kernel: Skilling's transpose algorithm, decode."""
    if order == 0:
        zero = np.zeros(np.shape(index), dtype=np.int64)
        return zero, zero.copy(), zero.copy()
    n = 3
    X = [w.astype(np.int64, copy=True) for w in deinterleave3(index)]
    top = 2 << (order - 1)
    # Gray decode by halving
    t = X[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        X[i] ^= X[i - 1]
    X[0] ^= t
    # Undo excess rotation work
    q = 2
    while q != top:
        p = q - 1
        for i in range(n - 1, -1, -1):
            cond = (X[i] & q) != 0
            t = np.where(cond, 0, (X[0] ^ X[i]) & p)
            X[0] ^= np.where(cond, p, t)
            X[i] ^= t
        q <<= 1
    return X[0], X[1], X[2]


#: Levels per table gather for the 3D automaton: 24 states x 8**4 chunk
#: entries keep each chunk table inside 1 MiB.
_RADIX_3D = 4


def _skilling_ordering(order: int) -> IntArray:
    x, y, z = skilling_decode(order, np.arange(1 << (3 * order), dtype=np.int64))
    return np.stack([x, y, z], axis=1)


@lru_cache(maxsize=1)
def hilbert3d_machine():
    """The 3D Hilbert automaton, derived once from Skilling's kernel."""
    from repro.sfc.statemachine import derive_machine

    return derive_machine(_skilling_ordering, ndim=3, radix=_RADIX_3D)


class Hilbert3D(Curve3D):
    """3D Hilbert curve as a table-driven state automaton.

    The transition tables are derived from (and bit-identical to)
    Skilling's transpose algorithm — see :func:`skilling_encode` /
    :func:`skilling_decode` for the retained reference kernels and
    :mod:`repro.sfc.statemachine` for the derivation.  Encoding
    interleaves the coordinates once and then consumes four bit levels
    per table gather instead of running one rotation sweep per level.
    """

    name = "hilbert3d"
    continuous = True

    def _encode(self, x, y, z):
        return hilbert3d_machine().encode_from_interleaved(
            interleave3(x, y, z), self._order
        )

    def _decode(self, index):
        code = hilbert3d_machine().decode_to_interleaved(index, self._order)
        return deinterleave3(code)


CURVES3D: Registry[Curve3D] = Registry("3D space-filling curve")
CURVES3D.register("hilbert3d", Hilbert3D, aliases=("hilbert",))
CURVES3D.register("morton3d", Morton3D, aliases=("zcurve", "morton", "z"))
CURVES3D.register("gray3d", Gray3D, aliases=("gray",))
CURVES3D.register("rowmajor3d", RowMajor3D, aliases=("rowmajor",))
CURVES3D.register("snake3d", Snake3D, aliases=("snake",))


def get_curve3d(name: str, order: int) -> Curve3D:
    """Instantiate the 3D curve registered under ``name``."""
    return CURVES3D.create(name, order)
