"""Z-curve (Morton order), §II-A.2 of the paper.

The index of a cell is obtained by interleaving the bits of its
coordinates — computed here with branch-free bit-spreading rather than
the recursive construction (the paper notes the bitwise route is the
computationally efficient one).
"""

from __future__ import annotations

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve
from repro.util.bits import deinterleave2, interleave2

__all__ = ["ZCurve"]


class ZCurve(SpaceFillingCurve):
    """Morton order: index = bit-interleave of ``(x, y)``."""

    name = "zcurve"
    continuous = False

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        return interleave2(x, y)

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        return deinterleave2(index)
