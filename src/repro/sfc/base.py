"""Abstract interface for discrete two-dimensional space-filling curves.

A discrete SFC of *order* :math:`k` is a bijection between the lattice
:math:`\\{0..2^k-1\\}^2` and the index range :math:`\\{0..4^k-1\\}`
(the paper numbers from 1; we use 0-based indices throughout, which only
shifts every index by a constant and affects no metric).

Concrete curves implement :meth:`encode` and :meth:`decode` as
vectorised NumPy kernels; everything else (index grids, orderings,
continuity checks) is provided here.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._typing import IntArray
from repro.util.validation import check_in_range, check_order

__all__ = ["SpaceFillingCurve"]


class SpaceFillingCurve(abc.ABC):
    """A discrete space-filling curve on a ``2**order`` square lattice.

    Parameters
    ----------
    order:
        The curve order :math:`k`; the lattice has side ``2**k`` and
        ``4**k`` cells.

    Notes
    -----
    The coordinate convention follows the paper's row-major description:
    the first coordinate ``x`` indexes columns and the second ``y``
    indexes rows; for the row-major curve the index is
    ``x * side + y`` so "the points in the first column receive the
    first ``2**k`` values".
    """

    #: Registry name of the curve (e.g. ``"hilbert"``); set by subclasses.
    name: str = ""
    #: Whether consecutive indices are always lattice neighbours
    #: (Manhattan distance 1).  True for Hilbert and snake.
    continuous: bool = False

    def __init__(self, order: int):
        self._order = check_order(order)

    # ------------------------------------------------------------------
    # core geometry
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The curve order :math:`k`."""
        return self._order

    @property
    def side(self) -> int:
        """Lattice side length ``2**order``."""
        return 1 << self._order

    @property
    def size(self) -> int:
        """Number of lattice cells ``4**order``."""
        return 1 << (2 * self._order)

    # ------------------------------------------------------------------
    # bijection
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        """Vectorised kernel mapping validated coordinates to indices."""

    @abc.abstractmethod
    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        """Vectorised kernel mapping validated indices to coordinates."""

    def encode(self, x, y) -> IntArray:
        """Map lattice coordinates to curve indices.

        Accepts scalars or broadcastable integer arrays with entries in
        ``[0, side)``; returns ``int64`` indices in ``[0, size)``.
        """
        scalar = np.isscalar(x) and np.isscalar(y)
        xa = check_in_range(x, 0, self.side, "x")
        ya = check_in_range(y, 0, self.side, "y")
        xa, ya = np.broadcast_arrays(xa, ya)
        out = self._encode(xa, ya)
        return int(out[()]) if scalar and out.ndim == 0 else out

    def decode(self, index) -> tuple[IntArray, IntArray]:
        """Map curve indices in ``[0, size)`` back to lattice coordinates."""
        scalar = np.isscalar(index)
        idx = check_in_range(index, 0, self.size, "index")
        x, y = self._decode(idx)
        if scalar and np.ndim(x) == 0:
            return int(x[()]), int(y[()])
        return x, y

    # ------------------------------------------------------------------
    # whole-lattice views
    # ------------------------------------------------------------------
    def index_grid(self) -> IntArray:
        """Return ``I`` with ``I[x, y]`` = curve index of cell ``(x, y)``.

        Shape is ``(side, side)``; a fresh array is returned each call.
        """
        s = self.side
        x, y = np.meshgrid(np.arange(s, dtype=np.int64), np.arange(s, dtype=np.int64), indexing="ij")
        return self._encode(x.ravel(), y.ravel()).reshape(s, s)

    def ordering(self) -> IntArray:
        """Return the cells in curve order as an ``(size, 2)`` array.

        Row ``i`` holds the ``(x, y)`` coordinates of the cell with curve
        index ``i``.
        """
        x, y = self._decode(np.arange(self.size, dtype=np.int64))
        return np.stack([x, y], axis=1)

    def step_lengths(self) -> IntArray:
        """Manhattan distances between consecutive cells along the curve.

        A curve is geometrically continuous exactly when every entry is 1;
        recursive but discontinuous orders (Z, Gray) exhibit longer jumps
        at quadrant boundaries.
        """
        pts = self.ordering()
        return np.abs(np.diff(pts, axis=0)).sum(axis=1)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self._order})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._order == other._order

    def __hash__(self) -> int:
        return hash((type(self), self._order))
