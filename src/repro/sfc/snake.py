"""Snake (boustrophedon) scan — the continuous analogue of row-major.

Xu & Tirthapura's clustering-optimality result (PODS'12) singles out the
"snake scan" as the simplest *continuous* SFC: it traverses column 0
upward, column 1 downward, and so on, so consecutive indices are always
lattice neighbours.  The paper cites this curve when discussing why
continuity alone does not determine metric quality; we include it as an
extension curve for those comparisons.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve

__all__ = ["SnakeCurve"]


class SnakeCurve(SpaceFillingCurve):
    """Boustrophedon scan: odd columns are traversed in reverse."""

    name = "snake"
    continuous = True

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        side = np.int64(self.side)
        ypos = np.where(x & 1, side - 1 - y, y)
        return x * side + ypos

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        side = np.int64(self.side)
        x, ypos = index // side, index % side
        return x, np.where(x & 1, side - 1 - ypos, ypos)
