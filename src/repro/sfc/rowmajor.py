"""Row-major (lexicographic) ordering — the paper's baseline curve.

Following §II-A.3 of the paper, "the points in the first column [are
assigned] the values :math:`\\{1..2^k\\}`"; with 0-based indices the cell
``(x, y)`` receives index ``x * side + y``.  Whether this is called
row- or column-major is purely an axis-naming convention; the metrics
are symmetric under transposition.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve

__all__ = ["RowMajorCurve"]


class RowMajorCurve(SpaceFillingCurve):
    """Lexicographic scan: index = ``x * side + y``."""

    name = "rowmajor"
    continuous = False  # jumps of length `side - 1` between columns

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        return x * np.int64(self.side) + y

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        side = np.int64(self.side)
        return index // side, index % side
