"""Table-driven state machines for self-similar space-filling curves.

Hilbert encode/decode is classically written as one rotation pass per
bit level — a handful of full-array ``np.where`` operations per level
(see the retained reference kernels in :mod:`repro.sfc.hilbert` and
:mod:`repro.sfc.curves3d`).  Holzmüller's neighbor-finding work
formulates the same curves as finite *state automata*: the orientation
of the sub-curve inside a quadrant/octant is one of finitely many
states, and one table lookup per level replaces the rotation algebra.

This module derives such automata **from the curve itself** instead of
hard-coding magic tables:

1. the order-1 ordering fixes the base octant sequence,
2. matching each octant block of the order-2 ordering against the
   signed axis permutations of the base sequence yields the child
   transforms,
3. closing the transform set under composition (BFS from the identity)
   enumerates the states, and
4. the derived machine is verified against the order-3 ordering before
   it is ever used.

Because the tables are derived from the reference kernels, the
table-driven encoder is bit-identical to them *by construction* (and
property-tested well beyond order 3).

The per-level tables are then composed into *radix chunks*: a chunk
table maps ``(state, r levels of octant bits)`` to ``(r levels of
digit bits, next state)`` in a **single gather**, so an order-12 encode
costs two gathers over the whole point array instead of twelve rotation
passes.  Chunk tables are built lazily per chunk size and cached on the
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations, product
from typing import Callable, Iterator

import numpy as np

from repro._typing import IntArray

__all__ = ["CurveStateMachine", "derive_machine"]

#: Transform = signed axis permutation ``out_bit[j] = in_bit[perm[j]] ^ flip[j]``
#: acting on occupancy codes (axis 0 supplies the highest code bit, matching
#: :func:`repro.util.bits.interleave2` / ``interleave3``).
_Transform = tuple[tuple[int, ...], tuple[int, ...]]


def _apply(transform: _Transform, code: int, ndim: int) -> int:
    perm, flip = transform
    out = 0
    for j in range(ndim):
        bit = (code >> (ndim - 1 - perm[j])) & 1
        out |= (bit ^ flip[j]) << (ndim - 1 - j)
    return out


def _compose(outer: _Transform, inner: _Transform) -> _Transform:
    """The transform applying ``inner`` first, then ``outer``."""
    p1, f1 = outer
    p2, f2 = inner
    perm = tuple(p2[p1[j]] for j in range(len(p1)))
    flip = tuple(f2[p1[j]] ^ f1[j] for j in range(len(p1)))
    return perm, flip


def _all_transforms(ndim: int) -> Iterator[_Transform]:
    for perm in permutations(range(ndim)):
        for flip in product((0, 1), repeat=ndim):
            yield perm, flip


def _codes_of(points: IntArray, ndim: int) -> list[int]:
    """Occupancy codes of ``(n, ndim)`` 0/1 coordinate rows (axis 0 high)."""
    out = []
    for row in points:
        code = 0
        for axis in range(ndim):
            code = (code << 1) | int(row[axis] & 1)
        out.append(code)
    return out


@dataclass
class CurveStateMachine:
    """A derived ``(state, octant) -> (digit, next state)`` automaton.

    ``digit_table``/``enc_next`` drive encoding (octant bits in, curve
    digit out), ``octant_table``/``dec_next`` drive decoding; all four
    have shape ``(num_states, 2**ndim)``.  ``radix`` is the default
    number of levels fused into one lookup chunk.
    """

    ndim: int
    num_states: int
    digit_table: IntArray
    enc_next: IntArray
    octant_table: IntArray
    dec_next: IntArray
    radix: int
    _chunk_cache: dict = field(default_factory=dict, repr=False)

    # number of bits reserved for the state id inside a combined table
    # entry ``(digits << state_bits) | next_state``
    @property
    def state_bits(self) -> int:
        return max(int(self.num_states - 1).bit_length(), 1)

    # -- chunked tables -----------------------------------------------------
    def _chunk_tables(self, size: int) -> tuple[IntArray, IntArray]:
        """Flat combined tables for a ``size``-level chunk.

        Returns ``(enc, dec)`` of shape ``(num_states << (ndim*size),)``:
        ``enc[(state << ndim*size) | octant_chunk]`` packs
        ``(digit_chunk << state_bits) | next_state`` and ``dec`` is the
        inverse direction.  Built by composing the level-1 machine with
        itself, so one gather consumes ``size`` levels at once.
        """
        cached = self._chunk_cache.get(size)
        if cached is not None:
            return cached
        fanout = 1 << self.ndim
        digits = self.digit_table.astype(np.int64)
        enc_next = self.enc_next.astype(np.int64)
        octants = self.octant_table.astype(np.int64)
        dec_next = self.dec_next.astype(np.int64)
        for _ in range(size - 1):
            width = digits.shape[1]  # fanout ** levels_so_far
            # prepend one more (most-significant) level in front of the chunk
            digits = (
                self.digit_table[:, :, None] * width + digits[self.enc_next]
            ).reshape(self.num_states, fanout * width)
            enc_next = enc_next[self.enc_next].reshape(self.num_states, fanout * width)
            octants = (
                self.octant_table[:, :, None] * width + octants[self.dec_next]
            ).reshape(self.num_states, fanout * width)
            dec_next = dec_next[self.dec_next].reshape(self.num_states, fanout * width)
        sbits = self.state_bits
        # flat, state-major layout: entry (state << ndim*size) | chunk
        enc = ((digits << sbits) | enc_next).reshape(-1)
        dec = ((octants << sbits) | dec_next).reshape(-1)
        tables = np.ascontiguousarray(enc), np.ascontiguousarray(dec)
        self._chunk_cache[size] = tables
        return tables

    def _chunks(self, order: int) -> list[tuple[int, int]]:
        """``(chunk_size, bit_shift)`` pairs, most significant first."""
        sizes = []
        remainder = order % self.radix
        if remainder:
            sizes.append(remainder)
        sizes.extend([self.radix] * (order // self.radix))
        out = []
        below = order
        for size in sizes:
            below -= size
            out.append((size, self.ndim * below))
        return out

    # -- vectorised drivers -------------------------------------------------
    def encode_from_interleaved(self, code: IntArray, order: int) -> IntArray:
        """Curve indices of Morton-interleaved octant codes (``int64``)."""
        code = np.asarray(code, dtype=np.int64)
        out = np.zeros(code.shape, dtype=np.int64)
        if order == 0:
            return out
        state = np.zeros(code.shape, dtype=np.int64)
        sbits = self.state_bits
        state_mask = np.int64((1 << sbits) - 1)
        for size, shift in self._chunks(order):
            bits = self.ndim * size
            enc, _ = self._chunk_tables(size)
            chunk = (code >> shift) & np.int64((1 << bits) - 1)
            packed = enc[(state << bits) | chunk]
            out = (out << bits) | (packed >> sbits)
            state = packed & state_mask
        return out

    def decode_to_interleaved(self, index: IntArray, order: int) -> IntArray:
        """Morton-interleaved octant codes of curve indices (``int64``)."""
        index = np.asarray(index, dtype=np.int64)
        out = np.zeros(index.shape, dtype=np.int64)
        if order == 0:
            return out
        state = np.zeros(index.shape, dtype=np.int64)
        sbits = self.state_bits
        state_mask = np.int64((1 << sbits) - 1)
        for size, shift in self._chunks(order):
            bits = self.ndim * size
            _, dec = self._chunk_tables(size)
            chunk = (index >> shift) & np.int64((1 << bits) - 1)
            packed = dec[(state << bits) | chunk]
            out = (out << bits) | (packed >> sbits)
            state = packed & state_mask
        return out

    # -- reference driver (scalar, for verification) ------------------------
    def _ordering(self, order: int) -> IntArray:
        """The full ordering generated by the machine (verification aid)."""
        codes = self.decode_to_interleaved(
            np.arange(1 << (self.ndim * order), dtype=np.int64), order
        )
        pts = np.zeros((codes.size, self.ndim), dtype=np.int64)
        for axis in range(self.ndim):
            shift = self.ndim - 1 - axis
            for level in range(order):
                pts[:, axis] |= ((codes >> (self.ndim * level + shift)) & 1) << level
        return pts


def derive_machine(
    ordering_fn: Callable[[int], IntArray], ndim: int, radix: int
) -> CurveStateMachine:
    """Derive the automaton of a strictly self-similar curve.

    ``ordering_fn(order)`` must return the ``(2**(ndim*order), ndim)``
    cell sequence of the reference implementation.  Raises
    :class:`ValueError` when the curve is not self-similar under signed
    axis permutations or the derived machine fails the order-3 check.
    """
    fanout = 1 << ndim
    seq1 = np.asarray(ordering_fn(1), dtype=np.int64)
    seq2 = np.asarray(ordering_fn(2), dtype=np.int64)
    base_codes = _codes_of(seq1, ndim)  # digit -> canonical octant code
    if sorted(base_codes) != list(range(fanout)):
        raise ValueError("order-1 ordering is not a bijection on the octants")

    candidates = list(_all_transforms(ndim))
    child: list[_Transform] = []
    for digit in range(fanout):
        block = seq2[digit * fanout : (digit + 1) * fanout]
        high = _codes_of(block >> 1, ndim)
        if any(h != base_codes[digit] for h in high):
            raise ValueError(f"digit {digit} block leaves its octant; not self-similar")
        low = _codes_of(block & 1, ndim)
        match = None
        for cand in candidates:
            if all(_apply(cand, base_codes[i], ndim) == low[i] for i in range(fanout)):
                match = cand
                break
        if match is None:
            raise ValueError(
                f"digit {digit} sub-block is no signed-permutation image of the "
                "base sequence; cannot derive a state machine"
            )
        child.append(match)

    # BFS closure of the child transforms under composition
    identity: _Transform = (tuple(range(ndim)), (0,) * ndim)
    state_ids: dict[_Transform, int] = {identity: 0}
    frontier = [identity]
    transitions: list[list[int]] = []  # state -> digit -> next state
    while frontier:
        nxt = []
        for transform in frontier:
            row = []
            for digit in range(fanout):
                composed = _compose(transform, child[digit])
                if composed not in state_ids:
                    state_ids[composed] = len(state_ids)
                    nxt.append(composed)
                row.append(state_ids[composed])
            transitions.append(row)
        frontier = nxt

    num_states = len(state_ids)
    digit_table = np.zeros((num_states, fanout), dtype=np.int64)
    enc_next = np.zeros((num_states, fanout), dtype=np.int64)
    octant_table = np.zeros((num_states, fanout), dtype=np.int64)
    dec_next = np.zeros((num_states, fanout), dtype=np.int64)
    for transform, sid in state_ids.items():
        for digit in range(fanout):
            octant = _apply(transform, base_codes[digit], ndim)
            octant_table[sid, digit] = octant
            digit_table[sid, octant] = digit
            nxt_id = transitions[sid][digit]
            dec_next[sid, digit] = nxt_id
            enc_next[sid, octant] = nxt_id

    machine = CurveStateMachine(
        ndim=ndim,
        num_states=num_states,
        digit_table=digit_table,
        enc_next=enc_next,
        octant_table=octant_table,
        dec_next=dec_next,
        radix=radix,
    )
    if not np.array_equal(machine._ordering(3), np.asarray(ordering_fn(3))):
        raise ValueError("derived state machine disagrees with the reference at order 3")
    return machine
