"""Peano curve (radix-3), the original 1890 space-filling construction.

The Peano curve tiles the plane with 3x3 blocks traversed in a
serpentine order, so an order-:math:`k` curve covers a ``3**k`` x
``3**k`` lattice with ``9**k`` cells — the one curve in the registry
whose lattice side is *not* a power of two.  Like the Hilbert curve it
is geometrically continuous (every step has Manhattan length 1), which
makes it a useful second datapoint for the continuity ablations.

The kernels implement Peano's digit construction directly: writing the
index in base 3 as ``a_1 a_2 ... a_{2k}`` (most significant first) and
pairing the digits per level, the coordinate digits are the index
digits *complemented* (``d -> 2 - d``) whenever the running sum of the
opposite axis's preceding index digits is odd:

* ``x_j = flip(a_{2j-1})`` iff ``a_2 + a_4 + ... + a_{2j-2}`` is odd,
* ``y_j = flip(a_{2j})``  iff ``a_1 + a_3 + ... + a_{2j-1}`` is odd.

Encoding inverts the construction level by level (``flip`` is an
involution and both directions see the same running sums of *index*
digits).  ``x`` is the slow axis, matching the package's row-major
convention.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.sfc.base import SpaceFillingCurve
from repro.util.validation import check_order

__all__ = ["PeanoCurve", "PEANO_MAX_ORDER"]

#: Largest supported Peano order: ``9**19 < 2**63 <= 9**20``, so higher
#: orders would overflow the int64 index space.
PEANO_MAX_ORDER = 19


class PeanoCurve(SpaceFillingCurve):
    """Peano order: radix-3 serpentine recursion on a ``3**order`` lattice."""

    name = "peano"
    continuous = True

    def __init__(self, order: int):
        check_order(order, max_order=PEANO_MAX_ORDER)
        super().__init__(order)

    @property
    def side(self) -> int:
        """Lattice side length ``3**order`` (radix 3, not 2)."""
        return 3**self._order

    @property
    def size(self) -> int:
        """Number of lattice cells ``9**order``."""
        return 9**self._order

    def _encode(self, x: IntArray, y: IntArray) -> IntArray:
        k = self._order
        index = np.zeros_like(x)
        sum_p = np.zeros_like(x)
        sum_q = np.zeros_like(x)
        for j in range(k):
            scale = 3 ** (k - 1 - j)
            xd = (x // scale) % 3
            yd = (y // scale) % 3
            p = np.where(sum_q & 1, 2 - xd, xd)
            sum_p += p
            q = np.where(sum_p & 1, 2 - yd, yd)
            sum_q += q
            index = index * 9 + p * 3 + q
        return index

    def _decode(self, index: IntArray) -> tuple[IntArray, IntArray]:
        k = self._order
        x = np.zeros_like(index)
        y = np.zeros_like(index)
        sum_p = np.zeros_like(index)
        sum_q = np.zeros_like(index)
        for j in range(k):
            pair = (index // 9 ** (k - 1 - j)) % 9
            p = pair // 3
            q = pair % 3
            xd = np.where(sum_q & 1, 2 - p, p)
            sum_p += p
            yd = np.where(sum_p & 1, 2 - q, q)
            sum_q += q
            x = x * 3 + xd
            y = y * 3 + yd
        return x, y
