"""Space-filling curves: the paper's four study curves plus extensions.

Quick use::

    from repro.sfc import get_curve

    h = get_curve("hilbert", order=5)   # 32 x 32 lattice
    idx = h.encode([0, 3], [1, 7])      # vectorised coordinates -> indices
    x, y = h.decode(idx)                # and back
"""

from repro.sfc.base import SpaceFillingCurve
from repro.sfc.curves3d import (
    CURVES3D,
    Curve3D,
    Gray3D,
    Hilbert3D,
    Morton3D,
    RowMajor3D,
    Snake3D,
    get_curve3d,
)
from repro.sfc.gray import GrayCurve
from repro.sfc.hilbert import HilbertCurve
from repro.sfc.peano import PeanoCurve
from repro.sfc.registry import ALL_CURVES, CURVES, PAPER_CURVES, curve_names, get_curve
from repro.sfc.rowmajor import RowMajorCurve
from repro.sfc.snake import SnakeCurve
from repro.sfc.zcurve import ZCurve

__all__ = [
    "SpaceFillingCurve",
    "HilbertCurve",
    "ZCurve",
    "GrayCurve",
    "RowMajorCurve",
    "SnakeCurve",
    "PeanoCurve",
    "CURVES",
    "PAPER_CURVES",
    "ALL_CURVES",
    "get_curve",
    "curve_names",
    "Curve3D",
    "Hilbert3D",
    "Morton3D",
    "Gray3D",
    "RowMajor3D",
    "Snake3D",
    "CURVES3D",
    "get_curve3d",
]
