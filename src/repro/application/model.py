"""Composable application communication models (§VII made concrete).

§VII of the paper sketches the workflow: "the ACD value can be
calculated for each type of communication, point-to-point, all-to-all,
etc., and these can be combined to predict the performance of the
implementation."  :class:`ApplicationModel` implements exactly that
composition: phases (event multisets with per-timestep repeat counts)
are registered once, then evaluated against any candidate network, and
:func:`recommend_configuration` ranks candidate {topology,
processor-order} configurations by the predicted per-timestep cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.metrics.acd import _DEFAULT_CACHE, ACDResult, compute_acd
from repro.metrics.base import MetricValue
from repro.metrics.registry import METRICS, get_metric
from repro.topology.base import Topology
from repro.topology.cache import TopologyCache

__all__ = ["ApplicationPhase", "ApplicationReport", "ApplicationModel", "recommend_configuration"]


@dataclass(frozen=True)
class ApplicationPhase:
    """One communication phase of an application.

    Attributes
    ----------
    name:
        Label used in reports.
    events:
        The phase's communication multiset (for one execution).
    repeats:
        How many times the phase runs per timestep.
    """

    name: str
    events: CommunicationEvents
    repeats: int = 1

    def __post_init__(self):
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


@dataclass(frozen=True)
class ApplicationReport:
    """Per-phase and pooled objective value of an application on one network.

    ``phases`` holds :class:`~repro.metrics.acd.ACDResult` values for
    the default ``"acd"`` objective and
    :class:`~repro.metrics.base.MetricValue` aggregates for any other
    communication metric; both pool with exact integer arithmetic.
    """

    phases: dict[str, ACDResult] | dict[str, MetricValue]
    repeats: dict[str, int]
    objective: str = "acd"

    @property
    def total(self) -> ACDResult | MetricValue:
        """All phases pooled, each weighted by its repeat count."""
        if self.objective == "acd":
            pooled = ACDResult(0, 0)
            for name, result in self.phases.items():
                r = self.repeats[name]
                pooled = pooled.merged(
                    ACDResult(result.total_distance * r, result.count * r)
                )
            return pooled
        value = MetricValue(0, 0)
        for name, result in self.phases.items():
            value = value.merged(result.scaled(self.repeats[name]))
        return value

    @property
    def cost_per_timestep(self) -> int:
        """Total objective cost per timestep — the quantity to minimise."""
        total = self.total
        return total.total_distance if self.objective == "acd" else total.total

    @property
    def total_distance_per_timestep(self) -> int:
        """Total hop-weight moved per timestep (the ACD spelling of
        :attr:`cost_per_timestep`)."""
        return self.cost_per_timestep


class ApplicationModel:
    """A named collection of communication phases.

    Phases can be added as ready-made event multisets or as factories
    taking the topology (so rank-count-dependent patterns, e.g. "an
    allreduce over all ranks", adapt to each candidate network).
    """

    def __init__(self, name: str = "application"):
        self.name = name
        self._phases: list[tuple[str, object, int]] = []

    def add_phase(
        self,
        name: str,
        events: CommunicationEvents | Callable[[Topology], CommunicationEvents],
        repeats: int = 1,
    ) -> "ApplicationModel":
        """Register a phase; returns ``self`` for chaining."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if any(existing == name for existing, _, _ in self._phases):
            raise ValueError(f"phase {name!r} already registered")
        self._phases.append((name, events, repeats))
        return self

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Names of the registered phases, in registration order."""
        return tuple(name for name, _, _ in self._phases)

    def evaluate(
        self,
        topology: Topology,
        *,
        objective: str = "acd",
        cache: TopologyCache | None | str = _DEFAULT_CACHE,
    ) -> ApplicationReport:
        """Per-phase objective value of the whole application on one network.

        ``objective`` names any registered *communication* metric
        (:mod:`repro.metrics.registry`); the default is the paper's
        ACD.  ``cache`` is passed through to :func:`~repro.metrics.acd.
        compute_acd` (default: the shared process-wide topology cache;
        ``None`` disables caching).  Non-ACD objectives evaluate the
        compacted phase histograms through the metric protocol, which
        always uses the shared cache.
        """
        if not self._phases:
            raise ValueError("no phases registered")
        objective = METRICS.canonical(objective)
        if objective == "acd":
            metric = None
        else:
            metric = get_metric(objective)
            if metric.kind != "communication":
                raise ValueError(
                    f"objective {objective!r} is a {metric.kind} metric; "
                    "application models need a communication metric"
                )
        results: dict[str, Any] = {}
        repeats: dict[str, int] = {}
        for name, events, reps in self._phases:
            ev = events(topology) if callable(events) else events
            if metric is None:
                results[name] = compute_acd(ev, topology, cache=cache)
            else:
                if isinstance(ev, PairHistogram):
                    histogram = ev
                else:
                    histogram = ev.compact(topology.num_processors)
                results[name] = metric.evaluate(histogram, topology)
            repeats[name] = reps
        return ApplicationReport(phases=results, repeats=repeats, objective=objective)


def recommend_configuration(
    model: ApplicationModel,
    candidates: Mapping[str, Topology] | Iterable[tuple[str, Topology]],
    *,
    objective: str = "acd",
    cache: TopologyCache | None | str = _DEFAULT_CACHE,
) -> list[tuple[str, ApplicationReport]]:
    """Rank candidate networks by predicted per-timestep communication cost.

    Returns ``(label, report)`` pairs sorted best-first by the chosen
    ``objective``'s total cost — the §VII selection rule ("the curve
    that gives rise to the lowest ACD value can then be selected"),
    generalised to any registered communication metric.  ``cache`` is
    passed through to every evaluation, like
    :func:`~repro.metrics.acd.acd_breakdown`.

    An empty ``candidates`` iterable is rejected *before* any
    evaluation runs — an exhausted generator fails fast instead of
    surfacing as a late, confusing error.
    """
    items = list(candidates.items() if isinstance(candidates, Mapping) else candidates)
    if not items:
        raise ValueError("no candidate configurations supplied")
    ranked = [
        (label, model.evaluate(topo, objective=objective, cache=cache))
        for label, topo in items
    ]
    ranked.sort(key=lambda pair: pair[1].cost_per_timestep)
    return ranked
