"""Composable application communication models (§VII of the paper)."""

from repro.application.model import (
    ApplicationModel,
    ApplicationPhase,
    ApplicationReport,
    recommend_configuration,
)

__all__ = [
    "ApplicationModel",
    "ApplicationPhase",
    "ApplicationReport",
    "recommend_configuration",
]
