"""Particle input distributions (uniform, bivariate normal, exponential)."""

from repro.distributions.astrophysical import ClusteredDistribution, PlummerDistribution
from repro.distributions.base import ParticleDistribution, Particles
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.normal import NormalDistribution
from repro.distributions.registry import (
    DISTRIBUTIONS,
    PAPER_DISTRIBUTIONS,
    get_distribution,
)
from repro.distributions.three_d import (
    DISTRIBUTIONS3D,
    Exponential3D,
    Normal3D,
    ParticleDistribution3D,
    Particles3D,
    Uniform3D,
    get_distribution3d,
)
from repro.distributions.uniform import UniformDistribution

__all__ = [
    "Particles",
    "ParticleDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "ExponentialDistribution",
    "PlummerDistribution",
    "ClusteredDistribution",
    "DISTRIBUTIONS",
    "PAPER_DISTRIBUTIONS",
    "get_distribution",
    "Particles3D",
    "ParticleDistribution3D",
    "Uniform3D",
    "Normal3D",
    "Exponential3D",
    "DISTRIBUTIONS3D",
    "get_distribution3d",
]
