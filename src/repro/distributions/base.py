"""Particle sets and the distribution interface.

§II-C of the paper populates problems by drawing particles from a
probability distribution over a ``2**k`` square lattice, under the FMM
model's assumption that "a cell at the finest resolution may contain at
most one particle" (§III).  Distributions therefore perform batch
*rejection resampling*: candidate cells are drawn from the underlying
continuous law until ``n`` distinct lattice cells are occupied.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.errors import SamplingError
from repro.util.rng import as_generator
from repro.util.validation import as_index_array, check_nonnegative, check_order

__all__ = ["Particles", "ParticleDistribution"]


def _check_on_lattice(arr, side: int, order: int, name: str) -> IntArray:
    """Validate lattice coordinates with a bounds message naming the fix.

    Out-of-lattice coordinates would silently produce garbage curve keys
    (the encoders mask to ``order`` bits), so they are rejected here at
    construction.  Positions produced by motion must be folded in-bounds
    first — :func:`repro.dynamics.boundary.reflect_positions` is the
    documented mechanism.
    """
    a = as_index_array(arr, name)
    if a.size:
        mn, mx = int(a.min()), int(a.max())
        if mn < 0 or mx >= side:
            raise ValueError(
                f"{name} coordinates must lie on the order-{order} lattice "
                f"[0, {side}), got range [{mn}, {mx}]; fold moving particles "
                "in-bounds first (repro.dynamics.boundary.reflect_positions)"
            )
    return a


@dataclass(frozen=True)
class Particles:
    """A set of particles on distinct cells of a ``2**order`` lattice.

    Attributes
    ----------
    x, y:
        Cell coordinates, one entry per particle (all pairs distinct).
    order:
        Lattice order ``k`` (side ``2**k``).
    """

    x: IntArray
    y: IntArray
    order: int

    def __post_init__(self):
        k = check_order(self.order)
        side = 1 << k
        object.__setattr__(self, "x", _check_on_lattice(self.x, side, k, "x"))
        object.__setattr__(self, "y", _check_on_lattice(self.y, side, k, "y"))
        if self.x.shape != self.y.shape or self.x.ndim != 1:
            raise ValueError("x and y must be equal-length 1D arrays")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def side(self) -> int:
        """Lattice side length ``2**order``."""
        return 1 << self.order

    def cell_codes(self) -> IntArray:
        """Row-major cell ids ``x * side + y`` (unique per particle)."""
        return self.x * np.int64(self.side) + self.y

    def validate_distinct(self) -> None:
        """Raise if two particles share a cell (model invariant)."""
        codes = self.cell_codes()
        if np.unique(codes).size != codes.size:
            raise ValueError("particles must occupy distinct cells")


class ParticleDistribution(abc.ABC):
    """A 2D probability law from which particle positions are drawn."""

    #: Registry name of the distribution; set by subclasses.
    name: str = ""

    @abc.abstractmethod
    def _sample_batch(
        self, m: int, side: int, rng: np.random.Generator
    ) -> tuple[IntArray, IntArray]:
        """Draw ``m`` candidate cells (possibly with repeats/rejects)."""

    def sample(
        self,
        n: int,
        order: int,
        rng: SeedLike = None,
        *,
        max_batches: int = 64,
    ) -> Particles:
        """Draw ``n`` particles on distinct cells of a ``2**order`` lattice.

        Candidates are drawn in batches and deduplicated until ``n``
        distinct occupied cells are accumulated.  Raises
        :class:`~repro.errors.SamplingError` if ``max_batches`` rounds
        cannot reach ``n`` distinct cells, which signals that the law is
        too concentrated for the requested density.
        """
        n = check_nonnegative(n, "n")
        k = check_order(order)
        side = 1 << k
        if n > side * side:
            raise SamplingError(
                f"cannot place {n} distinct particles on a {side}x{side} lattice"
            )
        gen = as_generator(rng)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return Particles(empty, empty.copy(), k)

        seen: IntArray = np.empty(0, dtype=np.int64)
        batch = max(2 * n, 1024)
        for _ in range(max_batches):
            bx, by = self._sample_batch(batch, side, gen)
            codes = bx * np.int64(side) + by
            seen = np.unique(np.concatenate([seen, codes]))
            if seen.size >= n:
                chosen = gen.choice(seen, size=n, replace=False)
                return Particles(chosen // side, chosen % side, k)
            batch *= 2
        raise SamplingError(
            f"{type(self).__name__} produced only {seen.size} distinct cells "
            f"after {max_batches} batches (requested {n})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
