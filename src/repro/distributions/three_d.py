"""Three-dimensional particle sets and distributions (extension).

The 3D counterparts of :mod:`repro.distributions.base` for the paper's
future-work item (ii): uniform, centred-normal and origin-skewed
exponential laws on a ``2**k`` cube lattice, with the same at-most-one-
particle-per-cell occupancy discipline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.errors import SamplingError
from repro.util.bits import MAX_BITS_3D
from repro.util.registry import Registry
from repro.util.rng import as_generator
from repro.util.validation import check_in_range, check_nonnegative, check_order

__all__ = [
    "Particles3D",
    "ParticleDistribution3D",
    "Uniform3D",
    "Normal3D",
    "Exponential3D",
    "DISTRIBUTIONS3D",
    "get_distribution3d",
]


@dataclass(frozen=True)
class Particles3D:
    """A set of particles on distinct cells of a ``2**order`` cube lattice."""

    x: IntArray
    y: IntArray
    z: IntArray
    order: int

    def __post_init__(self):
        k = check_order(self.order, max_order=MAX_BITS_3D)
        side = 1 << k
        object.__setattr__(self, "x", check_in_range(self.x, 0, side, "x"))
        object.__setattr__(self, "y", check_in_range(self.y, 0, side, "y"))
        object.__setattr__(self, "z", check_in_range(self.z, 0, side, "z"))
        if not (self.x.shape == self.y.shape == self.z.shape) or self.x.ndim != 1:
            raise ValueError("x, y and z must be equal-length 1D arrays")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def side(self) -> int:
        """Lattice side length ``2**order``."""
        return 1 << self.order

    def cell_codes(self) -> IntArray:
        """Lexicographic cell ids (unique per particle)."""
        side = np.int64(self.side)
        return (self.x * side + self.y) * side + self.z

    def validate_distinct(self) -> None:
        """Raise if two particles share a cell (model invariant)."""
        codes = self.cell_codes()
        if np.unique(codes).size != codes.size:
            raise ValueError("particles must occupy distinct cells")


class ParticleDistribution3D(abc.ABC):
    """A 3D probability law from which particle positions are drawn."""

    name: str = ""

    @abc.abstractmethod
    def _sample_batch(
        self, m: int, side: int, rng: np.random.Generator
    ) -> tuple[IntArray, IntArray, IntArray]:
        """Draw ``m`` candidate cells (possibly with repeats/rejects)."""

    def sample(
        self, n: int, order: int, rng: SeedLike = None, *, max_batches: int = 64
    ) -> Particles3D:
        """Draw ``n`` particles on distinct cells of a ``2**order`` cube."""
        n = check_nonnegative(n, "n")
        k = check_order(order, max_order=MAX_BITS_3D)
        side = 1 << k
        if n > side**3:
            raise SamplingError(
                f"cannot place {n} distinct particles on a {side}^3 lattice"
            )
        gen = as_generator(rng)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return Particles3D(empty, empty.copy(), empty.copy(), k)
        seen: IntArray = np.empty(0, dtype=np.int64)
        batch = max(2 * n, 1024)
        s64 = np.int64(side)
        for _ in range(max_batches):
            bx, by, bz = self._sample_batch(batch, side, gen)
            codes = (bx * s64 + by) * s64 + bz
            seen = np.unique(np.concatenate([seen, codes]))
            if seen.size >= n:
                chosen = gen.choice(seen, size=n, replace=False)
                return Particles3D(
                    chosen // (s64 * s64), (chosen // s64) % s64, chosen % s64, k
                )
            batch *= 2
        raise SamplingError(
            f"{type(self).__name__} produced only {seen.size} distinct cells "
            f"after {max_batches} batches (requested {n})"
        )


class Uniform3D(ParticleDistribution3D):
    """Uniformly random occupied cells."""

    name = "uniform3d"

    def _sample_batch(self, m, side, rng):
        return (
            rng.integers(0, side, size=m, dtype=np.int64),
            rng.integers(0, side, size=m, dtype=np.int64),
            rng.integers(0, side, size=m, dtype=np.int64),
        )


class Normal3D(ParticleDistribution3D):
    """Symmetric trivariate normal centred on the cube midpoint."""

    name = "normal3d"

    def __init__(self, sigma_fraction: float = 1 / 8):
        if not 0 < sigma_fraction:
            raise ValueError(f"sigma_fraction must be positive, got {sigma_fraction}")
        self.sigma_fraction = float(sigma_fraction)

    def _sample_batch(self, m, side, rng):
        centre = (side - 1) / 2.0
        sigma = side * self.sigma_fraction
        coords = [
            np.rint(rng.normal(centre, sigma, size=m)).astype(np.int64)
            for _ in range(3)
        ]
        keep = np.ones(m, dtype=bool)
        for c in coords:
            keep &= (c >= 0) & (c < side)
        return coords[0][keep], coords[1][keep], coords[2][keep]


class Exponential3D(ParticleDistribution3D):
    """Independent exponential coordinates, skewed toward the origin corner."""

    name = "exponential3d"

    def __init__(self, scale_fraction: float = 1 / 4):
        if not 0 < scale_fraction:
            raise ValueError(f"scale_fraction must be positive, got {scale_fraction}")
        self.scale_fraction = float(scale_fraction)

    def _sample_batch(self, m, side, rng):
        scale = side * self.scale_fraction
        coords = [
            np.floor(rng.exponential(scale, size=m)).astype(np.int64) for _ in range(3)
        ]
        keep = np.ones(m, dtype=bool)
        for c in coords:
            keep &= c < side
        return coords[0][keep], coords[1][keep], coords[2][keep]


DISTRIBUTIONS3D: Registry[ParticleDistribution3D] = Registry("3D distribution")
DISTRIBUTIONS3D.register("uniform3d", Uniform3D, aliases=("uniform",))
DISTRIBUTIONS3D.register("normal3d", Normal3D, aliases=("normal", "gaussian"))
DISTRIBUTIONS3D.register("exponential3d", Exponential3D, aliases=("exponential", "exp"))


def get_distribution3d(name: str, **kwargs) -> ParticleDistribution3D:
    """Instantiate the 3D distribution registered under ``name``."""
    return DISTRIBUTIONS3D.create(name, **kwargs)
