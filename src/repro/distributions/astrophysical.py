"""Realistic n-body input distributions (extension).

The paper's three laws (uniform / normal / exponential) are synthetic
stand-ins for "realistic" particle configurations; actual FMM
evaluations (e.g. Greengard–Rokhlin test problems, cosmology codes) use
astrophysically motivated inputs.  Two classics are provided so the ACD
studies can be repeated on them:

* :class:`PlummerDistribution` — the projected Plummer (1911) sphere,
  the standard stellar-cluster model: surface density
  :math:`\\Sigma(R) \\propto (1 + R^2/a^2)^{-2}`, sampled exactly by
  inverse transform (enclosed-mass fraction ``m(R) = R²/(R²+a²)``).
* :class:`ClusteredDistribution` — a mixture of compact Gaussian blobs
  with random centres, modelling multi-halo / multi-cluster inputs.

Both register with the distribution registry, so every experiment
runner accepts them by name (``"plummer"``, ``"clustered"``).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ParticleDistribution
from repro.distributions.registry import DISTRIBUTIONS

__all__ = ["PlummerDistribution", "ClusteredDistribution"]


class PlummerDistribution(ParticleDistribution):
    """Projected Plummer sphere centred on the lattice midpoint.

    Parameters
    ----------
    scale_fraction:
        Plummer core radius ``a`` as a fraction of the lattice side
        (default 1/16 — a compact core with the model's heavy
        :math:`R^{-3}` tails).
    """

    name = "plummer"

    def __init__(self, scale_fraction: float = 1 / 16):
        if not 0 < scale_fraction:
            raise ValueError(f"scale_fraction must be positive, got {scale_fraction}")
        self.scale_fraction = float(scale_fraction)

    def _sample_batch(self, m, side, rng):
        centre = (side - 1) / 2.0
        a = side * self.scale_fraction
        u = rng.random(m)
        # inverse transform of the projected enclosed-mass fraction
        radius = a * np.sqrt(u / (1.0 - u))
        theta = rng.random(m) * 2.0 * np.pi
        x = np.rint(centre + radius * np.cos(theta)).astype(np.int64)
        y = np.rint(centre + radius * np.sin(theta)).astype(np.int64)
        keep = (x >= 0) & (x < side) & (y >= 0) & (y < side)
        return x[keep], y[keep]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlummerDistribution(scale_fraction={self.scale_fraction})"


class ClusteredDistribution(ParticleDistribution):
    """A mixture of equally weighted Gaussian blobs at random centres.

    Parameters
    ----------
    num_clusters:
        Number of blobs (default 8).
    sigma_fraction:
        Per-blob standard deviation as a fraction of the side (default
        1/32 — compact, well-separated clusters).
    margin_fraction:
        Centres are drawn uniformly inside the lattice, inset by this
        fraction per edge so blobs rarely spill outside.
    """

    name = "clustered"

    def __init__(
        self,
        num_clusters: int = 8,
        sigma_fraction: float = 1 / 32,
        margin_fraction: float = 1 / 8,
    ):
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if not 0 < sigma_fraction:
            raise ValueError(f"sigma_fraction must be positive, got {sigma_fraction}")
        if not 0 <= margin_fraction < 0.5:
            raise ValueError(f"margin_fraction must be in [0, 0.5), got {margin_fraction}")
        self.num_clusters = int(num_clusters)
        self.sigma_fraction = float(sigma_fraction)
        self.margin_fraction = float(margin_fraction)
        self._centres: np.ndarray | None = None

    def _sample_batch(self, m, side, rng):
        if self._centres is None:
            # centres are drawn once per sampling session from the same
            # generator, keeping the whole draw reproducible per seed
            lo = side * self.margin_fraction
            hi = side * (1.0 - self.margin_fraction)
            self._centres = rng.uniform(lo, hi, size=(self.num_clusters, 2))
        sigma = side * self.sigma_fraction
        which = rng.integers(0, self.num_clusters, size=m)
        cx = self._centres[which, 0]
        cy = self._centres[which, 1]
        x = np.rint(rng.normal(cx, sigma)).astype(np.int64)
        y = np.rint(rng.normal(cy, sigma)).astype(np.int64)
        keep = (x >= 0) & (x < side) & (y >= 0) & (y < side)
        return x[keep], y[keep]

    def sample(self, n, order, rng=None, *, max_batches: int = 64):
        # fresh centres for every sampling call (not shared across calls)
        self._centres = None
        return super().sample(n, order, rng, max_batches=max_batches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusteredDistribution(num_clusters={self.num_clusters}, "
            f"sigma_fraction={self.sigma_fraction})"
        )


DISTRIBUTIONS.register("plummer", PlummerDistribution)
DISTRIBUTIONS.register("clustered", ClusteredDistribution, aliases=("multi-cluster",))
