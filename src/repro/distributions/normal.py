"""Bivariate normal particle distribution (paper Fig. 2(b)).

"To model centrally distributed problems we used a bivariate normal
distribution with symmetric axes" — both coordinates are independent
normals centred on the lattice midpoint.  The paper does not state the
spread; we default to ``sigma = side * sigma_fraction`` with
``sigma_fraction = 1/8``, which reproduces the visible central
clustering of Fig. 2(b) while keeping a quarter-million distinct cells
feasible on the 1024-lattice of Tables I/II.  Out-of-range draws are
rejected (not clipped) so no probability mass piles up on the border.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ParticleDistribution

__all__ = ["NormalDistribution"]


class NormalDistribution(ParticleDistribution):
    """Symmetric bivariate normal centred on the lattice midpoint."""

    name = "normal"

    def __init__(self, sigma_fraction: float = 1 / 8):
        if not 0 < sigma_fraction:
            raise ValueError(f"sigma_fraction must be positive, got {sigma_fraction}")
        self.sigma_fraction = float(sigma_fraction)

    def _sample_batch(self, m, side, rng):
        centre = (side - 1) / 2.0
        sigma = side * self.sigma_fraction
        x = np.rint(rng.normal(centre, sigma, size=m)).astype(np.int64)
        y = np.rint(rng.normal(centre, sigma, size=m)).astype(np.int64)
        keep = (x >= 0) & (x < side) & (y >= 0) & (y < side)
        return x[keep], y[keep]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NormalDistribution(sigma_fraction={self.sigma_fraction})"
