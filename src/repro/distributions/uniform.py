"""Uniform particle distribution (paper Fig. 2(a)).

Every lattice cell is equally likely to be occupied.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ParticleDistribution

__all__ = ["UniformDistribution"]


class UniformDistribution(ParticleDistribution):
    """Uniformly random occupied cells."""

    name = "uniform"

    def _sample_batch(self, m, side, rng):
        x = rng.integers(0, side, size=m, dtype=np.int64)
        y = rng.integers(0, side, size=m, dtype=np.int64)
        return x, y
