"""Exponential particle distribution (paper Fig. 2(c)).

"In order to model asymmetric or skewed distributions, we selected
particles with an exponential distribution, which clusters the selected
values in a single quadrant."  Both coordinates are independent
exponentials anchored at the origin corner with scale
``side * scale_fraction`` (default 1/4, matching the single-quadrant
concentration of Fig. 2(c)); draws beyond the lattice are rejected.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ParticleDistribution

__all__ = ["ExponentialDistribution"]


class ExponentialDistribution(ParticleDistribution):
    """Independent exponential coordinates, skewed toward the origin corner."""

    name = "exponential"

    def __init__(self, scale_fraction: float = 1 / 4):
        if not 0 < scale_fraction:
            raise ValueError(f"scale_fraction must be positive, got {scale_fraction}")
        self.scale_fraction = float(scale_fraction)

    def _sample_batch(self, m, side, rng):
        scale = side * self.scale_fraction
        x = np.floor(rng.exponential(scale, size=m)).astype(np.int64)
        y = np.floor(rng.exponential(scale, size=m)).astype(np.int64)
        keep = (x < side) & (y < side)
        return x[keep], y[keep]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialDistribution(scale_fraction={self.scale_fraction})"
