"""Registry of the study's input distributions."""

from __future__ import annotations

from repro.distributions.base import ParticleDistribution
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.normal import NormalDistribution
from repro.distributions.uniform import UniformDistribution
from repro.util.registry import Registry

__all__ = ["DISTRIBUTIONS", "PAPER_DISTRIBUTIONS", "get_distribution"]

DISTRIBUTIONS: Registry[ParticleDistribution] = Registry("distribution")
DISTRIBUTIONS.register("uniform", UniformDistribution)
DISTRIBUTIONS.register("normal", NormalDistribution, aliases=("gaussian", "bivariate normal"))
DISTRIBUTIONS.register("exponential", ExponentialDistribution, aliases=("exp",))

#: The three distributions evaluated in the paper, in its table order.
PAPER_DISTRIBUTIONS: tuple[str, ...] = ("uniform", "normal", "exponential")


def get_distribution(name: str, **kwargs) -> ParticleDistribution:
    """Instantiate the distribution registered under ``name``."""
    return DISTRIBUTIONS.create(name, **kwargs)
