"""Closed-form expected distances between uniformly random rank pairs.

These serve two purposes: they are the *baseline* against which an ACD
value should be judged (an SFC assignment only helps if it beats random
placement), and they cross-validate every distance kernel in the
test-suite against independent combinatorial derivations.

All formulas are exact expectations over independent uniform pairs
``(a, b)`` — including ``a == b`` — matching
:meth:`repro.topology.Topology.mean_pairwise_distance`.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.bus import BusTopology
from repro.topology.grid3d import Mesh3DTopology, OctreeTopology, Torus3DTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.mesh import MeshTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology

__all__ = ["expected_random_pair_distance"]


def _line_mean(n: int) -> float:
    """E|a - b| for independent uniform a, b on {0..n-1}: (n^2 - 1) / (3n)."""
    return (n * n - 1) / (3 * n)


def _ring_mean(n: int) -> float:
    """E[min(d, n - d)] on a cycle of n nodes.

    For even ``n`` each node sees distances ``0, 1..n/2-1`` twice and
    ``n/2`` once; for odd ``n`` distances ``1..(n-1)/2`` twice.
    """
    if n % 2 == 0:
        half = n // 2
        return (2 * (half - 1) * half // 2 + half) / n
    half = (n - 1) // 2
    return (2 * half * (half + 1) // 2) / n


def _tree_mean(height: int, arity: int, hop_factor: int) -> float:
    """Expected switch-tree distance: hop_factor * E[height - lca_depth].

    ``P(common prefix >= j) = arity^-j``, so
    ``E[height - common] = height - sum_{j=1..height} arity^-j``.
    """
    geo = (1 - arity ** (-height)) / (arity - 1)
    return hop_factor * (height - geo)


def expected_random_pair_distance(topology: Topology) -> float:
    """Exact mean hop distance over independent uniform rank pairs."""
    p = topology.num_processors
    if isinstance(topology, RingTopology):
        return _ring_mean(p)
    if isinstance(topology, BusTopology):
        return _line_mean(p)
    # TorusTopology subclasses MeshTopology; check the subclass first
    if isinstance(topology, Torus3DTopology):
        return 3 * _ring_mean(topology.side)
    if isinstance(topology, Mesh3DTopology):
        return 3 * _line_mean(topology.side)
    if isinstance(topology, TorusTopology):
        return 2 * _ring_mean(topology.side)
    if isinstance(topology, MeshTopology):
        return 2 * _line_mean(topology.side)
    if isinstance(topology, HypercubeTopology):
        return topology.dimension / 2
    if isinstance(topology, QuadtreeTopology):
        return _tree_mean(topology.height, 4, topology.diameter // max(topology.height, 1))
    if isinstance(topology, OctreeTopology):
        return _tree_mean(topology.height, 8, topology.diameter // max(topology.height, 1))
    raise TypeError(f"no closed form registered for {type(topology).__name__}")
