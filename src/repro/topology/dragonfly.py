"""Dragonfly topology (Kim, Dally, Scott & Abts, ISCA 2008).

A two-level direct hierarchy: ``p = 4**m`` routers are split into
``g = 2**m`` groups of ``a = 2**m`` routers each.  Routers within a
group form a complete graph (one local hop between any two), and every
ordered pair of groups is joined by exactly one global link.  Rank
``i * a + r`` is router ``r`` of group ``i`` — a rank-labelled network;
processor-order SFCs do not apply.

The global link between groups ``i`` and ``j`` attaches to router
``attach(i, j) = j if j < i else j - 1`` inside group ``i`` (the
classical consecutive assignment: router ``r`` of a group owns the
global link toward group ``r`` or ``r + 1``, and router ``a - 1`` owns
none).  Minimal direct routing gives the shortest path

    d((i, ri), (j, rj)) = 1 + [ri != attach(i, j)] + [rj != attach(j, i)]

for ``i != j`` (at most one local hop to the gateway router, one global
hop, one local hop to the destination) and ``d = [ri != rj]`` inside a
group.  Any route through an intermediate group needs two global hops
plus a local hop between two distinct gateways, so it is never shorter;
the formula is the exact graph metric and the router below follows it
hop for hop.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.topology.base import DirectTopology
from repro.util.bits import is_power_of_two

__all__ = ["DragonflyTopology"]


class DragonflyTopology(DirectTopology):
    """Balanced dragonfly: ``2**m`` all-to-all groups of ``2**m`` routers."""

    name = "dragonfly"

    def __init__(self, num_processors: int):
        super().__init__(num_processors)
        p = int(num_processors)
        # The balanced split g = a = sqrt(p) needs p = 4**m; an uneven
        # split would leave group pairs without a global link.
        if not (is_power_of_two(p) and (p.bit_length() - 1) % 2 == 0):
            raise TopologySizeError(
                f"dragonfly topologies need 4**m processors "
                f"(equal group count and group size), got {p}"
            )
        self._group_size = 1 << ((p.bit_length() - 1) // 2)

    @property
    def group_size(self) -> int:
        """Routers per group ``a`` (= number of groups ``g`` = ``sqrt(p)``)."""
        return self._group_size

    @property
    def num_groups(self) -> int:
        """Number of all-to-all router groups (balanced: equals ``a``)."""
        return self._group_size

    @property
    def diameter(self) -> int:
        # local hop - global hop - local hop; degenerate at tiny sizes
        # (p = 1 is a single router, p = 4 already needs all three hops).
        return 0 if self._p == 1 else 3

    def attach_router(self, group: IntArray, other: IntArray) -> IntArray:
        """Router index inside ``group`` owning the global link to ``other``."""
        return np.where(other < group, other, other - 1)

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        s = self._group_size
        gi, ri = a // s, a % s
        gj, rj = b // s, b % s
        local = (ri != rj).astype(np.int64)
        remote = (
            1
            + (ri != self.attach_router(gi, gj))
            + (rj != self.attach_router(gj, gi))
        )
        return np.where(gi == gj, local, remote)

    def links(self) -> IntArray:
        s = self._group_size
        pairs = []
        # local links: a complete graph inside every group
        lo, hi = np.triu_indices(s, k=1)
        for group in range(s):
            pairs.append(np.stack([group * s + lo, group * s + hi], axis=1))
        # global links: one per unordered group pair
        gi, gj = np.triu_indices(s, k=1)
        u = gi * s + self.attach_router(gi, gj)
        v = gj * s + self.attach_router(gj, gi)
        pairs.append(np.sort(np.stack([u, v], axis=1), axis=1))
        links = np.concatenate(pairs) if pairs else np.empty((0, 2), np.int64)
        return links[np.lexsort((links[:, 1], links[:, 0]))].astype(np.int64)
