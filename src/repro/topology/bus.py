"""Bus topology: a linear array of processors.

§II-B of the paper groups the bus with the ring as the "simplest
networks ... where each processor may only communicate with two direct
neighbors", so the bus is modelled as a path graph: the hop distance
between ranks is ``|a - b|``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.topology.base import DirectTopology

__all__ = ["BusTopology"]


class BusTopology(DirectTopology):
    """Linear array (path) of processors; distance ``|a - b|``."""

    name = "bus"

    @property
    def diameter(self) -> int:
        return self.num_processors - 1

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        return np.abs(a - b)

    def links(self) -> IntArray:
        p = self.num_processors
        u = np.arange(p - 1, dtype=np.int64)
        return np.stack([u, u + 1], axis=1)
