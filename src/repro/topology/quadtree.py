"""Quadtree (indirect tree) topology.

§II-B: "the quadtree topology, where each communication must travel up
and down the tree".  ``p = 4**m`` processors are the leaves of a
complete 4-ary switch tree of height ``m``; a message between two
leaves climbs to their lowest common ancestor and descends, so the hop
distance is ``2 * (m - lca_depth)``.

Leaves are embedded on a ``2**m`` square lattice: rank ``i`` occupies
the position assigned by the processor-order SFC (natural z-order by
default, which makes the tree structure coincide with the spatial
quadtree).  The LCA depth of two leaves is then the number of common
leading bit-pairs of their interleaved position codes.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.topology.base import Topology
from repro.topology.layout import GridLayout
from repro.util.bits import bit_length, interleave2, is_power_of_two

__all__ = ["QuadtreeTopology"]


class QuadtreeTopology(Topology):
    """Complete 4-ary switch tree over ``4**m`` leaf processors.

    ``hop_convention`` selects how a leaf-to-leaf path is charged:

    * ``"updown"`` (default) — one hop per tree edge traversed, i.e.
      ``2 * (height - lca_depth)``: the message climbs to the LCA and
      descends.  This is the literal reading of §II-B ("each
      communication must travel up and down the tree").
    * ``"levels"`` — ``height - lca_depth``: one unit per tree *level*
      separating the leaves, as if each switch stage forwards in a
      single timestep.  Exactly half the ``updown`` value; the relative
      comparison against *other* topologies changes, which matters when
      reproducing Fig. 6 (see EXPERIMENTS.md).
    """

    name = "quadtree"

    def __init__(
        self,
        num_processors: int,
        processor_curve: str = "zcurve",
        hop_convention: str = "updown",
    ):
        super().__init__(num_processors)
        p = int(num_processors)
        # The height/z-code arithmetic below assumes a complete 4-ary tree;
        # any other count would silently misprice every hop.
        if not (is_power_of_two(p) and (p.bit_length() - 1) % 2 == 0):
            raise TopologySizeError(
                f"quadtree topologies need 4**m leaf processors "
                f"(a complete 4-ary switch tree), got {p}"
            )
        if hop_convention not in ("updown", "levels"):
            raise ValueError(
                f"unknown hop_convention {hop_convention!r}; use 'updown' or 'levels'"
            )
        self._hop_factor = 2 if hop_convention == "updown" else 1
        self._hop_convention = hop_convention
        self._layout = GridLayout(num_processors, processor_curve)
        self._height = self._layout.side.bit_length() - 1
        gx, gy = self._layout.coords(np.arange(num_processors, dtype=np.int64))
        self._zcodes = interleave2(gx, gy)

    @property
    def layout(self) -> GridLayout:
        """The rank → leaf-position bijection."""
        return self._layout

    @property
    def height(self) -> int:
        """Tree height ``m`` (levels between a leaf and the root)."""
        return self._height

    @property
    def hop_convention(self) -> str:
        """Active path-cost convention (``"updown"`` or ``"levels"``)."""
        return self._hop_convention

    @property
    def diameter(self) -> int:
        return self._hop_factor * self._height

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        diff = self._zcodes[a] ^ self._zcodes[b]
        # Number of quadtree levels on which the leaves disagree:
        levels = (bit_length(diff) + 1) >> 1
        return self._hop_factor * levels
