"""Shared per-topology memoisation: distance matrices and routing tables.

Trial-averaged experiments evaluate the same network over and over —
``run_case`` draws fresh particles per trial but the topology (and hence
every hop distance and every routed path) is identical across trials.
This module provides a process-wide, thread-safe, size-capped LRU cache
so that :func:`repro.metrics.acd.compute_acd`,
:mod:`repro.metrics.anns` and the contention simulator stop recomputing
those invariants per call:

* **distance matrices** — the full ``p x p`` hop-distance table of a
  topology, built once and indexed thereafter (``int32``; a 4096-rank
  torus costs 64 MiB).  Matrices are only materialised when they fit
  the byte budget *and* the topology has seen enough query volume to
  amortise the build (see :meth:`TopologyCache.distances`).
* **distance blocks** — rectangular ``rows x cols`` sub-blocks of the
  distance matrix (:meth:`TopologyCache.distance_block`), the unit of
  the memory-budgeted tiled ACD path
  (:mod:`repro.metrics.acd`).  Blocks live in their own byte-budgeted
  LRU section so a million-rank topology — whose full matrix could
  never be materialised — still serves its *hot tiles* from memory
  across repeated trials.
* **routing/lookup tables** — arbitrary named per-topology arrays
  (rank grids, switch-id tables, curve index grids...) memoised through
  the generic :meth:`TopologyCache.table` hook.

Cache keys are derived from the *parameters* of a topology (class, size,
processor curve, hop convention, ...), not object identity, so two
equal-parameter instances share entries.

Knobs
-----
The default cache sizes come from the runtime config
(:func:`repro.runtime.runtime_config`), read once at import time:

* ``cache_matrix_bytes`` (``REPRO_CACHE_MATRIX_BYTES``) — per-matrix
  byte cap (default 256 MiB; ``0`` disables matrix caching entirely).
* ``cache_entries`` (``REPRO_CACHE_ENTRIES``) — max resident entries
  per section (default 32); LRU entries are evicted beyond this.

Call :func:`set_topology_cache` (or
:func:`repro.runtime.configure`) to swap in a differently-sized cache.

Every hit, miss and eviction is also reported to :mod:`repro.obs`
(``topo_cache.*`` counters) so recorded runs can prove their reuse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

import numpy as np

from repro import obs
from repro._typing import IntArray
from repro.runtime import runtime_config
from repro.topology.base import Topology

__all__ = [
    "TopologyCache",
    "topology_cache_key",
    "get_topology_cache",
    "set_topology_cache",
]


def topology_cache_key(topology: Topology) -> tuple:
    """A hashable key identifying a topology by its parameters.

    Includes everything that determines the hop metric and the routed
    paths: concrete class, processor count, the processor-order SFC (for
    grid-embedded networks), the hypercube label layout and the tree hop
    convention.  Two instances built with the same parameters map to the
    same key.
    """
    parts: list[Hashable] = [type(topology).__name__, topology.num_processors]
    layout = getattr(topology, "layout", None)
    if layout is not None:
        parts.append(getattr(layout, "curve_name", None))
    parts.append(getattr(topology, "layout_name", None))  # hypercube embedding
    parts.append(getattr(topology, "hop_convention", None))  # tree charging
    return tuple(parts)


class _LruSection:
    """One bounded LRU mapping (not thread-safe; callers hold the lock).

    ``label`` names the section in the :mod:`repro.obs` counter stream
    (``<label>_hits`` / ``<label>_misses`` / ``<label>_evictions``).
    ``max_bytes`` optionally bounds the summed ``nbytes`` of the resident
    values (entries are evicted LRU-first until back under budget);
    ``on_evict(key, value)`` fires for every eviction so side tables
    keyed alongside the section can be pruned in lockstep.
    """

    def __init__(
        self,
        max_entries: int,
        label: str = "topo_cache.section",
        max_bytes: int | None = None,
        on_evict: Callable[[Hashable, object], None] | None = None,
    ):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.on_evict = on_evict
        self.data: OrderedDict = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._hit_key = f"{label}_hits"
        self._miss_key = f"{label}_misses"
        self._evict_key = f"{label}_evictions"

    def get(self, key):
        if key in self.data:
            self.data.move_to_end(key)
            self.hits += 1
            obs.count(self._hit_key)
            return self.data[key]
        self.misses += 1
        obs.count(self._miss_key)
        return None

    def _over_budget(self) -> bool:
        if len(self.data) > self.max_entries:
            return True
        return self.max_bytes is not None and self.bytes > self.max_bytes

    def put(self, key, value) -> None:
        if key in self.data:
            self.bytes -= int(getattr(self.data[key], "nbytes", 0))
        self.data[key] = value
        self.data.move_to_end(key)
        self.bytes += int(getattr(value, "nbytes", 0))
        while self.data and self._over_budget():
            evicted_key, evicted = self.data.popitem(last=False)
            self.bytes -= int(getattr(evicted, "nbytes", 0))
            self.evictions += 1
            obs.count(self._evict_key)
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted)

    def clear(self) -> None:
        self.data.clear()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class TopologyCache:
    """Thread-safe LRU cache of per-topology derived data.

    Parameters
    ----------
    max_entries:
        Resident entries per section (matrices / tables) before LRU
        eviction.
    max_matrix_bytes:
        Upper bound on the size of any single distance matrix; larger
        topologies transparently fall back to the vectorised distance
        kernel.  ``0`` disables matrix caching.
    max_block_bytes:
        Byte budget of the *block* section — the summed size of every
        resident distance block (the tiles of the memory-budgeted ACD
        path).  Defaults to ``max_matrix_bytes``; ``0`` disables block
        caching (blocks are still buildable, just never retained).
    """

    _MATRIX_DTYPE = np.int32  # diameters comfortably fit 32 bits

    #: Entry cap of the block section: tiles are small relative to
    #: matrices, so many more of them stay resident per topology.
    _BLOCK_ENTRY_FACTOR = 32

    def __init__(
        self,
        max_entries: int = 32,
        max_matrix_bytes: int = 256 << 20,
        max_block_bytes: int | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_matrix_bytes < 0:
            raise ValueError(f"max_matrix_bytes must be >= 0, got {max_matrix_bytes}")
        if max_block_bytes is not None and max_block_bytes < 0:
            raise ValueError(f"max_block_bytes must be >= 0, got {max_block_bytes}")
        self.max_matrix_bytes = int(max_matrix_bytes)
        self.max_block_bytes = (
            self.max_matrix_bytes if max_block_bytes is None else int(max_block_bytes)
        )
        self.max_entries = int(max_entries)
        self._lock = threading.RLock()
        self._query_volume: dict[tuple, int] = {}
        self._block_volume: dict[tuple, int] = {}
        # Volume accounting is pruned in lockstep with evictions, so a
        # long campaign over many topologies cannot grow the side dicts
        # unboundedly and a re-inserted entry never inherits stale volume.
        self._matrices = _LruSection(
            max_entries,
            label="topo_cache.matrix",
            on_evict=lambda key, _v: self._query_volume.pop(key, None),
        )
        self._blocks = _LruSection(
            max_entries * self._BLOCK_ENTRY_FACTOR,
            label="topo_cache.block",
            max_bytes=self.max_block_bytes,
            on_evict=lambda key, _v: self._block_volume.pop(key, None),
        )
        self._tables = _LruSection(max_entries, label="topo_cache.table")

    # -- distance matrices ---------------------------------------------------
    def matrix_fits(self, topology: Topology) -> bool:
        """Whether a full distance matrix of ``topology`` is within budget."""
        p = topology.num_processors
        return p * p * np.dtype(self._MATRIX_DTYPE).itemsize <= self.max_matrix_bytes

    def distance_matrix(self, topology: Topology) -> IntArray:
        """The full ``p x p`` hop-distance matrix (built and cached).

        Raises :class:`ValueError` when the matrix exceeds
        ``max_matrix_bytes``; use :meth:`distances` for the transparent
        fallback path.
        """
        if not self.matrix_fits(topology):
            raise ValueError(
                f"distance matrix of {topology!r} exceeds the "
                f"{self.max_matrix_bytes}-byte cache budget"
            )
        key = topology_cache_key(topology)
        with self._lock:
            cached = self._matrices.get(key)
            if cached is not None:
                return cached
            matrix = self._build_matrix(topology)
            self._matrices.put(key, matrix)
            return matrix

    def _build_matrix(self, topology: Topology) -> IntArray:
        p = topology.num_processors
        with obs.span("topo.matrix_build", processors=p):
            ranks = np.arange(p, dtype=np.int64)
            matrix = np.empty((p, p), dtype=self._MATRIX_DTYPE)
            # Row-blocked so the int64 intermediates stay bounded (~16 MiB).
            block = max(1, (2 << 20) // max(p, 1))
            for lo in range(0, p, block):
                hi = min(lo + block, p)
                matrix[lo:hi] = topology.distance(ranks[lo:hi, None], ranks[None, :])
            obs.count("topo_cache.matrix_bytes_built", matrix.nbytes)
        return matrix

    def matrix_for_queries(self, topology: Topology, volume: int) -> IntArray | None:
        """The cached matrix, accounting ``volume`` queries toward its build.

        Returns ``None`` while the matrix is not worth materialising:
        either it exceeds the byte budget, or the cumulative query
        volume for this topology has not yet reached ``p`` elements
        (one trial's worth of lookups, the point where the ``O(p^2)``
        build pays for itself).  Callers fall back to
        :meth:`Topology.distance` in that case — results are identical
        either way.  This is the primitive behind :meth:`distances`;
        fused-kernel consumers (the histogram ACD) call it directly so
        matrix builds happen under exactly the same conditions on every
        backend.
        """
        if not self.matrix_fits(topology):
            return None
        key = topology_cache_key(topology)
        with self._lock:
            matrix = self._matrices.get(key)
            if matrix is None:
                total = self._query_volume.get(key, 0) + int(volume)
                self._query_volume[key] = total
                if total < topology.num_processors:
                    return None
                matrix = self._build_matrix(topology)
                self._matrices.put(key, matrix)
                # The accumulated volume did its job; a future rebuild
                # (after an eviction) must amortise from zero again.
                self._query_volume.pop(key, None)
        return matrix

    def distances(self, topology: Topology, a, b) -> IntArray:
        """Hop distances, served from the cached matrix when worthwhile.

        See :meth:`matrix_for_queries` for the lazy-build policy; this
        wrapper gathers from the matrix once it exists and forwards to
        :meth:`Topology.distance` until then.
        """
        matrix = self.matrix_for_queries(topology, np.asarray(a).size)
        if matrix is None:
            return topology.distance(a, b)
        return matrix[a, b].astype(np.int64)

    # -- distance blocks (tiles of the matrix) -------------------------------
    def _check_range(self, bounds: tuple[int, int], p: int, axis: str) -> tuple[int, int]:
        lo, hi = int(bounds[0]), int(bounds[1])
        if not 0 <= lo < hi <= p:
            raise ValueError(
                f"{axis} range must satisfy 0 <= lo < hi <= {p}, got ({lo}, {hi})"
            )
        return lo, hi

    def _build_block(
        self, topology: Topology, rows: tuple[int, int], cols: tuple[int, int]
    ) -> IntArray:
        (r0, r1), (c0, c1) = rows, cols
        height, width = r1 - r0, c1 - c0
        with obs.span("topo.block_build", rows=height, cols=width):
            block = np.empty((height, width), dtype=self._MATRIX_DTYPE)
            row_ids = np.arange(r0, r1, dtype=np.int64)
            col_ids = np.arange(c0, c1, dtype=np.int64)
            # Row-slabbed like the full matrix build, so the int64
            # intermediates stay bounded (~16 MiB) whatever the block size.
            slab = max(1, (2 << 20) // max(width, 1))
            for lo in range(0, height, slab):
                hi = min(lo + slab, height)
                block[lo:hi] = topology.distance(row_ids[lo:hi, None], col_ids[None, :])
            obs.count("topo_cache.block_bytes_built", block.nbytes)
        return block

    def block_fits(self, rows: tuple[int, int], cols: tuple[int, int]) -> bool:
        """Whether a ``rows x cols`` block is within the block byte budget."""
        cells = (rows[1] - rows[0]) * (cols[1] - cols[0])
        return cells * np.dtype(self._MATRIX_DTYPE).itemsize <= self.max_block_bytes

    def distance_block(
        self, topology: Topology, rows: tuple[int, int], cols: tuple[int, int]
    ) -> IntArray:
        """The hop-distance block ``matrix[rows[0]:rows[1], cols[0]:cols[1]]``.

        Built directly from the vectorised distance kernel — the full
        ``p x p`` matrix is never materialised — and cached in the
        byte-budgeted block section when it fits
        (``topo_cache.block_*`` counters).  Over-budget blocks are
        still returned, just not retained.
        """
        p = topology.num_processors
        rows = self._check_range(rows, p, "row")
        cols = self._check_range(cols, p, "col")
        if not self.block_fits(rows, cols):
            return self._build_block(topology, rows, cols)
        key = (topology_cache_key(topology), rows, cols)
        with self._lock:
            cached = self._blocks.get(key)
            if cached is not None:
                return cached
            block = self._build_block(topology, rows, cols)
            self._blocks.put(key, block)
            return block

    def block_for_queries(
        self,
        topology: Topology,
        rows: tuple[int, int],
        cols: tuple[int, int],
        volume: int,
    ) -> IntArray | None:
        """The cached block, accounting ``volume`` queries toward its build.

        The block-level sibling of :meth:`matrix_for_queries`: returns
        ``None`` while the block is not worth materialising — it exceeds
        the block byte budget, or the cumulative query volume for this
        exact tile has not yet reached one row's worth of lookups
        (``rows[1] - rows[0]`` elements, the point where the
        ``O(rows x cols)`` build pays for itself).  Callers fall back to
        the vectorised distance kernel on the raw pairs in that case —
        results are identical either way.  Repeated trials accumulate
        volume, so hot tiles become cache-resident.
        """
        p = topology.num_processors
        rows = self._check_range(rows, p, "row")
        cols = self._check_range(cols, p, "col")
        if not self.block_fits(rows, cols):
            return None
        key = (topology_cache_key(topology), rows, cols)
        with self._lock:
            block = self._blocks.get(key)
            if block is None:
                total = self._block_volume.get(key, 0) + int(volume)
                self._block_volume[key] = total
                if total < rows[1] - rows[0]:
                    return None
                block = self._build_block(topology, rows, cols)
                self._blocks.put(key, block)
                self._block_volume.pop(key, None)
        return block

    # -- generic per-topology tables ----------------------------------------
    def table(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Memoise ``builder()`` under ``key`` (LRU, thread-safe).

        Used by the batch router for per-topology link tables and by the
        ANNS pipeline for curve index grids; any hashable key works.
        """
        with self._lock:
            cached = self._tables.get(key)
            if cached is None:
                cached = builder()
                self._tables.put(key, cached)
            return cached

    def topology_table(
        self, topology: Topology, name: str, builder: Callable[[], object]
    ) -> object:
        """:meth:`table` keyed by ``(name, topology parameters)``."""
        return self.table((name, topology_cache_key(topology)), builder)

    # -- maintenance ---------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached entry and reset the statistics."""
        with self._lock:
            for section in (self._matrices, self._blocks, self._tables):
                section.clear()
            self._query_volume.clear()
            self._block_volume.clear()

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/residency counters (for tests and diagnostics)."""
        with self._lock:
            return {
                "matrix_hits": self._matrices.hits,
                "matrix_misses": self._matrices.misses,
                "matrix_evictions": self._matrices.evictions,
                "matrices": len(self._matrices.data),
                "block_hits": self._blocks.hits,
                "block_misses": self._blocks.misses,
                "block_evictions": self._blocks.evictions,
                "blocks": len(self._blocks.data),
                "block_bytes": self._blocks.bytes,
                "table_hits": self._tables.hits,
                "table_misses": self._tables.misses,
                "table_evictions": self._tables.evictions,
                "tables": len(self._tables.data),
            }


_runtime = runtime_config()
_default_cache = TopologyCache(
    max_entries=_runtime.cache_entries,
    max_matrix_bytes=_runtime.cache_matrix_bytes,
)
del _runtime
_default_lock = threading.Lock()


def get_topology_cache() -> TopologyCache:
    """The process-wide shared cache instance."""
    return _default_cache


def set_topology_cache(cache: TopologyCache) -> TopologyCache:
    """Replace the process-wide cache; returns the previous instance."""
    global _default_cache
    if not isinstance(cache, TopologyCache):
        raise TypeError(f"expected a TopologyCache, got {type(cache).__name__}")
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous
