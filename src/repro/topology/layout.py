"""Processor layouts: how ranks are placed onto physical positions.

§IV step 3 of the paper orders the processors of a mesh or torus with a
*processor-order SFC*: rank ``i`` is placed at the lattice position whose
curve index is ``i``.  :class:`GridLayout` realises that bijection and
precomputes the rank → coordinate tables the distance kernels index
into.

As an extension, :func:`hypercube_labels` offers the classical
Gray-coded hypercube embedding (consecutive ranks are physical
neighbours), selectable through the hypercube topology's ``layout``
argument.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.sfc.registry import get_curve
from repro.util.bits import gray_encode, is_power_of_two

__all__ = ["GridLayout", "hypercube_labels"]


class GridLayout:
    """SFC-driven bijection between ranks and a square grid of positions.

    Parameters
    ----------
    num_processors:
        Must be ``4**m`` so the grid side is a power of two (required by
        the curve constructions; the paper's 65 536-processor torus is
        ``4**8``).
    curve:
        Name of the processor-order SFC (default row-major, the
        conventional rank labelling communication libraries apply when
        no SFC is requested).
    """

    def __init__(self, num_processors: int, curve: str = "rowmajor"):
        p = int(num_processors)
        side = int(round(p**0.5))
        if side * side != p or not is_power_of_two(side):
            raise TopologySizeError(
                f"grid layouts need 4**m processors (a power-of-two square side), got {p}"
            )
        self._side = side
        self._curve_name = curve
        order = side.bit_length() - 1
        sfc = get_curve(curve, order)
        if sfc.side != side:
            raise TopologySizeError(
                f"curve {curve!r} fills a {sfc.side}x{sfc.side} lattice at order "
                f"{order}; grid layouts need a power-of-two side ({side})"
            )
        gx, gy = sfc.decode(np.arange(p, dtype=np.int64))
        self._gx = gx
        self._gy = gy

    @property
    def side(self) -> int:
        """Grid side length (``sqrt(p)``)."""
        return self._side

    @property
    def curve_name(self) -> str:
        """Name of the processor-order SFC realising the layout."""
        return self._curve_name

    @property
    def num_processors(self) -> int:
        """Number of grid positions (= ranks)."""
        return self._side * self._side

    def coords(self, ranks: IntArray) -> tuple[IntArray, IntArray]:
        """Grid coordinates ``(gx, gy)`` of each rank (vectorised lookup)."""
        return self._gx[ranks], self._gy[ranks]

    def rank_grid(self) -> IntArray:
        """Return ``R`` with ``R[gx, gy]`` = rank placed at that position."""
        grid = np.empty((self._side, self._side), dtype=np.int64)
        grid[self._gx, self._gy] = np.arange(self.num_processors, dtype=np.int64)
        return grid


def hypercube_labels(num_processors: int, layout: str = "identity") -> IntArray:
    """Rank → node-label table for a hypercube.

    ``"identity"`` assigns rank ``i`` to node ``i`` (the paper's setting,
    where processor-order SFCs do not apply to the hypercube);
    ``"gray"`` assigns rank ``i`` to node ``gray(i)`` so that consecutive
    ranks sit on adjacent corners — the classical ring-in-hypercube
    embedding, included as an extension.
    """
    p = int(num_processors)
    if not is_power_of_two(p):
        raise TopologySizeError(f"hypercubes need 2**d processors, got {p}")
    ranks = np.arange(p, dtype=np.int64)
    if layout == "identity":
        return ranks
    if layout == "gray":
        return gray_encode(ranks)
    raise ValueError(f"unknown hypercube layout {layout!r}; use 'identity' or 'gray'")
