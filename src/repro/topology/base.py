"""Abstract interface for processor-network topologies.

A topology hosts ``p`` processors identified by ranks ``0..p-1`` and
answers one question for the ACD metric (§I, Definition 1 of the paper):
*how many hops does the shortest path between two ranks take along the
network interconnect?*  The answer must be computable for millions of
rank pairs at once, so :meth:`Topology.distance` is a vectorised kernel.

Direct networks (bus, ring, mesh, torus, hypercube) additionally expose
their physical link set, which the contention extension
(:mod:`repro.contention`) consumes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._typing import IntArray
from repro.util.validation import check_in_range, check_positive

__all__ = ["Topology", "DirectTopology"]


class Topology(abc.ABC):
    """A network of ``num_processors`` processors with a hop metric."""

    #: Registry name of the topology (e.g. ``"torus"``); set by subclasses.
    name: str = ""

    def __init__(self, num_processors: int):
        self._p = check_positive(num_processors, "num_processors")

    @property
    def num_processors(self) -> int:
        """Number of processors ``p`` hosted by the network."""
        return self._p

    @property
    @abc.abstractmethod
    def diameter(self) -> int:
        """Maximum hop distance between any two ranks."""

    @abc.abstractmethod
    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        """Vectorised kernel: hop distances for validated rank arrays."""

    def distance(self, a, b) -> IntArray:
        """Shortest-path hop distance between ranks ``a`` and ``b``.

        Accepts scalars or broadcastable integer arrays of ranks in
        ``[0, num_processors)``; returns ``int64`` hop counts.  The
        distance is a metric: zero iff ``a == b``, symmetric, and obeys
        the triangle inequality (property-tested per topology).
        """
        scalar = np.isscalar(a) and np.isscalar(b)
        aa = check_in_range(a, 0, self._p, "rank a")
        bb = check_in_range(b, 0, self._p, "rank b")
        aa, bb = np.broadcast_arrays(aa, bb)
        out = self._distance(aa, bb)
        return int(out[()]) if scalar and out.ndim == 0 else out

    def mean_pairwise_distance(self, rng=None, samples: int = 100_000) -> float:
        """Monte-Carlo estimate of the mean hop distance over random pairs.

        Useful as a topology-level baseline when interpreting ACD values:
        an SFC assignment is only interesting if it beats random placement.
        """
        from repro.util.rng import as_generator

        gen = as_generator(rng)
        a = gen.integers(0, self._p, size=samples)
        b = gen.integers(0, self._p, size=samples)
        return float(self.distance(a, b).mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_processors={self._p})"


class DirectTopology(Topology):
    """A topology whose processors are directly wired to each other.

    Exposes the physical link set; indirect networks (the quadtree, whose
    interior nodes are switches) do not inherit from this class.
    """

    @abc.abstractmethod
    def links(self) -> IntArray:
        """Return the physical links as an ``(L, 2)`` array of rank pairs.

        Each undirected link appears exactly once with ``u < v``.
        """

    @property
    def num_links(self) -> int:
        """Number of physical links in the network."""
        return int(self.links().shape[0])
