"""Registry and uniform factory for the study's network topologies.

:func:`make_topology` is the entry point the experiment harness uses.
It forwards the processor-order SFC to the topologies where the paper
applies it (mesh, torus — §IV step 3) and to the quadtree leaf
embedding, and ignores it for the rank-labelled networks (bus, ring,
hypercube), mirroring the paper's setup.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.bus import BusTopology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fat_tree import FatTreeTopology
from repro.topology.grid3d import Mesh3DTopology, OctreeTopology, Torus3DTopology
from repro.topology.hypercube import HypercubeTopology
from repro.topology.mesh import MeshTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology
from repro.util.registry import Registry

__all__ = [
    "TOPOLOGIES",
    "PAPER_TOPOLOGIES",
    "GRID_TOPOLOGIES",
    "GRID3D_TOPOLOGIES",
    "make_topology",
    "topology_names",
]

TOPOLOGIES: Registry[Topology] = Registry("topology")
TOPOLOGIES.register("bus", BusTopology)
TOPOLOGIES.register("ring", RingTopology)
TOPOLOGIES.register("mesh", MeshTopology, aliases=("grid",))
TOPOLOGIES.register("torus", TorusTopology)
TOPOLOGIES.register("quadtree", QuadtreeTopology, aliases=("tree",))
TOPOLOGIES.register("hypercube", HypercubeTopology, aliases=("cube",))
TOPOLOGIES.register("mesh3d", Mesh3DTopology)
TOPOLOGIES.register("torus3d", Torus3DTopology)
TOPOLOGIES.register("octree", OctreeTopology)
TOPOLOGIES.register("fat_tree", FatTreeTopology, aliases=("clos",))
TOPOLOGIES.register("dragonfly", DragonflyTopology)

#: The six topologies evaluated in the paper (§II-B order).
PAPER_TOPOLOGIES: tuple[str, ...] = (
    "bus",
    "ring",
    "mesh",
    "torus",
    "quadtree",
    "hypercube",
)

#: Topologies whose ranks live on a 2D grid and accept processor-order SFCs.
GRID_TOPOLOGIES: tuple[str, ...] = ("mesh", "torus", "quadtree")

#: Extension topologies whose ranks live on a 3D grid (accept 3D curves).
GRID3D_TOPOLOGIES: tuple[str, ...] = ("mesh3d", "torus3d", "octree")


def make_topology(
    name: str, num_processors: int, processor_curve: str | None = None
) -> Topology:
    """Instantiate topology ``name`` with ``num_processors`` ranks.

    ``processor_curve`` names the processor-order SFC; it is honoured by
    the grid-embedded topologies (mesh, torus, quadtree in 2D; mesh3d,
    torus3d, octree in 3D) and ignored — per the paper's methodology —
    by bus, ring and hypercube.
    """
    canonical = TOPOLOGIES.canonical(name)
    if canonical in GRID_TOPOLOGIES + GRID3D_TOPOLOGIES and processor_curve is not None:
        return TOPOLOGIES.create(canonical, num_processors, processor_curve=processor_curve)
    return TOPOLOGIES.create(canonical, num_processors)


def topology_names() -> tuple[str, ...]:
    """Canonical names of all registered topologies."""
    return TOPOLOGIES.names()
