"""Fat-tree (folded Clos) topology.

Leiserson's fat tree is the switch tree most large clusters actually
deploy: ``p = 4**m`` processors are the leaves of a complete 4-ary
switch tree whose link capacity grows toward the root, so the *hop*
metric is that of the tree while the bandwidth taper is a property of
the links (the contention simulator sees it through link multiplicity,
not through the distance).

Unlike the quadtree — whose leaves are embedded on a square lattice via
a processor-order SFC so the tree coincides with the spatial quadtree —
the fat tree is an *indirect, rank-labelled* network: leaf ``i`` is
simply the ``i``-th leaf in tree order (its base-4 digit string is the
root-to-leaf path), and processor-order SFCs do not apply, matching the
convention for bus, ring and hypercube.  The hop distance between two
leaves is ``2 * (m - lca_depth)``: up to the lowest common ancestor
switch and back down.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.topology.base import Topology
from repro.util.bits import bit_length, is_power_of_two

__all__ = ["FatTreeTopology"]


class FatTreeTopology(Topology):
    """Complete 4-ary fat tree over ``4**m`` rank-labelled leaves."""

    name = "fat_tree"

    def __init__(self, num_processors: int):
        super().__init__(num_processors)
        p = int(num_processors)
        # The LCA arithmetic below walks base-4 digit prefixes of the leaf
        # ranks; anything but a complete 4-ary tree would misprice hops.
        if not (is_power_of_two(p) and (p.bit_length() - 1) % 2 == 0):
            raise TopologySizeError(
                f"fat trees need 4**m leaf processors "
                f"(a complete 4-ary switch tree), got {p}"
            )
        self._height = (p.bit_length() - 1) // 2
        # Leaf codes are the ranks themselves: the tree router shares its
        # machinery with the quadtree, which reads the path digits here.
        self._codes = np.arange(p, dtype=np.int64)

    @property
    def height(self) -> int:
        """Tree height ``m`` (levels between a leaf and the root)."""
        return self._height

    @property
    def diameter(self) -> int:
        return 2 * self._height

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        diff = a ^ b
        # Number of tree levels on which the leaf paths disagree:
        levels = (bit_length(diff) + 1) >> 1
        return 2 * levels
