"""2D torus topology — the workhorse network of the paper's experiments.

Identical to the mesh except every row and column wraps around, so the
per-dimension distance is ``min(d, side - d)``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.topology.mesh import MeshTopology

__all__ = ["TorusTopology"]


class TorusTopology(MeshTopology):
    """Square 2D torus; distance = wrap-around Manhattan distance."""

    name = "torus"

    @property
    def diameter(self) -> int:
        return 2 * (self.side // 2)

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        side = self.side
        ax, ay = self.layout.coords(a)
        bx, by = self.layout.coords(b)
        dx = np.abs(ax - bx)
        dy = np.abs(ay - by)
        return np.minimum(dx, side - dx) + np.minimum(dy, side - dy)

    def links(self) -> IntArray:
        rank = self.layout.rank_grid()
        horiz = np.stack(
            [rank.ravel(), np.roll(rank, -1, axis=0).ravel()], axis=1
        )
        vert = np.stack([rank.ravel(), np.roll(rank, -1, axis=1).ravel()], axis=1)
        links = np.sort(np.concatenate([horiz, vert]), axis=1)
        # A side-2 torus has coincident wrap and direct links; deduplicate.
        return np.unique(links, axis=0)
