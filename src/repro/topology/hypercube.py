"""Hypercube topology.

``p = 2**d`` processors sit on the corners of a ``d``-cube; the hop
distance between two node labels is the Hamming distance of their
binary representations.  Rank → label assignment is the identity by
default (the paper does not apply processor-order SFCs to the
hypercube); the Gray-coded embedding is available as an extension via
``layout="gray"``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.topology.base import DirectTopology
from repro.topology.layout import hypercube_labels
from repro.util.bits import is_power_of_two, popcount

__all__ = ["HypercubeTopology"]


class HypercubeTopology(DirectTopology):
    """``d``-dimensional hypercube; distance = Hamming distance of labels."""

    name = "hypercube"

    def __init__(self, num_processors: int, layout: str = "identity"):
        super().__init__(num_processors)
        if not is_power_of_two(num_processors):
            raise TopologySizeError(
                f"hypercubes need 2**d processors, got {num_processors}"
            )
        self._dim = int(num_processors).bit_length() - 1
        self._labels = hypercube_labels(num_processors, layout)
        self._layout_name = layout

    @property
    def dimension(self) -> int:
        """Cube dimension ``d = log2(p)``."""
        return self._dim

    @property
    def layout_name(self) -> str:
        """Which rank → label embedding is active (identity or gray)."""
        return self._layout_name

    @property
    def diameter(self) -> int:
        return self._dim

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        return popcount(self._labels[a] ^ self._labels[b])

    def links(self) -> IntArray:
        # label -> rank inverse table, then one link per (node, dimension)
        p = self.num_processors
        inv = np.empty(p, dtype=np.int64)
        inv[self._labels] = np.arange(p, dtype=np.int64)
        nodes = np.arange(p, dtype=np.int64)
        pairs = []
        for bit in range(self._dim):
            peer = nodes ^ (1 << bit)
            keep = nodes < peer
            pairs.append(np.stack([inv[nodes[keep]], inv[peer[keep]]], axis=1))
        return np.sort(np.concatenate(pairs), axis=1) if pairs else np.empty((0, 2), np.int64)
