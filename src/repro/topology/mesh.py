"""2D mesh (grid) topology with an SFC-driven processor layout.

Ranks are placed on a ``sqrt(p) x sqrt(p)`` grid by a
:class:`~repro.topology.layout.GridLayout`; the hop distance between two
ranks is the Manhattan distance between their grid positions (XY
routing, no wrap-around links).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.topology.base import DirectTopology
from repro.topology.layout import GridLayout

__all__ = ["MeshTopology"]


class MeshTopology(DirectTopology):
    """Square 2D mesh; distance = Manhattan distance between positions.

    Parameters
    ----------
    num_processors:
        Must be ``4**m`` (power-of-two grid side).
    processor_curve:
        Processor-order SFC used to place ranks on the grid (§IV step 3
        of the paper); default row-major.
    """

    name = "mesh"

    def __init__(self, num_processors: int, processor_curve: str = "rowmajor"):
        super().__init__(num_processors)
        self._layout = GridLayout(num_processors, processor_curve)

    @property
    def layout(self) -> GridLayout:
        """The rank → grid-position bijection."""
        return self._layout

    @property
    def side(self) -> int:
        """Grid side length."""
        return self._layout.side

    @property
    def diameter(self) -> int:
        return 2 * (self.side - 1)

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        ax, ay = self._layout.coords(a)
        bx, by = self._layout.coords(b)
        return np.abs(ax - bx) + np.abs(ay - by)

    def links(self) -> IntArray:
        rank = self._layout.rank_grid()
        horiz = np.stack([rank[:-1, :].ravel(), rank[1:, :].ravel()], axis=1)
        vert = np.stack([rank[:, :-1].ravel(), rank[:, 1:].ravel()], axis=1)
        return np.sort(np.concatenate([horiz, vert]), axis=1)
