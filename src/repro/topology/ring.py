"""Ring topology: a cycle of processors.

The hop distance is the shorter way around: ``min(|a-b|, p - |a-b|)``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.topology.base import DirectTopology

__all__ = ["RingTopology"]


class RingTopology(DirectTopology):
    """Cycle of processors; distance is the shorter arc."""

    name = "ring"

    @property
    def diameter(self) -> int:
        return self.num_processors // 2

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        d = np.abs(a - b)
        return np.minimum(d, self.num_processors - d)

    def links(self) -> IntArray:
        p = self.num_processors
        u = np.arange(p, dtype=np.int64)
        links = np.stack([u, (u + 1) % p], axis=1)
        # normalise u < v and drop the duplicate this creates for p <= 2
        links = np.sort(links, axis=1)
        return np.unique(links, axis=0)
