"""3D grid topologies: mesh, torus and octree switch tree (extension).

Future-work item (iii) of the paper asks about mappings "from
multi-dimensional space to 2D/3D intraconnect network"; these classes
provide the 3D networks so the 3D FMM model has somewhere to live.
Ranks are placed on a ``p**(1/3)`` cube by a 3D processor-order SFC.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import TopologySizeError
from repro.sfc.curves3d import get_curve3d
from repro.topology.base import DirectTopology, Topology
from repro.util.bits import bit_length, interleave3, is_power_of_two

__all__ = ["GridLayout3D", "Mesh3DTopology", "Torus3DTopology", "OctreeTopology"]


class GridLayout3D:
    """SFC-driven bijection between ranks and a cube grid of positions."""

    def __init__(self, num_processors: int, curve: str = "rowmajor3d"):
        p = int(num_processors)
        side = round(p ** (1 / 3))
        # fight float cube-root imprecision for large powers
        for cand in (side - 1, side, side + 1):
            if cand > 0 and cand**3 == p:
                side = cand
                break
        else:
            raise TopologySizeError(
                f"3D grid layouts need 8**m processors (a power-of-two cube side), got {p}"
            )
        if not is_power_of_two(side):
            raise TopologySizeError(
                f"3D grid layouts need a power-of-two cube side, got side {side}"
            )
        self._side = side
        self._curve_name = curve
        sfc = get_curve3d(curve, side.bit_length() - 1)
        self._gx, self._gy, self._gz = sfc.decode(np.arange(p, dtype=np.int64))

    @property
    def side(self) -> int:
        """Grid side length (``p**(1/3)``)."""
        return self._side

    @property
    def curve_name(self) -> str:
        """Name of the 3D processor-order SFC realising the layout."""
        return self._curve_name

    def coords(self, ranks: IntArray) -> tuple[IntArray, IntArray, IntArray]:
        """Grid coordinates of each rank (vectorised lookup)."""
        return self._gx[ranks], self._gy[ranks], self._gz[ranks]


class Mesh3DTopology(DirectTopology):
    """Cubic 3D mesh; distance = 3D Manhattan distance between positions."""

    name = "mesh3d"

    def __init__(self, num_processors: int, processor_curve: str = "rowmajor3d"):
        super().__init__(num_processors)
        self._layout = GridLayout3D(num_processors, processor_curve)

    @property
    def layout(self) -> GridLayout3D:
        """The rank → grid-position bijection."""
        return self._layout

    @property
    def side(self) -> int:
        """Grid side length."""
        return self._layout.side

    @property
    def diameter(self) -> int:
        return 3 * (self.side - 1)

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        ax, ay, az = self._layout.coords(a)
        bx, by, bz = self._layout.coords(b)
        return np.abs(ax - bx) + np.abs(ay - by) + np.abs(az - bz)

    def links(self) -> IntArray:
        side = self.side
        rank = np.empty((side, side, side), dtype=np.int64)
        gx, gy, gz = self._layout.coords(np.arange(self.num_processors, dtype=np.int64))
        rank[gx, gy, gz] = np.arange(self.num_processors, dtype=np.int64)
        pairs = []
        for axis in range(3):
            lead = [slice(None)] * 3
            trail = [slice(None)] * 3
            lead[axis] = slice(1, None)
            trail[axis] = slice(None, -1)
            pairs.append(
                np.stack([rank[tuple(trail)].ravel(), rank[tuple(lead)].ravel()], axis=1)
            )
        return np.sort(np.concatenate(pairs), axis=1)


class Torus3DTopology(Mesh3DTopology):
    """Cubic 3D torus; every axis wraps around."""

    name = "torus3d"

    @property
    def diameter(self) -> int:
        return 3 * (self.side // 2)

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        side = self.side
        ax, ay, az = self.layout.coords(a)
        bx, by, bz = self.layout.coords(b)
        dx = np.abs(ax - bx)
        dy = np.abs(ay - by)
        dz = np.abs(az - bz)
        return (
            np.minimum(dx, side - dx)
            + np.minimum(dy, side - dy)
            + np.minimum(dz, side - dz)
        )

    def links(self) -> IntArray:
        side = self.side
        rank = np.empty((side, side, side), dtype=np.int64)
        gx, gy, gz = self.layout.coords(np.arange(self.num_processors, dtype=np.int64))
        rank[gx, gy, gz] = np.arange(self.num_processors, dtype=np.int64)
        pairs = []
        for axis in range(3):
            pairs.append(
                np.stack([rank.ravel(), np.roll(rank, -1, axis=axis).ravel()], axis=1)
            )
        links = np.sort(np.concatenate(pairs), axis=1)
        return np.unique(links, axis=0)


class OctreeTopology(Topology):
    """Complete 8-ary switch tree over ``8**m`` leaf processors.

    The 3D sibling of :class:`~repro.topology.QuadtreeTopology`, with the
    same ``hop_convention`` choices.
    """

    name = "octree"

    def __init__(
        self,
        num_processors: int,
        processor_curve: str = "morton3d",
        hop_convention: str = "updown",
    ):
        super().__init__(num_processors)
        p = int(num_processors)
        # The height/code arithmetic below assumes a complete 8-ary tree.
        if not (is_power_of_two(p) and (p.bit_length() - 1) % 3 == 0):
            raise TopologySizeError(
                f"octree topologies need 8**m leaf processors "
                f"(a complete 8-ary switch tree), got {p}"
            )
        if hop_convention not in ("updown", "levels"):
            raise ValueError(
                f"unknown hop_convention {hop_convention!r}; use 'updown' or 'levels'"
            )
        self._hop_factor = 2 if hop_convention == "updown" else 1
        self._layout = GridLayout3D(num_processors, processor_curve)
        self._height = self._layout.side.bit_length() - 1
        gx, gy, gz = self._layout.coords(np.arange(num_processors, dtype=np.int64))
        self._codes = interleave3(gx, gy, gz)

    @property
    def layout(self) -> GridLayout3D:
        """The rank → leaf-position bijection."""
        return self._layout

    @property
    def height(self) -> int:
        """Tree height ``m`` (levels between a leaf and the root)."""
        return self._height

    @property
    def diameter(self) -> int:
        return self._hop_factor * self._height

    def _distance(self, a: IntArray, b: IntArray) -> IntArray:
        diff = self._codes[a] ^ self._codes[b]
        levels = (bit_length(diff) + 2) // 3
        return self._hop_factor * levels
