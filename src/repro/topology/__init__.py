"""Network topologies with vectorised hop-distance kernels.

Quick use::

    from repro.topology import make_topology

    net = make_topology("torus", 4096, processor_curve="hilbert")
    hops = net.distance([0, 17], [4095, 17])
"""

from repro.topology.base import DirectTopology, Topology
from repro.topology.bus import BusTopology
from repro.topology.cache import (
    TopologyCache,
    get_topology_cache,
    set_topology_cache,
    topology_cache_key,
)
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fat_tree import FatTreeTopology
from repro.topology.grid3d import (
    GridLayout3D,
    Mesh3DTopology,
    OctreeTopology,
    Torus3DTopology,
)
from repro.topology.hypercube import HypercubeTopology
from repro.topology.layout import GridLayout, hypercube_labels
from repro.topology.mesh import MeshTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.registry import (
    GRID3D_TOPOLOGIES,
    GRID_TOPOLOGIES,
    PAPER_TOPOLOGIES,
    TOPOLOGIES,
    make_topology,
    topology_names,
)
from repro.topology.ring import RingTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "Topology",
    "DirectTopology",
    "BusTopology",
    "RingTopology",
    "MeshTopology",
    "TorusTopology",
    "QuadtreeTopology",
    "HypercubeTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "GridLayout",
    "hypercube_labels",
    "TOPOLOGIES",
    "PAPER_TOPOLOGIES",
    "GRID_TOPOLOGIES",
    "GRID3D_TOPOLOGIES",
    "GridLayout3D",
    "Mesh3DTopology",
    "Torus3DTopology",
    "OctreeTopology",
    "make_topology",
    "topology_names",
    "TopologyCache",
    "get_topology_cache",
    "set_topology_cache",
    "topology_cache_key",
]
