"""Argument validation helpers shared across the package.

Every public entry point of the library validates its arguments through
these helpers so error messages stay uniform and informative.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.errors import ResolutionError
from repro.util.bits import is_power_of_two

__all__ = [
    "check_order",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_power_of_two",
    "as_index_array",
]

#: Largest supported curve order in 2D (side length ``2**order``); bounded
#: by the interleaving kernels (31 bits per axis).
MAX_ORDER_2D = 31


def check_order(order: int, *, max_order: int = MAX_ORDER_2D) -> int:
    """Validate a curve order ``k`` (lattice side ``2**k``) and return it."""
    k = int(order)
    if k < 0:
        raise ResolutionError(f"curve order must be >= 0, got {order}")
    if k > max_order:
        raise ResolutionError(f"curve order {order} exceeds supported maximum {max_order}")
    return k


def check_positive(value, name: str) -> int:
    """Validate a strictly positive integer parameter and return it."""
    v = int(value)
    if v <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return v


def check_nonnegative(value, name: str) -> int:
    """Validate a non-negative integer parameter and return it."""
    v = int(value)
    if v < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return v


def check_in_range(arr, low: int, high: int, name: str) -> IntArray:
    """Validate that every element of ``arr`` lies in ``[low, high)``."""
    a = as_index_array(arr, name)
    if a.size:
        mn, mx = int(a.min()), int(a.max())
        if mn < low or mx >= high:
            raise ValueError(
                f"{name} values must lie in [{low}, {high}), got range [{mn}, {mx}]"
            )
    return a


def check_power_of_two(value, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    v = int(value)
    if not is_power_of_two(v):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return v


def as_index_array(arr, name: str) -> IntArray:
    """Coerce input to an ``int64`` ndarray, rejecting non-integral data."""
    a = np.asarray(arr)
    if a.dtype == object or np.issubdtype(a.dtype, np.floating):
        if a.size and not np.all(np.equal(np.mod(a, 1), 0)):
            raise TypeError(f"{name} must contain integers")
    elif not np.issubdtype(a.dtype, np.integer) and a.size:
        raise TypeError(f"{name} must be an integer array, got dtype {a.dtype}")
    return a.astype(np.int64, copy=False)
