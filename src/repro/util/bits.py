"""Vectorised bit-manipulation kernels.

These are the hot inner loops of every space-filling-curve computation
in this package, so they are written as branch-free NumPy expressions
operating on ``uint64`` arrays (following the standard
"magic masks" constructions; see e.g. Morton order bit-spreading).

Conventions
-----------
* All public functions accept scalars or ndarrays and return ``int64``
  ndarrays (or Python ints for scalar inputs where noted).
* Coordinates are limited to 31 bits per axis in 2D and 21 bits per axis
  in 3D so the interleaved result fits into a signed 64-bit integer,
  which is far beyond any resolution the experiments use
  (the paper's largest lattice is :math:`4096 = 2^{12}`).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray

__all__ = [
    "MAX_BITS_2D",
    "MAX_BITS_3D",
    "interleave2",
    "deinterleave2",
    "interleave3",
    "deinterleave3",
    "gray_encode",
    "gray_decode",
    "popcount",
    "is_power_of_two",
    "bit_length",
]

#: Maximum supported bits per coordinate for 2D interleaving.
MAX_BITS_2D = 31
#: Maximum supported bits per coordinate for 3D interleaving.
MAX_BITS_3D = 21

_U = np.uint64  # terse local alias for mask literals


def _as_u64(value) -> np.ndarray:
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"expected integer input, got dtype {arr.dtype}")
    if arr.size and np.any(arr < 0):
        raise ValueError("bit kernels require non-negative inputs")
    return arr.astype(np.uint64, copy=False)


def _as_i64(arr: np.ndarray, scalar_in: bool) -> IntArray:
    out = arr.astype(np.int64, copy=False)
    return out[()] if scalar_in and out.ndim == 0 else out


def _spread2(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``v`` into the even bit positions."""
    v = v & _U(0xFFFFFFFF)
    v = (v | (v << _U(16))) & _U(0x0000FFFF0000FFFF)
    v = (v | (v << _U(8))) & _U(0x00FF00FF00FF00FF)
    v = (v | (v << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << _U(2))) & _U(0x3333333333333333)
    v = (v | (v << _U(1))) & _U(0x5555555555555555)
    return v


def _squash2(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread2`: gather the even bit positions."""
    v = v & _U(0x5555555555555555)
    v = (v | (v >> _U(1))) & _U(0x3333333333333333)
    v = (v | (v >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> _U(4))) & _U(0x00FF00FF00FF00FF)
    v = (v | (v >> _U(8))) & _U(0x0000FFFF0000FFFF)
    v = (v | (v >> _U(16))) & _U(0x00000000FFFFFFFF)
    return v


def _spread3(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``v`` to every third bit position."""
    v = v & _U(0x1FFFFF)
    v = (v | (v << _U(32))) & _U(0x1F00000000FFFF)
    v = (v | (v << _U(16))) & _U(0x1F0000FF0000FF)
    v = (v | (v << _U(8))) & _U(0x100F00F00F00F00F)
    v = (v | (v << _U(4))) & _U(0x10C30C30C30C30C3)
    v = (v | (v << _U(2))) & _U(0x1249249249249249)
    return v


def _squash3(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread3`."""
    v = v & _U(0x1249249249249249)
    v = (v | (v >> _U(2))) & _U(0x10C30C30C30C30C3)
    v = (v | (v >> _U(4))) & _U(0x100F00F00F00F00F)
    v = (v | (v >> _U(8))) & _U(0x1F0000FF0000FF)
    v = (v | (v >> _U(16))) & _U(0x1F00000000FFFF)
    v = (v | (v >> _U(32))) & _U(0x1FFFFF)
    return v


def interleave2(x, y) -> IntArray:
    """Interleave two coordinate arrays into Morton (Z-order) codes.

    Bit ``i`` of ``x`` lands at position ``2i + 1`` and bit ``i`` of ``y``
    at position ``2i``, i.e. ``x`` supplies the **high** bit of every
    pair.  With this convention the first coordinate selects the quadrant
    column, matching the curve illustrations in the paper (Fig. 1(b)).
    """
    scalar = np.isscalar(x) and np.isscalar(y)
    xu, yu = _as_u64(x), _as_u64(y)
    if xu.size and (np.any(xu >> _U(MAX_BITS_2D)) or np.any(yu >> _U(MAX_BITS_2D))):
        raise ValueError(f"coordinates exceed {MAX_BITS_2D} bits")
    return _as_i64((_spread2(xu) << _U(1)) | _spread2(yu), scalar)


def deinterleave2(code) -> tuple[IntArray, IntArray]:
    """Split Morton codes back into ``(x, y)`` coordinate arrays."""
    scalar = np.isscalar(code)
    c = _as_u64(code)
    return _as_i64(_squash2(c >> _U(1)), scalar), _as_i64(_squash2(c), scalar)


def interleave3(x, y, z) -> IntArray:
    """Interleave three coordinate arrays into 3D Morton codes.

    ``x`` supplies the highest bit of every triple, then ``y``, then ``z``.
    """
    scalar = np.isscalar(x) and np.isscalar(y) and np.isscalar(z)
    xu, yu, zu = _as_u64(x), _as_u64(y), _as_u64(z)
    for a in (xu, yu, zu):
        if a.size and np.any(a >> _U(MAX_BITS_3D)):
            raise ValueError(f"coordinates exceed {MAX_BITS_3D} bits")
    code = (_spread3(xu) << _U(2)) | (_spread3(yu) << _U(1)) | _spread3(zu)
    return _as_i64(code, scalar)


def deinterleave3(code) -> tuple[IntArray, IntArray, IntArray]:
    """Split 3D Morton codes back into ``(x, y, z)`` coordinate arrays."""
    scalar = np.isscalar(code)
    c = _as_u64(code)
    return (
        _as_i64(_squash3(c >> _U(2)), scalar),
        _as_i64(_squash3(c >> _U(1)), scalar),
        _as_i64(_squash3(c), scalar),
    )


def gray_encode(value) -> IntArray:
    """Map binary integers to their reflected Gray code: ``g = v ^ (v >> 1)``."""
    scalar = np.isscalar(value)
    v = _as_u64(value)
    return _as_i64(v ^ (v >> _U(1)), scalar)


def gray_decode(code) -> IntArray:
    """Invert :func:`gray_encode` via a logarithmic prefix-XOR cascade."""
    scalar = np.isscalar(code)
    v = _as_u64(code).copy()
    shift = 1
    while shift < 64:
        v ^= v >> _U(shift)
        shift <<= 1
    return _as_i64(v, scalar)


def popcount(value) -> IntArray:
    """Count set bits per element (SWAR algorithm on ``uint64``)."""
    scalar = np.isscalar(value)
    v = _as_u64(value).copy()
    v = v - ((v >> _U(1)) & _U(0x5555555555555555))
    v = (v & _U(0x3333333333333333)) + ((v >> _U(2)) & _U(0x3333333333333333))
    v = (v + (v >> _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    with np.errstate(over="ignore"):  # the SWAR multiply wraps mod 2**64 by design
        v = (v * _U(0x0101010101010101)) >> _U(56)
    return _as_i64(v, scalar)


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    v = int(value)
    return v > 0 and (v & (v - 1)) == 0


def bit_length(value) -> IntArray:
    """Per-element bit length (position of highest set bit plus one)."""
    scalar = np.isscalar(value)
    v = _as_u64(value).copy()
    out = np.zeros(v.shape, dtype=np.int64)
    shift = 32
    while shift:
        mask = v >> _U(shift) != 0
        out[mask] += shift
        v = np.where(mask, v >> _U(shift), v)
        shift >>= 1
    out += (v != 0).astype(np.int64)
    return out[()] if scalar and out.ndim == 0 else out
