"""Random-number-generator plumbing.

All stochastic components of the library (particle distributions,
multi-trial experiment runners) accept a ``seed`` argument that may be
``None``, an integer, a :class:`numpy.random.SeedSequence` or an already
constructed :class:`numpy.random.Generator`.  These helpers normalise
that argument and derive independent child streams for parallel trials,
following NumPy's recommended ``SeedSequence.spawn`` discipline so trial
results are reproducible regardless of execution order.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike

__all__ = ["as_generator", "spawn_seeds"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise any accepted seed-like value into a ``Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` statistically independent child seed sequences.

    A ``Generator`` input is not spawnable deterministically, so it is
    used to draw one entropy integer which then roots the spawn tree.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n)
