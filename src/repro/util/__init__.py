"""Low-level utilities: bit kernels, argument validation, RNG handling."""

from repro.util.bits import (
    deinterleave2,
    deinterleave3,
    gray_decode,
    gray_encode,
    interleave2,
    interleave3,
    is_power_of_two,
    popcount,
)
from repro.util.rng import as_generator, spawn_seeds
from repro.util.validation import (
    as_index_array,
    check_in_range,
    check_nonnegative,
    check_order,
    check_positive,
    check_power_of_two,
)

__all__ = [
    "interleave2",
    "deinterleave2",
    "interleave3",
    "deinterleave3",
    "gray_encode",
    "gray_decode",
    "popcount",
    "is_power_of_two",
    "as_generator",
    "spawn_seeds",
    "as_index_array",
    "check_order",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_power_of_two",
]
