"""A tiny name → factory registry used by curves, topologies and distributions."""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from repro.errors import UnknownNameError

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """Ordered mapping from canonical names to factories.

    Lookup is case-insensitive and tolerant of ``-``/``_``/space
    variations so experiment configs can say ``"Z-Curve"`` or
    ``"zcurve"`` interchangeably.
    """

    def __init__(self, kind: str):
        self._kind = kind
        self._factories: dict[str, Callable[..., T]] = {}
        self._aliases: dict[str, str] = {}

    @staticmethod
    def _canon(name: str) -> str:
        return name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")

    def register(self, name: str, factory: Callable[..., T], *, aliases: tuple[str, ...] = ()) -> None:
        """Register ``factory`` under ``name`` (plus optional aliases)."""
        key = self._canon(name)
        if key in self._aliases:
            raise ValueError(f"{self._kind} {name!r} already registered")
        self._factories[name] = factory
        self._aliases[key] = name
        for alias in aliases:
            akey = self._canon(alias)
            existing = self._aliases.get(akey)
            if existing is not None and existing != name:
                raise ValueError(
                    f"{self._kind} alias {alias!r} already registered for {existing!r}"
                )
            self._aliases[akey] = name

    def create(self, name: str, *args, **kwargs) -> T:
        """Instantiate the factory registered under ``name``."""
        canonical = self._aliases.get(self._canon(name))
        if canonical is None:
            # Sorted, not registration order: the message is a lookup aid.
            raise UnknownNameError(self._kind, name, tuple(sorted(self._factories)))
        return self._factories[canonical](*args, **kwargs)

    def canonical(self, name: str) -> str:
        """Resolve any accepted spelling to the canonical registered name."""
        canonical = self._aliases.get(self._canon(name))
        if canonical is None:
            raise UnknownNameError(self._kind, name, tuple(sorted(self._factories)))
        return canonical

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._factories)

    def __contains__(self, name: str) -> bool:
        return self._canon(name) in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)
