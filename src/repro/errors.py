"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing genuine programming errors (``TypeError`` and friends are
still raised for mis-typed arguments where appropriate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ResolutionError",
    "TopologySizeError",
    "SamplingError",
    "UnknownNameError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or model was configured with inconsistent parameters."""


class ResolutionError(ConfigurationError):
    """A spatial resolution is invalid (non power of two, out of range...)."""


class TopologySizeError(ConfigurationError):
    """A topology was asked to host an unsupported number of processors.

    For example a 2D torus requires a perfect-square processor count and a
    hypercube requires a power of two.
    """


class SamplingError(ReproError, RuntimeError):
    """A particle distribution could not produce the requested sample.

    Raised when rejection resampling cannot find ``n`` distinct occupied
    cells (e.g. ``n`` exceeds the number of lattice cells with
    non-negligible probability mass).
    """


class UnknownNameError(ReproError, KeyError):
    """A registry lookup failed (unknown curve, topology or distribution)."""

    def __init__(self, kind: str, name: str, known: tuple[str, ...]):
        self.kind = kind
        self.name = name
        self.known = known
        super().__init__(
            f"unknown {kind} {name!r}; known {kind}s: {', '.join(known)}"
        )
