"""Configuration-recommendation query service over the result store.

The paper's §VII payoff is *configuration selection*: "the curve that
gives rise to the lowest ACD value can then be selected."  At
production scale that selection is a per-deployment *query* — "given
``p`` processors, this particle distribution and this problem size,
which {topology, processor-order} should I run?" — and it only earns
its keep if the answer comes from precomputed results in microseconds,
not a fresh multi-minute campaign per request.

This module is that query layer, built from three pieces:

* :class:`RecommendRequest` — the canonical query: workload fields
  (``num_processors``, ``distribution``, ``num_particles``) plus the
  candidate grid (topologies x processor curves), campaign parameters
  (``trials``/``seed``) and the ranking ``objective`` — any registered
  communication metric (``acd`` by default; ``energy``,
  ``data_volume``, ... — see :mod:`repro.metrics.registry`).  Requests
  lower to the *same* :func:`~repro.experiments.study.store_key`
  content addresses the study driver uses — the objective name is part
  of every non-ACD unit's key — so a store warmed by ``precompute``
  (or by any earlier study run over the same cases) answers requests
  directly.
* :class:`QueryService` — answers requests from the store when warm;
  on a miss it computes exactly the missing cases through the grouped
  campaign engine (:func:`~repro.experiments.campaign.iter_campaign`,
  which fans ``(instance, trial)`` units out through
  ``execute_units``), persisting each case as it completes.  Identical
  in-flight requests **coalesce**: the canonical request key maps to
  one shared computation that every concurrent caller awaits
  (``service.coalesced`` counts the joiners), so a thundering herd of
  the same cold query costs one campaign, not N.
* a stdlib-``asyncio`` HTTP front end (:func:`serve`) with
  ``POST /recommend``, ``GET /healthz``, ``GET /stats`` and
  ``POST /shutdown`` — plus the ``precompute`` command that fills the
  chosen store backend over the whole paper grid and ``store stats``
  for inspecting any backend uniformly.

Every answer carries a per-request manifest section; a warm request
proves its cheapness with ``"campaign.trials": 0``.  Service lifetime
counters (``service.requests/hits/coalesced/computed``) surface in the
:class:`~repro.obs.RunManifest` written at shutdown.

Usage::

    repro-service precompute --store sqlite://results.db --scale small
    repro-service serve --store sqlite://results.db --port 8023
    curl -d '{"num_processors": 4096, "distribution": "uniform",
              "num_particles": 60000}' localhost:8023/recommend
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from repro import obs
from repro.distributions.registry import PAPER_DISTRIBUTIONS
from repro.errors import UnknownNameError
from repro.experiments.campaign import iter_campaign
from repro.experiments.config import FmmCase, active_scale
from repro.experiments.metric_studies import evaluate_communication_metric
from repro.experiments.runner import execute_units, resolve_jobs
from repro.experiments.store import MISS, ResultStore, canonical_key, open_store
from repro.experiments.study import (
    ComputeUnit,
    FmmUnit,
    StudyPlan,
    execute_compute_unit,
    store_key,
)
from repro.experiments.topology_study import FIG6_TOPOLOGIES
from repro.metrics.registry import METRICS, get_metric
from repro.obs import RunManifest, recording
from repro.runtime import runtime_config
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import topology_names

__all__ = [
    "RecommendRequest",
    "QueryService",
    "RequestError",
    "default_order",
    "request_plan",
    "rank_results",
    "serve",
    "precompute",
    "main",
]

#: The candidate networks a request ranks by default (the Fig. 6 set).
DEFAULT_TOPOLOGIES: tuple[str, ...] = FIG6_TOPOLOGIES

#: The paper's three particle distributions (§V).
DEFAULT_DISTRIBUTIONS: tuple[str, ...] = PAPER_DISTRIBUTIONS


class RequestError(ValueError):
    """A recommend request that cannot be served (HTTP 400)."""


def default_order(num_particles: int) -> int:
    """Lattice order for a problem size: <= 25% cell occupancy, min 2^4.

    The paper's workloads keep the lattice sparse (250k particles on a
    1024x1024 lattice is ~24% occupancy); matching that keeps derived
    requests in the regime the published results characterise.
    """
    order = 4
    while 4**order < 4 * num_particles:
        order += 1
    return order


@dataclass(frozen=True)
class RecommendRequest:
    """One canonical "which configuration should I run?" query.

    The workload triple (``num_processors``, ``distribution``,
    ``num_particles``) is required; everything else defaults to the
    paper's conventions (Fig. 6 candidate topologies, the four paper
    curves as processor orders, Hilbert particle order, r = 1).
    ``order`` defaults to the sparsest-paper-like lattice for the
    problem size (:func:`default_order`).

    Two requests with equal payloads coalesce; the payload also seeds
    the store keys, so equality here is exactly "same precomputed
    answer".
    """

    num_processors: int
    distribution: str
    num_particles: int
    order: int = 0  # 0 -> derived from num_particles in __post_init__
    radius: int = 1
    particle_curve: str = "hilbert"
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES
    curves: tuple[str, ...] = PAPER_CURVES
    trials: int = 1
    seed: int = 2013
    #: The objective to rank by: any registered *communication* metric
    #: (see :mod:`repro.metrics.registry`).  Stored canonically so two
    #: spellings of the same objective coalesce and share store keys.
    objective: str = "acd"

    def __post_init__(self):
        try:
            object.__setattr__(self, "objective", METRICS.canonical(self.objective))
        except UnknownNameError:
            raise RequestError(
                f"unknown objective {self.objective!r}; registered: "
                f"{', '.join(sorted(METRICS.names()))}"
            ) from None
        engine = get_metric(self.objective)
        if engine.kind != "communication":
            raise RequestError(
                f"objective {self.objective!r} is a {engine.kind} metric; "
                "/recommend ranks communication objectives"
            )
        if self.order == 0:
            object.__setattr__(self, "order", default_order(self.num_particles))
        if self.num_particles < 1:
            raise RequestError(f"num_particles must be >= 1, got {self.num_particles}")
        p = self.num_processors
        if p < 4 or p & (p - 1) or (p.bit_length() - 1) % 2:
            # Mesh/torus need a square side, quadtree a power of four,
            # hypercube a power of two: powers of four satisfy all.
            raise RequestError(f"num_processors must be a power of four >= 4, got {p}")
        if self.num_particles > 4**self.order:
            raise RequestError(
                f"{self.num_particles} particles exceed the 2^{self.order} "
                f"lattice's {4**self.order} cells"
            )
        if self.trials < 1:
            raise RequestError(f"trials must be >= 1, got {self.trials}")
        if not self.topologies or not self.curves:
            raise RequestError("topologies and curves must be non-empty")
        known = set(topology_names())
        for name in self.topologies:
            if name not in known:
                raise RequestError(
                    f"unknown topology {name!r}; known: {', '.join(sorted(known))}"
                )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RecommendRequest":
        """Build a request from a JSON body, rejecting unknown fields."""
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        fields = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - fields
        if unknown:
            raise RequestError(f"unknown request fields: {', '.join(sorted(unknown))}")
        missing = {"num_processors", "distribution", "num_particles"} - set(payload)
        if missing:
            raise RequestError(f"missing request fields: {', '.join(sorted(missing))}")
        kwargs = dict(payload)
        for name in ("topologies", "curves"):
            if name in kwargs:
                value = kwargs[name]
                if isinstance(value, str) or not isinstance(value, Sequence):
                    raise RequestError(f"{name} must be a list of names")
                kwargs[name] = tuple(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise RequestError(str(exc)) from None

    def payload(self) -> dict[str, Any]:
        """JSON-able identity of the request (the coalescing key)."""
        return {
            "num_processors": self.num_processors,
            "distribution": self.distribution,
            "num_particles": self.num_particles,
            "order": self.order,
            "radius": self.radius,
            "particle_curve": self.particle_curve,
            "topologies": list(self.topologies),
            "curves": list(self.curves),
            "trials": self.trials,
            "seed": self.seed,
            "objective": self.objective,
        }

    def canonical(self) -> str:
        """Canonical JSON text of the payload (coalescing map key)."""
        return canonical_key(self.payload())


def request_plan(request: RecommendRequest) -> StudyPlan:
    """Lower a request to a study plan over its candidate grid.

    One unit per (topology, processor-curve) pair.  The default
    ``"acd"`` objective lowers to :class:`~repro.experiments.study.
    FmmUnit`\\ s: every case shares the instance fields, so a cold
    request generates each trial's events exactly once and evaluates
    them against all candidate networks — and :func:`~repro.experiments.
    study.store_key` gives each unit the same content address a study
    over the same case would use.  Any other objective lowers to
    :class:`~repro.experiments.study.ComputeUnit`\\ s over
    :func:`~repro.experiments.metric_studies.
    evaluate_communication_metric`, whose keyword arguments — metric
    name included — form the store key, so per-objective results never
    collide and stay addressable by the metric studies.
    """
    if request.objective == "acd":
        units: tuple[FmmUnit | ComputeUnit, ...] = tuple(
            FmmUnit(
                key=(topology, curve),
                case=FmmCase(
                    num_particles=request.num_particles,
                    order=request.order,
                    num_processors=request.num_processors,
                    topology=topology,
                    particle_curve=request.particle_curve,
                    processor_curve=curve,
                    distribution=request.distribution,
                    radius=request.radius,
                ),
            )
            for topology in request.topologies
            for curve in request.curves
        )
    else:
        units = tuple(
            ComputeUnit(
                key=(topology, curve),
                fn=evaluate_communication_metric,
                kwargs=(
                    ("metric", request.objective),
                    (
                        "case",
                        {
                            "num_particles": request.num_particles,
                            "order": request.order,
                            "num_processors": request.num_processors,
                            "topology": topology,
                            "particle_curve": request.particle_curve,
                            "processor_curve": curve,
                            "distribution": request.distribution,
                            "radius": request.radius,
                        },
                    ),
                    ("trials", request.trials),
                    ("seed", request.seed),
                ),
            )
            for topology in request.topologies
            for curve in request.curves
        )
    return StudyPlan(units=units, trials=request.trials, seed=request.seed)


def rank_results(plan: StudyPlan, outputs: Sequence[Any]) -> list[dict[str, Any]]:
    """Rank candidate configurations best-first by predicted cost.

    The §VII selection rule generalised to any objective: total cost
    per case, ascending, with (topology, curve) as the deterministic
    tie-break.  For the ``"acd"`` objective that total is the weighted
    hop count (``nfi_acd * nfi_events + ffi_acd * ffi_events``); other
    objectives report the metric's own exact integer totals (energy
    units, bytes, ...) with per-event means alongside.
    """
    entries = []
    for unit, result in zip(plan.units, outputs):
        topology, curve = unit.key
        if isinstance(result, Mapping):  # metric-objective ComputeUnit output
            score = result["nfi"]["total"] + result["ffi"]["total"]
            entries.append(
                {
                    "topology": topology,
                    "processor_curve": curve,
                    "score": score,
                    "nfi_mean": result["nfi"]["mean"],
                    "ffi_mean": result["ffi"]["mean"],
                }
            )
            continue
        score = result.nfi_acd * result.nfi_events + result.ffi_acd * result.ffi_events
        entries.append(
            {
                "topology": topology,
                "processor_curve": curve,
                "score": score,
                "nfi_acd": result.nfi_acd,
                "ffi_acd": result.ffi_acd,
            }
        )
    entries.sort(key=lambda e: (e["score"], e["topology"], e["processor_curve"]))
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return entries


class QueryService:
    """Store-first request answering with in-flight coalescing.

    The service owns no event loop — :meth:`recommend` is a coroutine
    the HTTP front end (or a test) drives.  Lifetime counters live in
    :attr:`counters` (plain ints, merged into the shutdown manifest);
    each response additionally carries its own exact manifest section.

    Concurrency model: coalescing and counter updates happen on the
    event loop (single-threaded, no awaits between check and insert, so
    the in-flight map is race-free); actual campaign computation runs
    in a worker thread, serialized by a lock so each computation's
    fresh recorder observes only its own ``campaign.trials``.
    """

    def __init__(self, store: ResultStore | None, *, jobs: int | None = None):
        self.store = store
        self.jobs = jobs
        self.counters: dict[str, int] = {
            "service.requests": 0,
            "service.hits": 0,
            "service.coalesced": 0,
            "service.computed": 0,
        }
        self._inflight: dict[str, asyncio.Task] = {}
        self._compute_lock = asyncio.Lock()
        #: Bound HTTP port, published by :func:`serve` (useful with port=0).
        self.port: int | None = None

    async def recommend(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one request, joining an identical in-flight one if any."""
        request = RecommendRequest.from_payload(payload)
        key = request.canonical()
        self.counters["service.requests"] += 1
        task = self._inflight.get(key)
        if task is not None:
            self.counters["service.coalesced"] += 1
            return await asyncio.shield(task)
        task = asyncio.create_task(self._answer(request))
        self._inflight[key] = task
        try:
            return await task
        finally:
            del self._inflight[key]

    async def _answer(self, request: RecommendRequest) -> dict[str, Any]:
        with obs.span("service.request", distribution=request.distribution):
            plan = request_plan(request)
            keys = [store_key(unit, plan) for unit in plan.units]
            if self.store is not None:
                outputs = [self.store.get(k) if k is not None else MISS for k in keys]
            else:
                outputs = [MISS] * len(keys)
            missing = [i for i, out in enumerate(outputs) if out is MISS]
            if not missing:
                self.counters["service.hits"] += 1
                section = {
                    "campaign.trials": 0,
                    "cases": len(outputs),
                    "store.hits": len(outputs),
                    "store.misses": 0,
                }
                return self._respond(request, plan, outputs, "store", section)
            self.counters["service.computed"] += 1
            async with self._compute_lock:
                section = await asyncio.to_thread(
                    self._compute, plan, keys, outputs, missing
                )
            return self._respond(request, plan, outputs, "computed", section)

    def _compute(
        self,
        plan: StudyPlan,
        keys: list[Any],
        outputs: list[Any],
        missing: list[int],
    ) -> dict[str, Any]:
        """Run the missing cases (worker thread, serialized by the lock).

        A fresh recorder scopes the campaign counters to this request,
        so the returned section's ``campaign.trials`` is exactly what
        this computation executed; cases persist as they complete, so
        even an aborted request leaves its finished cases warm.
        ``"acd"`` requests run through the grouped campaign engine;
        metric objectives fan their compute units out over the same
        worker pool.
        """
        case_idx = [i for i in missing if isinstance(plan.units[i], FmmUnit)]
        comp_idx = [i for i in missing if isinstance(plan.units[i], ComputeUnit)]
        with recording() as rec:
            if case_idx:
                stream = iter_campaign(
                    [plan.units[i].case for i in case_idx],
                    trials=plan.trials,
                    seed=plan.seed,
                    parts=plan.parts,
                    jobs=self.jobs,
                )
                for local, result in stream:
                    i = case_idx[local]
                    outputs[i] = result
                    if self.store is not None and keys[i] is not None:
                        self.store.put(keys[i], result)
            if comp_idx:
                results = execute_units(
                    execute_compute_unit,
                    [(plan.units[i],) for i in comp_idx],
                    resolve_jobs(self.jobs),
                )
                for local, result in results:
                    i = comp_idx[local]
                    outputs[i] = result
                    if self.store is not None and keys[i] is not None:
                        self.store.put(keys[i], result)
        return {
            "campaign.trials": int(rec.counters.get("campaign.trials", 0)),
            "cases": len(outputs),
            "store.hits": len(outputs) - len(missing),
            "store.misses": len(missing),
        }

    def _respond(
        self,
        request: RecommendRequest,
        plan: StudyPlan,
        outputs: Sequence[Any],
        source: str,
        section: dict[str, Any],
    ) -> dict[str, Any]:
        return {
            "request": request.payload(),
            "ranking": rank_results(plan, outputs),
            "source": source,
            "manifest": section,
        }

    def stats(self) -> dict[str, Any]:
        """Lifetime counters plus the backing store's storage profile."""
        out: dict[str, Any] = dict(self.counters)
        if self.store is not None:
            out["store"] = self.store.storage_stats()
        return out


# --------------------------------------------------------------------------
# HTTP front end (stdlib asyncio; one short-lived connection per request)
# --------------------------------------------------------------------------

_MAX_BODY = 1 << 20  # 1 MiB: recommend payloads are tiny


async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
    """Parse method, path and body from one HTTP/1.x request."""
    line = await reader.readline()
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise RequestError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise RequestError("bad Content-Length") from None
    if length > _MAX_BODY:
        raise RequestError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


def _http_response(status: int, payload: dict[str, Any]) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"}
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


async def _dispatch(
    service: QueryService,
    shutdown: asyncio.Event,
    method: str,
    path: str,
    body: bytes,
) -> tuple[int, dict[str, Any]]:
    if path == "/healthz":
        return 200, {"status": "ok"}
    if path == "/stats":
        return 200, service.stats()
    if path == "/shutdown":
        shutdown.set()
        return 200, {"status": "shutting down"}
    if path == "/recommend":
        if method not in ("POST", "GET"):
            return 405, {"error": "use POST /recommend"}
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return 400, {"error": "request body must be JSON"}
        return 200, await service.recommend(payload)
    return 404, {"error": f"unknown path {path!r}"}


async def serve(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 8023,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Serve requests until ``POST /shutdown`` (or cancellation).

    ``ready`` (if given) is set once the socket is listening — tests
    use it to avoid polling.  With ``port=0`` the OS picks a free port;
    the bound address is printed to stderr either way.
    """

    shutdown = asyncio.Event()

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await _read_request(reader)
        except (RequestError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            status, payload = await _dispatch(service, shutdown, method, path, body)
        except RequestError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # a failing computation must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        writer.write(_http_response(status, payload))
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    server = await asyncio.start_server(handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    service.port = bound  # published for tests/tools driving port=0
    print(f"repro-service listening on http://{host}:{bound}", file=sys.stderr, flush=True)
    if ready is not None:
        ready.set()
    async with server:
        await shutdown.wait()


# --------------------------------------------------------------------------
# precompute: fill a store over the paper grid
# --------------------------------------------------------------------------


def precompute(
    store: ResultStore,
    *,
    scale: str | None = None,
    num_particles: int | None = None,
    num_processors: int | None = None,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    curves: Sequence[str] = PAPER_CURVES,
    trials: int = 1,
    seed: int = 2013,
    jobs: int | None = None,
    objective: str = "acd",
) -> dict[str, int]:
    """Warm a store over the full recommendation grid.

    Builds, per distribution, the *same* plan a ``/recommend`` request
    for that workload (and ``objective``) would build — so every
    precomputed entry is addressable by the service with zero key
    drift.  Workload size defaults to the active scale's Fig. 6
    parameters.  Already-stored cases are skipped; the grid resumes and
    extends incrementally.
    """
    preset = active_scale(scale)
    n = num_particles if num_particles is not None else preset.topo_particles
    p = num_processors if num_processors is not None else preset.topo_processors
    stats = {"cases": 0, "reused": 0, "computed": 0, "trials": 0}
    base = RecommendRequest(
        num_processors=p,
        distribution=distributions[0],
        num_particles=n,
        topologies=tuple(topologies),
        curves=tuple(curves),
        trials=trials,
        seed=seed,
        objective=objective,
    )
    for distribution in distributions:
        request = replace(base, distribution=distribution)
        plan = request_plan(request)
        keys = [store_key(unit, plan) for unit in plan.units]
        missing = [i for i, k in enumerate(keys) if k is None or store.get(k) is MISS]
        stats["cases"] += len(keys)
        stats["reused"] += len(keys) - len(missing)
        if not missing:
            continue
        case_idx = [i for i in missing if isinstance(plan.units[i], FmmUnit)]
        comp_idx = [i for i in missing if isinstance(plan.units[i], ComputeUnit)]
        with recording() as rec:
            if case_idx:
                stream = iter_campaign(
                    [plan.units[i].case for i in case_idx],
                    trials=plan.trials,
                    seed=plan.seed,
                    parts=plan.parts,
                    jobs=jobs,
                )
                for local, result in stream:
                    i = case_idx[local]
                    if keys[i] is not None:
                        store.put(keys[i], result)
                    stats["computed"] += 1
            if comp_idx:
                results = execute_units(
                    execute_compute_unit,
                    [(plan.units[i],) for i in comp_idx],
                    resolve_jobs(jobs),
                )
                for local, result in results:
                    i = comp_idx[local]
                    if keys[i] is not None:
                        store.put(keys[i], result)
                    stats["computed"] += 1
        stats["trials"] += int(rec.counters.get("campaign.trials", 0))
    return stats


# --------------------------------------------------------------------------
# CLI: repro-service {serve, precompute, store stats}
# --------------------------------------------------------------------------


def _store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help="result store: a directory path or sqlite://path URL "
        "(default: REPRO_STORE env var)",
    )


def _resolve_store(url: str | None, *, required: bool) -> ResultStore | None:
    target = url if url is not None else runtime_config().store_dir
    if target is None:
        if required:
            raise SystemExit("no store configured: pass --store or set REPRO_STORE")
        return None
    return open_store(target)


def _run_serve(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store, required=False)
    service = QueryService(store, jobs=args.jobs)

    async def run() -> None:
        await serve(service, host=args.host, port=args.port)

    with recording() as rec:
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    rec.merge_counters(service.counters)
    metrics_path = args.metrics or runtime_config().metrics_path
    if metrics_path:
        manifest = RunManifest.from_recorder(
            rec, config=runtime_config().as_dict(), command=["serve"]
        )
        target = manifest.write(metrics_path)
        print(f"wrote run manifest to {target}", file=sys.stderr)
    return 0


def _run_precompute(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store, required=True)
    assert store is not None
    stats = precompute(
        store,
        scale=args.scale,
        num_particles=args.particles,
        num_processors=args.processors,
        distributions=tuple(args.distributions),
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        objective=args.objective,
    )
    print(
        f"precompute: {stats['cases']} cases "
        f"({stats['reused']} reused, {stats['computed']} computed, "
        f"{stats['trials']} trials) -> {store.backend.kind}:{store.backend.location}"
    )
    return 0


def _run_store_stats(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store, required=True)
    assert store is not None
    stats = store.storage_stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
    else:
        width = max(len(k) for k in stats)
        for name, value in stats.items():
            print(f"{name:<{width}}  {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-service`` (also reachable through
    ``repro-experiments serve|precompute|store``)."""
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Query service and store tooling for SFC configuration selection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="serve /recommend over HTTP")
    _store_arg(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8023, help="0 picks a free port")
    p_serve.add_argument("--jobs", type=int, default=None, help="workers for cold requests")
    p_serve.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a RunManifest (with the service section) at shutdown",
    )

    p_pre = sub.add_parser("precompute", help="warm a store over the paper grid")
    _store_arg(p_pre)
    p_pre.add_argument("--scale", default=None, choices=["small", "paper"])
    p_pre.add_argument("--particles", type=int, default=None, help="override workload size")
    p_pre.add_argument(
        "--processors", type=int, default=None, help="override processor count"
    )
    p_pre.add_argument(
        "--distributions",
        nargs="+",
        default=list(DEFAULT_DISTRIBUTIONS),
        metavar="NAME",
    )
    p_pre.add_argument("--trials", type=int, default=1)
    p_pre.add_argument("--seed", type=int, default=2013)
    p_pre.add_argument("--jobs", type=int, default=None)
    p_pre.add_argument(
        "--objective",
        default="acd",
        metavar="NAME",
        help="communication metric to precompute (any registered objective; "
        "default: acd)",
    )

    p_store = sub.add_parser("store", help="inspect a store backend")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_stats = store_sub.add_parser("stats", help="entry count, bytes, schema, quarantine")
    _store_arg(p_stats)
    p_stats.add_argument("--json", action="store_true", help="machine-readable output")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "precompute":
        return _run_precompute(args)
    return _run_store_stats(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
