"""Seeded, trial-averaged execution of FMM experiment cases.

"The results presented here are averages over multiple independent
trials for each set of parameters" (§VI); :func:`run_case` reproduces
that discipline with NumPy's spawned seed sequences so any single trial
can be re-derived from the experiment seed.

Because every trial draws its particles from an independent child seed,
trials are embarrassingly parallel: ``run_case(..., jobs=4)`` fans them
out over a ``concurrent.futures`` process pool and produces bit-for-bit
the same averages as the serial path.  ``jobs`` defaults to the
process-wide setting installed by :func:`set_default_jobs` (the CLI's
``--jobs`` flag) or the ``REPRO_JOBS`` environment variable, falling
back to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike
from repro.experiments.artifacts import evaluate_artifact, get_trial_artifact
from repro.experiments.config import FmmCase
from repro.experiments.executor import (  # noqa: F401  (re-exported API)
    ExecutionPolicy,
    UnitFailedError,
    UnitTimeoutError,
    execute_units,
    shared_executor,
    shutdown_shared_executor,
)
from repro.metrics.acd import ACDResult
from repro.runtime import runtime_config
from repro.topology.base import Topology
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = [
    "CaseResult",
    "run_case",
    "run_trial",
    "aggregate_trials",
    "set_default_jobs",
    "resolve_jobs",
    "map_units",
    "execute_units",
    "ExecutionPolicy",
    "UnitFailedError",
    "UnitTimeoutError",
    "shared_executor",
    "shutdown_shared_executor",
]

_default_jobs: int | None = None

#: A trial's raw output: the NFI aggregate and the per-phase FFI aggregates.
TrialResult = tuple[ACDResult, dict[str, ACDResult]]


def set_default_jobs(jobs: int | None) -> None:
    """Install a process-wide default for the ``jobs`` arguments.

    ``None`` restores the built-in behaviour (serial unless the
    ``REPRO_JOBS`` environment variable is set).  Worker processes never
    inherit this setting, so nested parallelism cannot occur.
    """
    global _default_jobs
    if jobs is not None and int(jobs) < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = None if jobs is None else int(jobs)


def resolve_jobs(jobs: int | None) -> int:
    """Resolve an explicit ``jobs`` argument against the defaults."""
    if jobs is not None:
        if int(jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        return int(jobs)
    if _default_jobs is not None:
        return _default_jobs
    configured = runtime_config().jobs  # REPRO_JOBS parsed in repro.runtime
    return configured if configured is not None else 1


def map_units(fn, arglists, jobs: int, policy: ExecutionPolicy | None = None):
    """Apply ``fn`` across argument tuples, serially or over the pool.

    The ordered fan-out primitive of the experiments stack: the campaign
    engine maps ``(instance, trial)`` units and the study driver maps
    compute units through the same code path.  With ``jobs > 1`` (and
    more than one unit) the calls run on the persistent process pool —
    ``fn`` and its arguments must be picklable — otherwise in-process.
    Results are yielded in input order as they complete, so callers can
    act on each one (e.g. persist it) before the batch finishes.

    Execution is delegated to
    :func:`~repro.experiments.executor.execute_units`, so the full
    fault-tolerance policy applies — per-unit retries, wall-clock
    timeouts, broken-pool rebuilds and serial degradation — and
    worker-side counters merge into the parent recorder so aggregated
    totals agree with a serial run's at any job count.  Neither
    observability nor fault recovery ever changes the results
    themselves.  Callers that can handle out-of-order completion (the
    streaming campaign engine) should use :func:`execute_units`
    directly — it flushes finished units even when an earlier-indexed
    unit is still running or has failed.
    """
    arglists = list(arglists)
    buffered: dict[int, object] = {}
    next_index = 0
    for i, result in execute_units(fn, arglists, jobs, policy=policy):
        buffered[i] = result
        while next_index in buffered:
            yield buffered.pop(next_index)
            next_index += 1


@dataclass(frozen=True)
class CaseResult:
    """Trial-averaged ACD values for one experiment case."""

    case: FmmCase
    trials: int
    nfi_acd: float
    nfi_acd_std: float
    ffi_acd: float
    ffi_acd_std: float
    ffi_phases: dict[str, float]
    nfi_events: float
    ffi_events: float

    def row(self) -> dict[str, object]:
        """Flat mapping for tabular reporting / serialisation."""
        return {
            "topology": self.case.topology,
            "particle_curve": self.case.particle_curve,
            "processor_curve": self.case.processor_curve,
            "distribution": self.case.distribution,
            "num_particles": self.case.num_particles,
            "num_processors": self.case.num_processors,
            "radius": self.case.radius,
            "nfi_acd": self.nfi_acd,
            "ffi_acd": self.ffi_acd,
        }


# Worker processes rebuild the (deterministic) network once per distinct
# evaluation key rather than once per trial.
_worker_topologies: dict[tuple, Topology] = {}


def case_topology(case: FmmCase, topology: Topology | None = None) -> Topology:
    """The case's network, memoised per process by evaluation key."""
    key = case.evaluation_key()
    cached = _worker_topologies.get(key)
    if cached is not None:
        return cached
    if topology is None:
        topology = make_topology(
            case.topology, case.num_processors, processor_curve=case.processor_curve
        )
    _worker_topologies[key] = topology
    return topology


def run_trial(
    case: FmmCase,
    child_seed: SeedLike,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    topology: Topology | None = None,
) -> TrialResult:
    """One independent trial: draw particles, assign, evaluate ACDs.

    Event generation goes through the shared artifact layer
    (:mod:`repro.experiments.artifacts`): the trial's events are
    compacted into pair histograms — reused across every case that
    shares the instance key — and the ACD falls out of one gather + dot
    product against the (cached) distance matrix.  Integer arithmetic
    end to end keeps the result bit-identical to streaming the raw
    events.  Top-level (picklable) so process pools can execute it; the
    topology is memoised per worker process.
    """
    topology = case_topology(case, topology)
    artifact = get_trial_artifact(case, child_seed, parts)
    return evaluate_artifact(artifact, topology, parts)


def aggregate_trials(case: FmmCase, outputs: list[TrialResult]) -> CaseResult:
    """Pool per-trial results into the trial-averaged :class:`CaseResult`."""
    trials = len(outputs)
    nfi_vals, ffi_vals = [], []
    nfi_counts, ffi_counts = [], []
    phase_sums: dict[str, float] = {}
    for nfi, ffi in outputs:
        nfi_vals.append(nfi.acd)
        ffi_vals.append(ffi["combined"].acd)
        nfi_counts.append(nfi.count)
        ffi_counts.append(ffi["combined"].count)
        for phase, result in ffi.items():
            phase_sums[phase] = phase_sums.get(phase, 0.0) + result.acd
    return CaseResult(
        case=case,
        trials=trials,
        nfi_acd=float(np.mean(nfi_vals)),
        nfi_acd_std=float(np.std(nfi_vals)),
        ffi_acd=float(np.mean(ffi_vals)),
        ffi_acd_std=float(np.std(ffi_vals)),
        ffi_phases={k: v / trials for k, v in phase_sums.items()},
        nfi_events=float(np.mean(nfi_counts)),
        ffi_events=float(np.mean(ffi_counts)),
    )


def _check_parts(parts: tuple[str, ...]) -> None:
    unknown = set(parts) - {"nfi", "ffi"}
    if unknown or not parts:
        raise ValueError(f"parts must be a non-empty subset of ('nfi', 'ffi'), got {parts}")


def run_case(
    case: FmmCase,
    trials: int = 3,
    seed: SeedLike = 0,
    topology: Topology | None = None,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    jobs: int | None = None,
) -> CaseResult:
    """Evaluate one case over independent particle draws.

    Parameters
    ----------
    topology:
        Optional pre-built network matching the case (topologies are
        deterministic, so studies sweeping particle parameters can build
        one network and share it across cases).  Serial execution uses
        it directly; worker processes rebuild an identical network.
    parts:
        Which interaction models to evaluate; skipping one halves the
        work when only a single paper table is being regenerated.
    jobs:
        Worker processes for the trial fan-out (default: the setting
        from :func:`set_default_jobs` / ``REPRO_JOBS``, else serial).
        Results are identical for any value.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    _check_parts(parts)
    seeds = spawn_seeds(seed, trials)
    jobs = resolve_jobs(jobs)
    if jobs > 1 and trials > 1:
        outputs = list(map_units(run_trial, [(case, child, parts) for child in seeds], jobs))
    else:
        outputs = [run_trial(case, child, parts, topology) for child in seeds]
    return aggregate_trials(case, outputs)
