"""Seeded, trial-averaged execution of FMM experiment cases.

"The results presented here are averages over multiple independent
trials for each set of parameters" (§VI); :func:`run_case` reproduces
that discipline with NumPy's spawned seed sequences so any single trial
can be re-derived from the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike
from repro.distributions.registry import get_distribution
from repro.experiments.config import FmmCase
from repro.fmm.model import FmmCommunicationModel
from repro.metrics.acd import ACDResult, acd_breakdown, compute_acd
from repro.topology.base import Topology
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = ["CaseResult", "run_case"]


@dataclass(frozen=True)
class CaseResult:
    """Trial-averaged ACD values for one experiment case."""

    case: FmmCase
    trials: int
    nfi_acd: float
    nfi_acd_std: float
    ffi_acd: float
    ffi_acd_std: float
    ffi_phases: dict[str, float]
    nfi_events: float
    ffi_events: float

    def row(self) -> dict[str, object]:
        """Flat mapping for tabular reporting / serialisation."""
        return {
            "topology": self.case.topology,
            "particle_curve": self.case.particle_curve,
            "processor_curve": self.case.processor_curve,
            "distribution": self.case.distribution,
            "num_particles": self.case.num_particles,
            "num_processors": self.case.num_processors,
            "radius": self.case.radius,
            "nfi_acd": self.nfi_acd,
            "ffi_acd": self.ffi_acd,
        }


def run_case(
    case: FmmCase,
    trials: int = 3,
    seed: SeedLike = 0,
    topology: Topology | None = None,
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> CaseResult:
    """Evaluate one case over independent particle draws.

    Parameters
    ----------
    topology:
        Optional pre-built network matching the case (topologies are
        deterministic, so studies sweeping particle parameters can build
        one network and share it across cases).
    parts:
        Which interaction models to evaluate; skipping one halves the
        work when only a single paper table is being regenerated.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    unknown = set(parts) - {"nfi", "ffi"}
    if unknown or not parts:
        raise ValueError(f"parts must be a non-empty subset of ('nfi', 'ffi'), got {parts}")
    if topology is None:
        topology = make_topology(
            case.topology, case.num_processors, processor_curve=case.processor_curve
        )
    model = FmmCommunicationModel(
        topology,
        particle_curve=case.particle_curve,
        radius=case.radius,
        nfi_metric=case.nfi_metric,
    )
    distribution = get_distribution(case.distribution)
    nfi_vals, ffi_vals = [], []
    nfi_counts, ffi_counts = [], []
    phase_sums: dict[str, float] = {}
    for child_seed in spawn_seeds(seed, trials):
        particles = distribution.sample(
            case.num_particles, case.order, rng=np.random.default_rng(child_seed)
        )
        assignment = model.assign(particles)
        if "nfi" in parts:
            nfi = compute_acd(model.near_field_events(assignment), topology)
        else:
            nfi = ACDResult(0, 0)
        if "ffi" in parts:
            ffi = acd_breakdown(model.far_field_events(assignment).as_mapping(), topology)
        else:
            ffi = {"combined": ACDResult(0, 0)}
        nfi_vals.append(nfi.acd)
        ffi_vals.append(ffi["combined"].acd)
        nfi_counts.append(nfi.count)
        ffi_counts.append(ffi["combined"].count)
        for phase, result in ffi.items():
            phase_sums[phase] = phase_sums.get(phase, 0.0) + result.acd
    return CaseResult(
        case=case,
        trials=trials,
        nfi_acd=float(np.mean(nfi_vals)),
        nfi_acd_std=float(np.std(nfi_vals)),
        ffi_acd=float(np.mean(ffi_vals)),
        ffi_acd_std=float(np.std(ffi_vals)),
        ffi_phases={k: v / trials for k, v in phase_sums.items()},
        nfi_events=float(np.mean(nfi_counts)),
        ffi_events=float(np.mean(ffi_counts)),
    )
