"""Declarative Study framework: every paper study as a case grid.

PR 2 made :func:`~repro.experiments.campaign.run_campaign` fast —
shared per-``(instance, trial)`` event artifacts, pair-histogram ACD,
``--jobs`` fan-out — but each study module still hand-rolled a serial
``run_case`` loop and saw none of it.  Here a study stops owning an
execution loop and instead *declares* itself:

* a :class:`StudyPlan` — the case grid (``expand_grid``-style) as a
  tuple of units, each :class:`FmmUnit` (one
  :class:`~repro.experiments.config.FmmCase`, executed through the
  grouped campaign engine) or :class:`ComputeUnit` (a picklable
  function call, for deterministic metrics like the ANNS that never
  touch ``run_case``);
* a ``collect(plan, outputs) -> result`` reducer assembling the
  study's result dataclass from per-unit outputs.

:func:`run_study` is the single driver: it lowers every declared grid
through :func:`~repro.experiments.campaign.iter_campaign`, so artifact
sharing, histogram ACD and ``--jobs`` parallelism apply to fig5–fig7,
tables, sweeps, clustering and 3D uniformly — bit-identically to the
old per-study loops (proved by ``tests/experiments/
test_golden_equivalence.py`` against pre-refactor goldens).

The driver also consults the persistent
:class:`~repro.experiments.store.ResultStore` when one is active
(``REPRO_STORE`` / ``--store``): finished units load from disk, missing
units are computed and persisted *as they complete*, so an interrupted
or extended sweep resumes from the cases already done and a warm rerun
performs zero trial computations.

Registering a study (:func:`register_study`) also registers its result
schema with :mod:`repro.experiments.io`, which is how the CLI, the JSON
round-trip and the CSV flattener learn about it — adding a study is one
declaration, not edits across four modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro import obs
from repro._typing import SeedLike
from repro.experiments.campaign import iter_campaign
from repro.experiments.config import Scale, active_scale
from repro.experiments.io import ResultSchema, register_result
from repro.experiments.runner import execute_units, resolve_jobs
from repro.experiments.store import (
    MISS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    canonical_key,
    default_store,
)

__all__ = [
    "Study",
    "StudyContext",
    "StudyPlan",
    "FmmUnit",
    "ComputeUnit",
    "run_study",
    "execute_compute_unit",
    "register_study",
    "get_study",
    "study_names",
    "list_studies",
    "STUDIES",
    "outputs_by_key",
]

#: ``StudyContext.store`` default: resolve from the environment at run
#: time (``None`` disables the store explicitly).
ENV_STORE = object()

_MISSING = object()


@dataclass(frozen=True)
class StudyContext:
    """Execution knobs shared by every study run.

    ``trials`` overrides the scale preset's trial count when set;
    ``jobs`` overrides the process-wide default
    (:func:`~repro.experiments.runner.set_default_jobs` /
    ``REPRO_JOBS``); ``store`` is an explicit
    :class:`~repro.experiments.store.ResultStore`, ``None`` to bypass
    persistence, or the default sentinel meaning "whatever
    ``REPRO_STORE`` names".
    """

    scale: Scale | None = None
    seed: SeedLike = 2013
    trials: int | None = None
    jobs: int | None = None
    store: Any = ENV_STORE

    def preset(self) -> Scale:
        """The context's scale, defaulting to the active environment scale."""
        return self.scale if self.scale is not None else active_scale()


@dataclass(frozen=True)
class FmmUnit:
    """One grid point executed through the grouped campaign engine.

    ``key`` is the study-local label (e.g. ``(distribution,
    processor_curve, particle_curve)``) the reducer uses to place the
    unit's :class:`~repro.experiments.runner.CaseResult`.
    """

    key: tuple
    case: Any  # FmmCase; Any avoids an import cycle in type position


@dataclass(frozen=True)
class ComputeUnit:
    """One grid point computed by a plain (picklable) function call.

    Deterministic metric studies — the ANNS sweeps, clustering, the 3D
    validation — have no ``run_case`` trials to share, but still fan
    out over ``--jobs`` and persist per-unit in the result store.
    ``fn`` must be a top-level function and should return JSON-native
    values (or store-codec-registered dataclasses) so results survive
    the store round-trip unchanged.
    """

    key: tuple
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class StudyPlan:
    """A study's declared case grid plus campaign parameters.

    ``trials``/``seed``/``parts`` apply to the plan's
    :class:`FmmUnit`\\ s (one grouped campaign executes them all);
    ``meta`` carries the axes the reducer needs to assemble the result
    (curve lists, sweep values, ...).
    """

    units: tuple[FmmUnit | ComputeUnit, ...]
    trials: int = 1
    seed: SeedLike = 0
    parts: tuple[str, ...] = ("nfi", "ffi")
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Study:
    """A registered paper study: declarative grid, reducer, presentation.

    ``plan(ctx)`` builds the default grid for a context (public runners
    may build parameterised plans with the same builder and pass them to
    :func:`run_study` explicitly); ``collect(plan, outputs)`` reduces
    per-unit outputs (aligned with ``plan.units``) into ``result_type``;
    ``render`` formats a result for the CLI; ``schema`` teaches
    :mod:`repro.experiments.io` to persist and flatten the result.
    """

    name: str
    title: str
    result_type: type
    plan: Callable[[StudyContext], StudyPlan]
    collect: Callable[[StudyPlan, list], Any]
    render: Callable[[Any], str]
    schema: ResultSchema | None = None


STUDIES: dict[str, Study] = {}


def register_study(study: Study) -> Study:
    """Add a study to the global registry (and its schema to io)."""
    existing = STUDIES.get(study.name)
    if existing is not None and existing is not study:
        raise ValueError(f"study {study.name!r} already registered")
    STUDIES[study.name] = study
    if study.schema is not None:
        register_result(study.schema)
    return study


def get_study(name: str) -> Study:
    """Look up a registered study by name."""
    try:
        return STUDIES[name]
    except KeyError:
        raise ValueError(
            f"unknown study {name!r}; registered: {', '.join(sorted(STUDIES))}"
        ) from None


def study_names() -> tuple[str, ...]:
    """Registered study names, in registration order."""
    return tuple(STUDIES)


def list_studies() -> tuple[Study, ...]:
    """Every registered study, in registration order.

    The discovery face of the public API: pair with
    ``run_study(study.name)`` to execute any paper study without
    importing its module explicitly.
    """
    return tuple(STUDIES.values())


def _legacy_runner_error(old: str, study_name: str) -> None:
    """Shared failure of the removed per-study ``run_*`` wrappers.

    The wrappers spent a release emitting ``DeprecationWarning``; they
    are now hard errors that spell out the exact replacement, so stale
    call sites fail loudly instead of silently diverging from the
    registered study.
    """
    raise RuntimeError(
        f"{old}() has been removed; use "
        f"repro.experiments.run_study({study_name!r}) instead "
        "(pass plan=plan_*(ctx, ...) to run_study for custom parameters)"
    )


def outputs_by_key(plan: StudyPlan, outputs: Sequence[Any]) -> dict[tuple, Any]:
    """Map each unit's key to its output (reducer convenience)."""
    return {unit.key: out for unit, out in zip(plan.units, outputs)}


def execute_compute_unit(unit: ComputeUnit) -> Any:
    """Run one compute unit (top-level so process pools can execute it)."""
    return unit.fn(*unit.args, **dict(unit.kwargs))


def _seed_token(seed: SeedLike) -> Any:
    """JSON-able identity of an experiment seed, or ``None`` (unkeyable)."""
    import numpy as np

    if seed is None or isinstance(seed, (int, str)):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "seedseq": [entropy, [int(k) for k in seed.spawn_key], int(seed.pool_size)]
        }
    return None


def store_key(unit: FmmUnit | ComputeUnit, plan: StudyPlan) -> Any:
    """The content-address of one unit's result, or ``None`` if unkeyable.

    Covers everything the result depends on: the full case (or function
    and arguments), the trial count, the experiment seed, the evaluated
    parts and the code-schema version.  Unkeyable units (stateful seeds,
    non-JSON arguments) simply bypass the store.
    """
    import dataclasses

    if isinstance(unit, FmmUnit):
        seed = _seed_token(plan.seed)
        if seed is None and plan.seed is not None:
            return None
        key = {
            "kind": "case",
            "v": STORE_SCHEMA_VERSION,
            "case": dataclasses.asdict(unit.case),
            "trials": plan.trials,
            "seed": seed,
            "parts": list(plan.parts),
        }
    else:
        key = {
            "kind": "compute",
            "v": STORE_SCHEMA_VERSION,
            "fn": f"{unit.fn.__module__}:{unit.fn.__qualname__}",
            "args": list(unit.args),
            "kwargs": {k: v for k, v in unit.kwargs},
        }
    try:
        canonical_key(key)
    except TypeError:
        return None
    return key


def _resolve_store(ctx: StudyContext) -> ResultStore | None:
    if ctx.store is ENV_STORE:
        return default_store()
    return ctx.store


def run_study(
    study: Study | str,
    ctx: StudyContext | None = None,
    *,
    plan: StudyPlan | None = None,
) -> Any:
    """Execute one study: store lookups, campaign lowering, reduction.

    ``study`` may be a registered study name (``run_study("fig6")``) or
    a :class:`Study` object.  All of the plan's :class:`FmmUnit`\\ s not
    already in the store run as **one** grouped campaign — cases sharing
    an instance key generate each trial's events exactly once, and
    ``(instance, trial)`` units fan out over the process pool.
    :class:`ComputeUnit`\\ s fan out through the same pool.  Finished
    units are persisted per-case as they complete, so killing a sweep
    loses at most the in-flight instance group.  Results are
    bit-identical with or without a store, at any job count.

    When an :mod:`repro.obs` recorder is active the run is traced as a
    ``study`` span with one child per phase (``plan``,
    ``store.lookup``, ``campaign``, ``compute``, ``collect``) plus
    resume-accounting counters (``study.units``, ``study.resume_hits``)
    — the raw material of the run manifest.
    """
    if isinstance(study, str):
        study = get_study(study)
    if ctx is None:
        ctx = StudyContext()
    with obs.span("study", study=study.name):
        if plan is None:
            with obs.span("plan"):
                plan = study.plan(ctx)
        store = _resolve_store(ctx)
        units = plan.units
        obs.count("study.units", len(units))
        outputs: list[Any] = [_MISSING] * len(units)
        keys: list[Any] = [None] * len(units)
        if store is not None:
            with obs.span("store.lookup", units=len(units)):
                for i, unit in enumerate(units):
                    keys[i] = store_key(unit, plan)
                    if keys[i] is not None:
                        hit = store.get(keys[i])
                        if hit is not MISS:
                            outputs[i] = hit
                            obs.count("study.resume_hits")
        jobs = resolve_jobs(ctx.jobs)

        def persist(i: int, value: Any) -> None:
            if store is not None and keys[i] is not None:
                try:
                    store.put(keys[i], value)
                except TypeError:
                    pass  # unstorable value: compute-only unit, keep going

        # Flush-on-failure checkpointing: both fan-outs below stream
        # finished units in *completion* order and persist each one the
        # moment it lands, so an error propagating out of the executor
        # (budget exhausted, strict mode, Ctrl-C) leaves every completed
        # unit already in the store — the rerun pays only what's missing.
        try:
            pending_cases = [
                i
                for i, unit in enumerate(units)
                if isinstance(unit, FmmUnit) and outputs[i] is _MISSING
            ]
            if pending_cases:
                with obs.span("campaign", cases=len(pending_cases)):
                    stream: Iterator = iter_campaign(
                        [units[i].case for i in pending_cases],
                        trials=plan.trials,
                        seed=plan.seed,
                        parts=plan.parts,
                        jobs=jobs,
                    )
                    for local, result in stream:
                        i = pending_cases[local]
                        outputs[i] = result
                        persist(i, result)

            pending_compute = [
                i
                for i, unit in enumerate(units)
                if isinstance(unit, ComputeUnit) and outputs[i] is _MISSING
            ]
            if pending_compute:
                with obs.span("compute", units=len(pending_compute)):
                    results = execute_units(
                        execute_compute_unit, [(units[i],) for i in pending_compute], jobs
                    )
                    for local, result in results:
                        i = pending_compute[local]
                        outputs[i] = result
                        persist(i, result)
        except BaseException:
            obs.count("study.aborted")
            raise

        unfilled = [i for i, out in enumerate(outputs) if out is _MISSING]
        if unfilled:
            raise RuntimeError(
                f"study {study.name!r} has unexecuted units at {unfilled} "
                "(unit neither FmmUnit nor ComputeUnit?)"
            )
        with obs.span("collect"):
            return study.collect(plan, outputs)
