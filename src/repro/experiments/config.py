"""Experiment configuration: cases, scale presets and runtime knobs.

Every study in the paper's evaluation (§V–§VI) is expressed as a set of
:class:`FmmCase` instances plus a :class:`Scale` preset that pins the
workload sizes.  ``PAPER`` uses the exact published parameters;
``SMALL`` keeps the same shape at roughly 16x smaller sizes so the whole
suite runs in seconds (used by tests and default benchmark runs; export
``REPRO_SCALE=paper`` to regenerate the full-size numbers).

The *how* of a run — worker processes, store directory, cache budgets,
trace/metrics sinks — is the :class:`RuntimeConfig` (re-exported here
from :mod:`repro.runtime`, its import-light home): the ``REPRO_*``
environment variables are its documented defaults, parsed in exactly
one place, and :func:`configure` installs overrides either permanently
or scoped::

    from repro.experiments import configure, run_study

    with configure(jobs=4, store_dir="results/", trace=True):
        run_study("fig6")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime import RuntimeConfig, configure, runtime_config

__all__ = [
    "FmmCase",
    "INSTANCE_FIELDS",
    "EVALUATION_FIELDS",
    "Scale",
    "SMALL",
    "PAPER",
    "SCALES",
    "active_scale",
    "RuntimeConfig",
    "configure",
    "runtime_config",
]


#: The :class:`FmmCase` fields that determine the generated event stream
#: (particles → assignment → NFI/FFI events).  Two cases agreeing on all
#: of these produce bit-identical events for the same trial seed — the
#: network never enters event generation, only ACD evaluation.
INSTANCE_FIELDS: tuple[str, ...] = (
    "distribution",
    "num_particles",
    "order",
    "particle_curve",
    "num_processors",
    "radius",
    "nfi_metric",
)

#: The fields that determine how a fixed event stream is *evaluated*:
#: the network and its processor-order embedding.
EVALUATION_FIELDS: tuple[str, ...] = ("topology", "num_processors", "processor_curve")


@dataclass(frozen=True)
class FmmCase:
    """One fully specified FMM communication experiment.

    A case factors into an *instance* (the event-generating fields, see
    :data:`INSTANCE_FIELDS`) and an *evaluation* (the network fields,
    see :data:`EVALUATION_FIELDS`); ``num_processors`` belongs to both
    because the particle chunking and the network share the rank space.
    The campaign runner exploits this split to generate events once per
    instance and evaluate them against every network in the grid.
    """

    num_particles: int
    order: int
    num_processors: int
    topology: str
    particle_curve: str
    processor_curve: str
    distribution: str
    radius: int = 1
    nfi_metric: str = "chebyshev"

    def instance_key(self) -> tuple:
        """Hashable key of the event-generating fields."""
        return tuple(getattr(self, f) for f in INSTANCE_FIELDS)

    def evaluation_key(self) -> tuple:
        """Hashable key of the network-evaluation fields."""
        return tuple(getattr(self, f) for f in EVALUATION_FIELDS)

    def describe(self) -> str:
        """Short human-readable summary used in logs and reports."""
        return (
            f"n={self.num_particles} lattice=2^{self.order} p={self.num_processors} "
            f"{self.topology} particle={self.particle_curve} "
            f"processor={self.processor_curve} dist={self.distribution} r={self.radius}"
        )


@dataclass(frozen=True)
class Scale:
    """Workload sizes for every study at one scale.

    Attributes mirror the paper's experimental designs:

    * ``pairs_*`` — Tables I/II (16 SFC combinations x 3 distributions).
    * ``topo_*`` — Fig. 6 (topology comparison, uniform input, r = 4).
    * ``scaling_*`` — Fig. 7 (ACD vs processor count).
    * ``anns_orders`` — Fig. 5 (lattice orders for the stretch study).
    """

    name: str
    pairs_particles: int
    pairs_order: int
    pairs_processors: int
    topo_particles: int
    topo_order: int
    topo_processors: int
    topo_radius: int
    scaling_particles: int
    scaling_order: int
    scaling_processors: tuple[int, ...]
    anns_orders: tuple[int, ...]
    trials: int = 3

    def __post_init__(self):
        if self.pairs_particles > 4**self.pairs_order:
            raise ValueError("pairs study: more particles than lattice cells")
        if self.topo_particles > 4**self.topo_order:
            raise ValueError("topology study: more particles than lattice cells")

    def resolve_trials(self, trials: int | None = None) -> int:
        """An explicit trial count, or this scale's default."""
        return trials if trials is not None else self.trials


SMALL = Scale(
    name="small",
    pairs_particles=20_000,
    pairs_order=8,  # 256 x 256
    pairs_processors=1_024,
    # Fig. 6 shape needs the paper's low occupancy (~6%) and low
    # particles-per-processor (~15); see EXPERIMENTS.md.
    topo_particles=60_000,
    topo_order=10,  # 1024 x 1024
    topo_processors=4_096,
    topo_radius=4,
    scaling_particles=50_000,
    scaling_order=9,
    scaling_processors=(16, 64, 256, 1_024, 4_096),
    anns_orders=tuple(range(1, 8)),  # sides 2 .. 128
    trials=3,
)

PAPER = Scale(
    name="paper",
    pairs_particles=250_000,
    pairs_order=10,  # 1024 x 1024 (Tables I/II)
    pairs_processors=65_536,
    # Fig. 6 does not state the processor count; 65 536 keeps the
    # particles-per-processor ratio of Tables I/II (see EXPERIMENTS.md).
    topo_particles=1_000_000,
    topo_order=12,  # 4096 x 4096 (Fig. 6)
    topo_processors=65_536,
    topo_radius=4,
    scaling_particles=1_000_000,
    scaling_order=11,
    scaling_processors=(64, 256, 1_024, 4_096, 16_384, 65_536),
    anns_orders=tuple(range(1, 10)),  # sides 2 .. 512 (Fig. 5)
    trials=3,
)

SCALES: dict[str, Scale] = {"small": SMALL, "paper": PAPER}


def active_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, the runtime config (``REPRO_SCALE``), or small."""
    chosen = name or runtime_config().scale
    try:
        return SCALES[chosen.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scale {chosen!r}; available: {', '.join(SCALES)}"
        ) from None
