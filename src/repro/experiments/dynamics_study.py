"""Dynamic repartitioning study: curve locality under time evolution.

The paper evaluates static particle sets; real FMM/N-body codes re-sort
along the curve every few steps.  This study drives the paper's
distributions through the :mod:`repro.dynamics` step loop and measures,
per step and per {motion, topology, curve}:

* the communication objectives (ACD, energy, ...) of the freshly
  **resorted** partition, via the pluggable metric engine;
* the **migration volume** — particles whose owning rank changed since
  the previous step — plus the hop-weighted migration cost on the
  evaluation topology (Walker & Skjellum's "data actually moved");
* the **stale-partition counterfactual**: the step-0 partition kept
  frozen while particles move, quantifying how fast curve locality
  decays when re-sorting is skipped — the gap between the stale and
  resorted series is what a re-sort buys, and the migration series is
  what it costs.

Each (motion, distribution, topology, curve, step) point is one
:class:`~repro.experiments.study.ComputeUnit`, so the study inherits
``--jobs`` fan-out, fault tolerance and **per-step resume**: a killed
run pays only the missing steps on rerun.  Seeding is pure
``SeedSequence`` spawning (see :mod:`repro.dynamics.evolution`), so
jobs=1 and jobs=4 runs are bit-identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.dynamics.evolution import TrajectorySpec, trajectory
from repro.dynamics.repartition import migration_volume, owners_by_id, stale_assignment
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_series
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    outputs_by_key,
    register_study,
)
from repro.fmm.ffi import ffi_events
from repro.fmm.nfi import nfi_events
from repro.metrics.base import CommunicationMetric, MetricValue
from repro.metrics.registry import get_metric
from repro.partition.assignment import partition_particles
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import make_topology

__all__ = [
    "DYNAMIC_GRID",
    "DYNAMIC_TOPOLOGIES",
    "DYNAMIC_OBJECTIVES",
    "DEFAULT_STEPS",
    "DynamicStudyResult",
    "DYNAMIC_STUDY",
    "evaluate_dynamic_step",
    "plan_dynamic_study",
    "collect_dynamic_study",
    "format_dynamic_study",
    "grid_label",
]

#: (motion, distribution) pairings the default grid evolves: coherent
#: drift and diffusive churn on the uniform law, plus the orbit/shear
#: mode on the astrophysical (clustered) law.
DYNAMIC_GRID: tuple[tuple[str, str], ...] = (
    ("drift", "uniform"),
    ("diffusion", "uniform"),
    ("orbit", "clustered"),
)

#: Evaluation networks (both need a square rank grid: ``p = 4**m``).
DYNAMIC_TOPOLOGIES: tuple[str, ...] = ("mesh", "torus")

#: Communication objectives tracked per step (any registered
#: communication metric slots in).
DYNAMIC_OBJECTIVES: tuple[str, ...] = ("acd", "energy")

#: Default workload: kept modest so a cold run finishes in seconds.
DEFAULT_STEPS = 6
DEFAULT_DYN_PARTICLES = 2000
DEFAULT_DYN_ORDER = 7
DEFAULT_DYN_PROCESSORS = 64


def grid_label(motion: str, distribution: str) -> str:
    """Display/series key of one (motion, distribution) grid row."""
    return f"{motion}+{distribution}"


# ----------------------------------------------------------------------
# Per-step artifacts (process-wide memo)
# ----------------------------------------------------------------------
#
# Step units differ by topology and step, but the expensive part — the
# trajectory frame, the owner map and the event histograms — depends
# only on (spec, curve, p, radius, nfi_metric, step).  A small keyed
# cache lets the mesh and torus units (and every objective) share one
# event generation per frame.

_STEP_CACHE: OrderedDict[tuple, dict[str, Any]] = OrderedDict()
_STEP_LOCK = threading.Lock()
_STEP_CAPACITY = 32


def _histograms(assignment, num_processors: int, radius: int, nfi_metric: str):
    """(nfi, ffi) pair histograms of one assignment's events."""
    nfi = nfi_events(assignment, radius, nfi_metric).compact(num_processors)
    ffi = ffi_events(assignment).combined().compact(num_processors)
    return nfi, ffi


def _step_artifacts(
    spec: TrajectorySpec,
    curve: str,
    num_processors: int,
    radius: int,
    nfi_metric: str,
    step: int,
) -> dict[str, Any]:
    """Owners and event histograms of one trajectory frame.

    ``owners`` maps particle id -> owning rank after the step-``step``
    re-sort; ``resorted``/``stale`` are (nfi, ffi) histogram pairs for
    the fresh partition and the frozen step-0 partition respectively.
    """
    key = (spec, curve, num_processors, radius, nfi_metric, step)
    with _STEP_LOCK:
        hit = _STEP_CACHE.get(key)
        if hit is not None:
            _STEP_CACHE.move_to_end(key)
            return hit
    frames = trajectory(spec, step)
    frame = frames[step]
    owners = owners_by_id(frame, curve, num_processors)
    resorted = partition_particles(frame, curve, num_processors)
    entry: dict[str, Any] = {
        "owners": owners,
        "resorted": _histograms(resorted, num_processors, radius, nfi_metric),
    }
    if step == 0:
        entry["stale"] = entry["resorted"]
    else:
        owners0 = owners_by_id(frames[0], curve, num_processors)
        stale = stale_assignment(frame, curve, owners0, num_processors)
        entry["stale"] = _histograms(stale, num_processors, radius, nfi_metric)
    with _STEP_LOCK:
        _STEP_CACHE[key] = entry
        while len(_STEP_CACHE) > _STEP_CAPACITY:
            _STEP_CACHE.popitem(last=False)
    return entry


def _as_dict(value: MetricValue) -> dict:
    return {"total": value.total, "count": value.count, "mean": value.mean}


def evaluate_dynamic_step(
    *,
    motion: str,
    motion_params: dict,
    distribution: str,
    num_particles: int,
    order: int,
    num_processors: int,
    topology: str,
    curve: str,
    step: int,
    seed: int,
    objectives,
    radius: int = 1,
    nfi_metric: str = "chebyshev",
) -> dict:
    """One step of one trajectory, partitioned and measured.

    All keyword arguments are JSON-native, so each step is individually
    content-addressed in the result store — the unit of resume is the
    step.  ``step`` alone (not the total horizon) keys the trajectory
    frame because spawned seeds make every frame horizon-independent.
    """
    spec = TrajectorySpec.create(
        distribution=distribution,
        num_particles=num_particles,
        order=order,
        motion=motion,
        motion_params=dict(motion_params),
        seed=seed,
    )
    topo = make_topology(topology, num_processors, processor_curve=curve)
    art = _step_artifacts(spec, curve, num_processors, radius, nfi_metric, step)
    if step == 0:
        migrated, hops = 0, 0
    else:
        prev = _step_artifacts(spec, curve, num_processors, radius, nfi_metric, step - 1)
        migrated, hops = migration_volume(prev["owners"], art["owners"], topo)
    obs.count("dynamics.steps")
    obs.count("dynamics.resorts")
    obs.count("dynamics.migrated", migrated)

    out: dict[str, Any] = {
        "step": int(step),
        "migrated": migrated,
        "migration_hops": hops,
        "resorted": {},
        "stale": {},
    }
    for objective in objectives:
        engine = get_metric(objective)
        if not isinstance(engine, CommunicationMetric):
            raise TypeError(
                f"objective {objective!r} is a {engine.kind} metric; "
                "the dynamic study tracks communication objectives"
            )
        for label in ("resorted", "stale"):
            nfi_hist, ffi_hist = art[label]
            nfi = engine.evaluate(nfi_hist, topo)
            ffi = engine.evaluate(ffi_hist, topo)
            out[label][objective] = {
                "nfi": _as_dict(nfi),
                "ffi": _as_dict(ffi),
                "combined": _as_dict(nfi.merged(ffi)),
            }
    return out


# ----------------------------------------------------------------------
# Study declaration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DynamicStudyResult:
    """Per-step time series for every grid point, plus a ranking.

    Series dicts nest ``label -> topology -> curve`` (``-> objective``
    for metric series); each leaf is the step-indexed list ``[0..steps]``.
    ``recommendations`` ranks (topology, curve) candidates best-first by
    summed resorted cost of the primary objective — the same entry shape
    ``POST /recommend`` responses use (mean and final-step metric
    alongside the exact integer score).
    """

    labels: tuple[str, ...]
    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    objectives: tuple[str, ...]
    steps: int
    migrated: dict[str, dict[str, dict[str, list[int]]]]
    migration_hops: dict[str, dict[str, dict[str, list[int]]]]
    resorted_mean: dict[str, dict[str, dict[str, dict[str, list[float]]]]]
    stale_mean: dict[str, dict[str, dict[str, dict[str, list[float]]]]]
    recommendations: list[dict[str, Any]]


def plan_dynamic_study(
    ctx: StudyContext,
    grid: tuple[tuple[str, str], ...] = DYNAMIC_GRID,
    topologies: tuple[str, ...] = DYNAMIC_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    objectives: tuple[str, ...] = DYNAMIC_OBJECTIVES,
    steps: int = DEFAULT_STEPS,
    num_particles: int = DEFAULT_DYN_PARTICLES,
    order: int = DEFAULT_DYN_ORDER,
    num_processors: int = DEFAULT_DYN_PROCESSORS,
    radius: int = 1,
    motion_params: dict | None = None,
) -> StudyPlan:
    """Declare the step grid: every {motion, topology, curve, step}.

    ``steps`` evolution steps produce ``steps + 1`` frames per
    trajectory (frame 0 is the freshly sampled distribution).
    """
    params = dict(motion_params or {})
    units = tuple(
        ComputeUnit(
            key=(motion, dist, topo, curve, step),
            fn=evaluate_dynamic_step,
            kwargs=(
                ("motion", motion),
                ("motion_params", params.get(motion, {})),
                ("distribution", dist),
                ("num_particles", num_particles),
                ("order", order),
                ("num_processors", num_processors),
                ("topology", topo),
                ("curve", curve),
                ("step", step),
                ("seed", ctx.seed),
                ("objectives", list(objectives)),
                ("radius", radius),
            ),
        )
        for motion, dist in grid
        for topo in topologies
        for curve in curves
        for step in range(steps + 1)
    )
    return StudyPlan(
        units=units,
        seed=ctx.seed,
        meta={
            "grid": tuple(grid),
            "topologies": tuple(topologies),
            "curves": tuple(curves),
            "objectives": tuple(objectives),
            "steps": steps,
        },
    )


def collect_dynamic_study(plan: StudyPlan, outputs: list) -> DynamicStudyResult:
    """Assemble step-indexed series and the candidate ranking."""
    by_key = outputs_by_key(plan, outputs)
    grid = plan.meta["grid"]
    topologies = plan.meta["topologies"]
    curves = plan.meta["curves"]
    objectives = plan.meta["objectives"]
    steps = plan.meta["steps"]
    labels = tuple(grid_label(m, d) for m, d in grid)

    migrated: dict = {}
    hops: dict = {}
    resorted: dict = {}
    stale: dict = {}
    scores: dict[tuple[str, str], int] = {}
    primary = objectives[0]
    for (motion, dist), label in zip(grid, labels):
        for name, table in (
            ("migrated", migrated), ("hops", hops), ("resorted", resorted), ("stale", stale),
        ):
            table[label] = {t: {} for t in topologies}
        for topo in topologies:
            for curve in curves:
                rows = [by_key[(motion, dist, topo, curve, s)] for s in range(steps + 1)]
                migrated[label][topo][curve] = [r["migrated"] for r in rows]
                hops[label][topo][curve] = [r["migration_hops"] for r in rows]
                resorted[label][topo][curve] = {
                    obj: [r["resorted"][obj]["combined"]["mean"] for r in rows]
                    for obj in objectives
                }
                stale[label][topo][curve] = {
                    obj: [r["stale"][obj]["combined"]["mean"] for r in rows]
                    for obj in objectives
                }
                scores[(topo, curve)] = scores.get((topo, curve), 0) + sum(
                    r["resorted"][primary]["combined"]["total"] for r in rows
                )

    entries = []
    for (topo, curve), score in scores.items():
        means = [resorted[label][topo][curve][primary] for label in labels]
        per_step = [sum(col) / len(col) for col in zip(*means)]
        entries.append(
            {
                "topology": topo,
                "processor_curve": curve,
                "score": score,
                "mean": sum(per_step) / len(per_step),
                "final": per_step[-1],
            }
        )
    entries.sort(key=lambda e: (e["score"], e["topology"], e["processor_curve"]))
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank

    return DynamicStudyResult(
        labels=labels,
        topologies=topologies,
        curves=curves,
        objectives=objectives,
        steps=steps,
        migrated=migrated,
        migration_hops=hops,
        resorted_mean=resorted,
        stale_mean=stale,
        recommendations=entries,
    )


def format_dynamic_study(result: DynamicStudyResult) -> str:
    """Render per-step series (first topology) plus the ranking."""
    topo = result.topologies[0]
    x = list(range(result.steps + 1))
    blocks = []
    for label in result.labels:
        for objective in result.objectives:
            series = {c: result.resorted_mean[label][topo][c][objective] for c in result.curves}
            series.update(
                {
                    f"{c} (stale)": result.stale_mean[label][topo][c][objective]
                    for c in result.curves
                }
            )
            blocks.append(
                format_series(
                    series,
                    x,
                    title=f"{label} on {topo} — mean {objective} (resorted vs stale)",
                    x_label="step",
                )
            )
        blocks.append(
            format_series(
                {c: result.migrated[label][topo][c] for c in result.curves},
                x,
                title=f"{label} on {topo} — migrated particles per step",
                x_label="step",
                precision=0,
            )
        )
    best = result.recommendations[: min(3, len(result.recommendations))]
    lines = [
        f"  {e['rank']}. {e['topology']} + {e['processor_curve']}"
        f" (score {e['score']}, mean {e['mean']:.3f}, final {e['final']:.3f})"
        for e in best
    ]
    blocks.append(
        "Best {objective} candidates (topology + curve):\n{lines}".format(
            objective=result.objectives[0], lines="\n".join(lines)
        )
    )
    return "\n\n".join(blocks)


def _flatten_dynamic(result: DynamicStudyResult) -> list[dict]:
    return [
        {
            "label": label,
            "topology": topo,
            "curve": curve,
            "objective": obj,
            "step": step,
            "resorted_mean": result.resorted_mean[label][topo][curve][obj][step],
            "stale_mean": result.stale_mean[label][topo][curve][obj][step],
            "migrated": result.migrated[label][topo][curve][step],
            "migration_hops": result.migration_hops[label][topo][curve][step],
        }
        for label in result.labels
        for topo in result.topologies
        for curve in result.curves
        for obj in result.objectives
        for step in range(result.steps + 1)
    ]


DYNAMIC_STUDY = register_study(
    Study(
        name="dynamic",
        title="Dynamic repartitioning — curve locality under time evolution",
        result_type=DynamicStudyResult,
        plan=plan_dynamic_study,
        collect=collect_dynamic_study,
        render=format_dynamic_study,
        schema=ResultSchema(DynamicStudyResult, flatten=_flatten_dynamic),
    )
)
