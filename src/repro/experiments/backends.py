"""Pluggable raw-storage backends for the persistent result store.

:class:`~repro.experiments.store.ResultStore` used to *be* a directory
of JSON files; serving ``recommend_configuration`` from a warm store at
production scale needs the opposite factoring — one store *semantics*
layer (content addressing, codecs, corruption tolerance) over
interchangeable *storage* layers.  This module owns the storage half:

* :class:`StoreBackend` — the protocol (``get_raw`` / ``put_raw`` /
  ``contains`` / ``keys`` / ``stats`` plus quarantine and lifecycle
  hooks).  Backends move opaque payload *text* addressed by a digest
  string; they never see keys, values or codecs.
* :class:`DirectoryBackend` — the original directory-of-JSON layout,
  extracted behaviour-preservingly: one ``<digest>.json`` per entry,
  fsynced temp-file + ``os.replace`` publication, ``*.corrupt``
  quarantine files.  Proven bit-identical by the pre-refactor store and
  golden suites.
* :class:`SqliteBackend` — one SQLite database in WAL mode, so many
  processes (and hosts sharing a local filesystem) read and write one
  warm store concurrently: WAL readers never block the writer and
  vice versa, and ``busy_timeout`` serialises concurrent writers.
  Quarantined payloads move to a side table instead of side files.

Backends are selected by URL (:func:`open_backend`): a plain path (or
``dir://path``) opens a :class:`DirectoryBackend`, ``sqlite://path``
opens a :class:`SqliteBackend` — the grammar is parsed by
:func:`repro.runtime.parse_store_url`, the same one ``REPRO_STORE`` and
``--store`` go through.

Both backends are picklable (workers reconnect lazily) and thread-safe;
neither ever returns a torn payload: the directory backend publishes
entries atomically with ``os.replace``, SQLite transactions are atomic
by construction.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

__all__ = [
    "StoreBackend",
    "StoreCorruptPayload",
    "DirectoryBackend",
    "SqliteBackend",
    "open_backend",
]


class StoreCorruptPayload(Exception):
    """A backend could not read an entry's bytes (not a clean miss)."""

    def __init__(self, digest: str):
        super().__init__(f"unreadable store payload for digest {digest}")
        self.digest = digest


@runtime_checkable
class StoreBackend(Protocol):
    """Raw digest-addressed text storage under the result store.

    Payloads are opaque JSON text; ``digest`` is the store's content
    address (hex SHA-256 of the canonical key).  Implementations must
    guarantee that ``get_raw`` never observes a torn ``put_raw`` — a
    reader sees the old payload, the new payload, or nothing.
    """

    #: Short scheme name (``"directory"`` / ``"sqlite"``), used in
    #: diagnostics and ``store stats``.
    kind: str
    #: Where the data lives (directory or database file).
    location: Path

    def get_raw(self, digest: str) -> str | None:
        """The payload stored under ``digest``, or ``None``."""
        ...

    def put_raw(self, digest: str, payload: str) -> None:
        """Atomically and durably publish ``payload`` under ``digest``."""
        ...

    def contains(self, digest: str) -> bool:
        """Whether an entry exists under ``digest``."""
        ...

    def keys(self) -> Iterator[str]:
        """All stored digests (snapshot; order unspecified)."""
        ...

    def stats(self) -> dict[str, Any]:
        """Residency profile: ``entries``, ``total_bytes``, ``quarantined``."""
        ...

    def quarantine(self, digest: str) -> None:
        """Move a corrupt entry out of the addressable namespace."""
        ...

    def clear(self) -> None:
        """Drop every entry and quarantined payload."""
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to stable storage (best effort).

    Required for the rename in :meth:`DirectoryBackend.put_raw` to
    survive a power loss; skipped silently where directories cannot be
    opened (e.g. Windows).
    """
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


class DirectoryBackend:
    """The original one-file-per-entry layout (behaviour-preserving).

    Each entry is ``<digest>.json``; writes go through an fsynced temp
    file published with ``os.replace`` and a directory fsync, so a
    crash or power loss leaves either the old entry or the complete new
    one.  Concurrent writers of the same digest are safe — ``os.replace``
    is atomic, last writer wins with a complete payload.  Corrupt
    entries are renamed to ``<digest>.corrupt``: kept for forensics,
    out of the addressable namespace.
    """

    kind = "directory"

    def __init__(self, root: str | Path):
        self.location = Path(root)
        self.location.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        """The entry file a digest addresses (directory layout only)."""
        return self.location / f"{digest}.json"

    def get_raw(self, digest: str) -> str | None:
        try:
            return self.path_for(digest).read_text()
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as exc:
            # unreadable bytes are corruption, not a miss: let the store
            # layer quarantine and count them
            raise StoreCorruptPayload(digest) from exc

    def put_raw(self, digest: str, payload: str) -> None:
        path = self.path_for(digest)
        fd, tmp = tempfile.mkstemp(dir=self.location, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(self.location)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def keys(self) -> Iterator[str]:
        for path in self.location.glob("*.json"):
            yield path.stem

    def quarantine(self, digest: str) -> None:
        path = self.path_for(digest)
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass  # a concurrent reader may have quarantined it already

    def stats(self) -> dict[str, Any]:
        entries = total = 0
        for path in self.location.glob("*.json"):
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass  # concurrently replaced/quarantined
        return {
            "entries": entries,
            "total_bytes": total,
            "quarantined": sum(1 for _ in self.location.glob("*.corrupt")),
        }

    def clear(self) -> None:
        for pattern in ("*.json", "*.corrupt"):
            for path in self.location.glob(pattern):
                path.unlink(missing_ok=True)

    def close(self) -> None:
        pass  # nothing held open

    def __repr__(self) -> str:
        return f"DirectoryBackend({str(self.location)!r})"


#: SQLite schema: one payload table, one quarantine side table, one
#: metadata table carrying the store schema version for ``store stats``.
_SQLITE_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    digest  TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    digest  TEXT PRIMARY KEY,
    payload TEXT
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
"""

#: How long a writer waits for a concurrent writer's transaction before
#: giving up (milliseconds).  WAL keeps readers unblocked throughout.
SQLITE_BUSY_TIMEOUT_MS = 30_000


class SqliteBackend:
    """One shared SQLite database in WAL journal mode.

    WAL is what makes the store *multi-process warm*: readers never
    block the writer and the writer never blocks readers, so a fleet of
    study runs, CI shards and the query service can share one results
    database on a local filesystem.  Writes are single-statement
    transactions (``INSERT OR REPLACE``) — atomic by construction, so a
    reader sees the old payload or the new one, never a torn mix — and
    concurrent writers serialise through SQLite's write lock under a
    generous ``busy_timeout``.

    The connection is created lazily per process/instance (the object
    pickles as just its path, so it can ride inside worker arguments)
    and guarded by a lock for thread-shared use, e.g. the asyncio
    service answering from the event loop while computations persist
    from a worker thread.

    Caveats (documented in EXPERIMENTS.md): WAL requires a filesystem
    with coherent ``mmap``/locking — local disks are fine, NFS is not;
    ``synchronous=NORMAL`` means a power loss can drop the last commits
    but never corrupts the database (an app crash loses nothing).
    """

    kind = "sqlite"

    def __init__(self, path: str | Path):
        self.location = Path(path)
        self.location.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None

    # -- connection lifecycle -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.location,
            timeout=SQLITE_BUSY_TIMEOUT_MS / 1000.0,
            check_same_thread=False,
            isolation_level=None,  # autocommit: every statement is one txn
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={SQLITE_BUSY_TIMEOUT_MS}")
        conn.executescript(_SQLITE_SCHEMA)
        from repro.experiments.store import STORE_SCHEMA_VERSION

        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(STORE_SCHEMA_VERSION),),
        )
        return conn

    @property
    def connection(self) -> sqlite3.Connection:
        """The lazily opened (per-process) connection."""
        with self._lock:
            if self._conn is None:
                self._conn = self._connect()
            return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __getstate__(self) -> dict[str, Any]:
        # workers reconnect lazily; the connection itself never pickles
        return {"location": self.location}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.location = state["location"]
        self._lock = threading.RLock()
        self._conn = None

    # -- the backend protocol -------------------------------------------------

    def get_raw(self, digest: str) -> str | None:
        with self._lock:
            row = self.connection.execute(
                "SELECT payload FROM entries WHERE digest = ?", (digest,)
            ).fetchone()
        return row[0] if row is not None else None

    def put_raw(self, digest: str, payload: str) -> None:
        with self._lock:
            self.connection.execute(
                "INSERT OR REPLACE INTO entries (digest, payload) VALUES (?, ?)",
                (digest, payload),
            )

    def contains(self, digest: str) -> bool:
        with self._lock:
            row = self.connection.execute(
                "SELECT 1 FROM entries WHERE digest = ?", (digest,)
            ).fetchone()
        return row is not None

    def keys(self) -> Iterator[str]:
        with self._lock:
            rows = self.connection.execute("SELECT digest FROM entries").fetchall()
        return iter([digest for (digest,) in rows])

    def quarantine(self, digest: str) -> None:
        with self._lock:
            conn = self.connection
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO quarantine (digest, payload) "
                    "SELECT digest, payload FROM entries WHERE digest = ?",
                    (digest,),
                )
                conn.execute("DELETE FROM entries WHERE digest = ?", (digest,))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def stats(self) -> dict[str, Any]:
        with self._lock:
            conn = self.connection
            entries, total = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) FROM entries"
            ).fetchone()
            (quarantined,) = conn.execute("SELECT COUNT(*) FROM quarantine").fetchone()
        return {
            "entries": int(entries),
            "total_bytes": int(total),
            "quarantined": int(quarantined),
        }

    def clear(self) -> None:
        with self._lock:
            conn = self.connection
            conn.execute("DELETE FROM entries")
            conn.execute("DELETE FROM quarantine")

    def __repr__(self) -> str:
        return f"SqliteBackend({str(self.location)!r})"


def open_backend(url: str | Path) -> StoreBackend:
    """Open the backend a store URL names.

    A plain path (or ``dir://path``) opens a :class:`DirectoryBackend`;
    ``sqlite://path/to/results.db`` opens a :class:`SqliteBackend` —
    everything after ``sqlite://`` is the filesystem path, so
    ``sqlite:///var/store.db`` is absolute and ``sqlite://results.db``
    is relative.  The grammar (and its validation errors) live in
    :func:`repro.runtime.parse_store_url` so ``REPRO_STORE``, the CLI
    and programmatic callers all parse identically.
    """
    from repro.runtime import parse_store_url

    scheme, path = parse_store_url(str(url))
    if scheme == "sqlite":
        return SqliteBackend(path)
    return DirectoryBackend(path)
