"""Fig. 5 — nearest-neighbour proximity preservation (§V).

Computes the ANNS (radius 1, Fig. 5(a)) and the generalised large-radius
stretch (radius 6, Fig. 5(b)) for every study curve over a sweep of
lattice resolutions.  This is deterministic — every lattice point is an
input, so no trials or seeds are involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import Scale, active_scale
from repro.experiments.reporting import format_series
from repro.metrics.anns import neighbor_stretch
from repro.sfc.registry import PAPER_CURVES

__all__ = ["AnnsStudyResult", "run_anns_study", "format_anns_study"]

#: Radii of the two panels of Fig. 5.
FIG5_RADII: tuple[int, ...] = (1, 6)


@dataclass(frozen=True)
class AnnsStudyResult:
    """Stretch series per radius and curve over a resolution sweep."""

    orders: tuple[int, ...]
    #: ``values[radius][curve]`` = list of mean stretches, one per order.
    values: dict[int, dict[str, list[float]]]

    def sides(self) -> list[int]:
        """Lattice side lengths corresponding to :attr:`orders`."""
        return [1 << k for k in self.orders]


def run_anns_study(
    scale: Scale | str | None = None,
    curves: tuple[str, ...] = PAPER_CURVES,
    radii: tuple[int, ...] = FIG5_RADII,
) -> AnnsStudyResult:
    """Run the Fig. 5 sweep at the given scale."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)
    orders = tuple(preset.anns_orders)
    values: dict[int, dict[str, list[float]]] = {}
    for radius in radii:
        per_curve: dict[str, list[float]] = {c: [] for c in curves}
        for order in orders:
            for curve in curves:
                per_curve[curve].append(neighbor_stretch(curve, order, radius=radius).mean)
        values[radius] = per_curve
    return AnnsStudyResult(orders=orders, values=values)


def format_anns_study(result: AnnsStudyResult) -> str:
    """Render both Fig. 5 panels as text tables."""
    blocks = []
    for radius, per_curve in result.values.items():
        panel = "Fig. 5(a) ANNS (r=1)" if radius == 1 else f"Fig. 5(b) stretch (r={radius})"
        blocks.append(
            format_series(per_curve, result.sides(), panel, x_label="lattice side")
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_anns_study(run_anns_study()))


if __name__ == "__main__":  # pragma: no cover
    main()
