"""Fig. 5 — nearest-neighbour proximity preservation (§V).

Computes the ANNS (radius 1, Fig. 5(a)) and the generalised large-radius
stretch (radius 6, Fig. 5(b)) for every study curve over a sweep of
lattice resolutions.  This is deterministic — every lattice point is an
input, so no trials or seeds are involved; the study declares one
:class:`~repro.experiments.study.ComputeUnit` per ``(radius, order,
curve)`` point, which the shared driver fans out over ``--jobs`` and
persists in the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import Scale
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_series
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
    run_study,
)
from repro.metrics.anns import neighbor_stretch
from repro.sfc.registry import PAPER_CURVES

__all__ = ["AnnsStudyResult", "ANNS_STUDY", "run_anns_study", "format_anns_study"]

#: Radii of the two panels of Fig. 5.
FIG5_RADII: tuple[int, ...] = (1, 6)


@dataclass(frozen=True)
class AnnsStudyResult:
    """Stretch series per radius and curve over a resolution sweep."""

    orders: tuple[int, ...]
    #: ``values[radius][curve]`` = list of mean stretches, one per order.
    values: dict[int, dict[str, list[float]]]

    def sides(self) -> list[int]:
        """Lattice side lengths corresponding to :attr:`orders`."""
        return [1 << k for k in self.orders]


def anns_point(curve: str, order: int, radius: int) -> float:
    """One grid point: mean stretch of a curve at one resolution."""
    return neighbor_stretch(curve, order, radius=radius).mean


def plan_anns_study(
    ctx: StudyContext,
    curves: tuple[str, ...] = PAPER_CURVES,
    radii: tuple[int, ...] = FIG5_RADII,
) -> StudyPlan:
    """Declare the Fig. 5 grid: every (radius, order, curve) point."""
    orders = tuple(ctx.preset().anns_orders)
    units = tuple(
        ComputeUnit(key=(radius, order, curve), fn=anns_point, args=(curve, order, radius))
        for radius in radii
        for order in orders
        for curve in curves
    )
    return StudyPlan(
        units=units,
        meta={"orders": orders, "curves": tuple(curves), "radii": tuple(radii)},
    )


def collect_anns_study(plan: StudyPlan, outputs: list) -> AnnsStudyResult:
    """Assemble the per-radius, per-curve series in sweep order."""
    by_key = outputs_by_key(plan, outputs)
    orders, curves, radii = (plan.meta[k] for k in ("orders", "curves", "radii"))
    values = {
        radius: {curve: [by_key[(radius, order, curve)] for order in orders] for curve in curves}
        for radius in radii
    }
    return AnnsStudyResult(orders=orders, values=values)


def format_anns_study(result: AnnsStudyResult) -> str:
    """Render both Fig. 5 panels as text tables."""
    blocks = []
    for radius, per_curve in result.values.items():
        panel = "Fig. 5(a) ANNS (r=1)" if radius == 1 else f"Fig. 5(b) stretch (r={radius})"
        blocks.append(
            format_series(per_curve, result.sides(), panel, x_label="lattice side")
        )
    return "\n\n".join(blocks)


def _flatten(result: AnnsStudyResult) -> list[dict]:
    return [
        {"radius": radius, "curve": curve, "side": 1 << order, "stretch": val}
        for radius, per_curve in result.values.items()
        for curve, series in per_curve.items()
        for order, val in zip(result.orders, series)
    ]


ANNS_STUDY = register_study(
    Study(
        name="fig5",
        title="Fig. 5 — average nearest-neighbour stretch",
        result_type=AnnsStudyResult,
        plan=plan_anns_study,
        collect=collect_anns_study,
        render=format_anns_study,
        schema=ResultSchema(AnnsStudyResult, flatten=_flatten, int_key_fields=("values",)),
    )
)


def run_anns_study(
    scale: Scale | str | None = None,
    curves: tuple[str, ...] = PAPER_CURVES,
    radii: tuple[int, ...] = FIG5_RADII,
) -> AnnsStudyResult:
    """Removed legacy runner for the Fig. 5 sweep; raises with the
    ``run_study("fig5")`` replacement."""
    _legacy_runner_error("run_anns_study", "fig5")
    raise AssertionError("unreachable")


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_anns_study(run_study(ANNS_STUDY)))


if __name__ == "__main__":  # pragma: no cover
    main()
