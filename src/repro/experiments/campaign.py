"""Batch execution of arbitrary experiment-case grids.

The study modules regenerate the paper's fixed designs; downstream users
usually want their *own* grid ("my three networks x my two curves x my
input").  :func:`run_campaign` executes any iterable of
:class:`~repro.experiments.config.FmmCase` and returns tidy per-case
results; :func:`expand_grid` builds the cartesian product from keyword
lists.

Shared event generation
-----------------------
A case's event stream depends only on its *instance* fields
(:data:`~repro.experiments.config.INSTANCE_FIELDS`), never on the
network, so a grid sweeping topologies and processor-order SFCs against
a fixed workload — the paper's own §VI design — regenerates identical
events for every network.  :func:`run_campaign` instead groups cases by
:meth:`~repro.experiments.config.FmmCase.instance_key`, generates each
trial's events exactly once per group (compacted to pair histograms via
:mod:`repro.experiments.artifacts`), and broadcasts the artifact across
every network in the group.  With ``jobs > 1`` the fan-out unit is one
``(instance, trial)`` pair.  Every trial uses the same spawned child
seed as :func:`~repro.experiments.runner.run_case`, and histogram ACD
evaluation is integer-exact, so grouped campaigns are bit-identical to
per-case execution at any job count.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro import obs
from repro._typing import SeedLike
from repro.experiments.artifacts import evaluate_artifact, get_trial_artifact
from repro.experiments.config import FmmCase
from repro.experiments.reporting import format_rows
from repro.experiments.executor import ExecutionPolicy
from repro.experiments.runner import (
    CaseResult,
    TrialResult,
    _check_parts,
    aggregate_trials,
    case_topology,
    execute_units,
    resolve_jobs,
)
from repro.util.rng import spawn_seeds

__all__ = ["expand_grid", "run_campaign", "iter_campaign", "format_campaign", "case_groups"]

_GRID_FIELDS = (
    "num_particles",
    "order",
    "num_processors",
    "topology",
    "particle_curve",
    "processor_curve",
    "distribution",
    "radius",
    "nfi_metric",
)

_GRID_DEFAULTS = {"radius": 1, "nfi_metric": "chebyshev"}


def expand_grid(**axes: object) -> list[FmmCase]:
    """Build the cartesian product of case parameters.

    Every :class:`FmmCase` field may be given either a scalar or a
    sequence of values; sequences are crossed::

        cases = expand_grid(
            num_particles=10_000, order=8, num_processors=256,
            topology=("torus", "hypercube"),
            particle_curve=("hilbert", "rowmajor"),
            processor_curve="hilbert",
            distribution="uniform",
        )   # 4 cases

    ``radius`` (default 1) and ``nfi_metric`` (default ``"chebyshev"``)
    may be omitted; every other field is required.
    """
    unknown = set(axes) - set(_GRID_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown case fields: {', '.join(sorted(map(str, unknown)))}; "
            f"valid fields: {', '.join(_GRID_FIELDS)}"
        )
    values: list[Sequence[object]] = []
    names: list[str] = []
    for field in _GRID_FIELDS:
        if field not in axes:
            if field in _GRID_DEFAULTS:
                axes[field] = _GRID_DEFAULTS[field]
            else:
                raise ValueError(f"missing required case field {field!r}")
        raw = axes[field]
        seq = raw if isinstance(raw, (list, tuple)) else (raw,)
        names.append(field)
        values.append(tuple(seq))
    return [
        FmmCase(**dict(zip(names, combo))) for combo in itertools.product(*values)
    ]


def case_groups(cases: Sequence[FmmCase]) -> dict[tuple, list[int]]:
    """Indices of ``cases`` grouped by instance key (first-seen order).

    Every case in a group generates bit-identical events for a given
    trial seed; only the network they are evaluated on differs.
    """
    groups: dict[tuple, list[int]] = {}
    for i, case in enumerate(cases):
        groups.setdefault(case.instance_key(), []).append(i)
    return groups


def run_instance_trial(
    group: tuple[FmmCase, ...],
    child_seed: SeedLike,
    parts: tuple[str, ...],
) -> list[TrialResult]:
    """One ``(instance, trial)`` unit: build the artifact, evaluate the group.

    All cases in ``group`` must share an instance key; the trial's
    events are generated once and evaluated against every case's
    network (memoised per process).  Top-level (picklable) so process
    pools can execute it.
    """
    obs.count("campaign.trials")
    obs.count("campaign.case_evaluations", len(group))
    artifact = get_trial_artifact(group[0], child_seed, parts)
    return [evaluate_artifact(artifact, case_topology(case), parts) for case in group]


def iter_campaign(
    cases: Sequence[FmmCase],
    *,
    trials: int = 3,
    seed: SeedLike = 0,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> Iterator[tuple[int, CaseResult]]:
    """Stream ``(index, CaseResult)`` pairs as instance groups complete.

    The incremental face of the campaign engine: cases are grouped by
    instance key, ``(instance, trial)`` units fan out through
    :func:`~repro.experiments.executor.execute_units` (all units are
    scheduled up front, so ``jobs > 1`` parallelism is unaffected by
    streaming), and every case of a group is yielded as soon as the
    group's last trial lands — *in completion order*, so a slow or
    retrying group never holds back the checkpointing of a finished
    one.  Consumers — notably the study driver's result store — can
    persist each case before the sweep finishes, and before any
    failure propagates.  The per-case values are bit-identical to
    :func:`run_campaign` (which is this iterator, drained and
    reordered), under any job count, retry schedule or degradation.
    """
    cases = list(cases)
    if not cases:
        return
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    _check_parts(parts)
    jobs = resolve_jobs(jobs)
    groups = case_groups(cases)
    obs.count("campaign.cases", len(cases))
    obs.count("campaign.instance_groups", len(groups))
    # run_case spawns the same child seeds for every case, so one spawn
    # serves the whole campaign and sharing preserves bit-identity.
    seeds = spawn_seeds(seed, trials)
    group_indices = list(groups.values())
    units = [
        (tuple(cases[i] for i in idxs), child, parts)
        for idxs in group_indices
        for child in seeds
    ]
    # unit u belongs to group u // trials, trial u % trials
    collected: dict[int, dict[int, list[TrialResult]]] = {}
    for u, outputs in execute_units(run_instance_trial, units, jobs, policy=policy):
        group, trial = divmod(u, trials)
        slot = collected.setdefault(group, {})
        slot[trial] = outputs
        if len(slot) < trials:
            continue
        for case_pos, i in enumerate(group_indices[group]):
            yield i, aggregate_trials(
                cases[i], [slot[t][case_pos] for t in range(trials)]
            )
        del collected[group]


def run_campaign(
    cases: Iterable[FmmCase],
    *,
    trials: int = 3,
    seed: SeedLike = 0,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
) -> list[CaseResult]:
    """Execute every case, generating events once per shared instance.

    Cases agreeing on all instance fields share each trial's particle
    draw, assignment and NFI/FFI event generation; each finished
    artifact is broadcast across the group's networks.  With ``jobs >
    1`` the ``(instance, trial)`` units fan out over a persistent
    process pool.  Results are returned in input order and are
    bit-identical to ``[run_case(c, ...) for c in cases]`` at any job
    count (same spawned child seeds, integer-exact histogram ACD).
    """
    cases = list(cases)
    results: list[CaseResult | None] = [None] * len(cases)
    for i, result in iter_campaign(
        cases, trials=trials, seed=seed, parts=parts, jobs=jobs, policy=policy
    ):
        results[i] = result
    return results  # type: ignore[return-value]


def run_campaign_case(
    case: FmmCase,
    trials: int,
    seed: SeedLike,
    parts: tuple[str, ...],
) -> CaseResult:
    """Removed per-case entry point; raises pointing at :func:`run_campaign`.

    The grouped campaign engine produces bit-identical results (same
    spawned child seeds) while sharing event generation across cases,
    so there is exactly one supported spelling.
    """
    raise RuntimeError(
        "run_campaign_case() has been removed; use "
        "repro.experiments.run_campaign([case], ...) instead"
    )


def format_campaign(results: Sequence[CaseResult]) -> str:
    """Render campaign results as one row per case."""
    rows = [r.row() for r in results]
    columns = [
        "topology",
        "processor_curve",
        "particle_curve",
        "distribution",
        "num_particles",
        "num_processors",
        "radius",
        "nfi_acd",
        "ffi_acd",
    ]
    return format_rows(rows, columns)
