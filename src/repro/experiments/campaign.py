"""Batch execution of arbitrary experiment-case grids.

The study modules regenerate the paper's fixed designs; downstream users
usually want their *own* grid ("my three networks x my two curves x my
input").  :func:`run_campaign` executes any iterable of
:class:`~repro.experiments.config.FmmCase` with shared topology caching
and returns tidy per-case results; :func:`expand_grid` builds the
cartesian product from keyword lists.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro._typing import SeedLike
from repro.experiments.config import FmmCase
from repro.experiments.reporting import format_rows
from repro.experiments.runner import CaseResult, run_case
from repro.topology.registry import make_topology

__all__ = ["expand_grid", "run_campaign", "format_campaign"]

_GRID_FIELDS = (
    "num_particles",
    "order",
    "num_processors",
    "topology",
    "particle_curve",
    "processor_curve",
    "distribution",
    "radius",
)


def expand_grid(**axes: object) -> list[FmmCase]:
    """Build the cartesian product of case parameters.

    Every :class:`FmmCase` field may be given either a scalar or a
    sequence of values; sequences are crossed::

        cases = expand_grid(
            num_particles=10_000, order=8, num_processors=256,
            topology=("torus", "hypercube"),
            particle_curve=("hilbert", "rowmajor"),
            processor_curve="hilbert",
            distribution="uniform",
        )   # 4 cases
    """
    unknown = set(axes) - set(_GRID_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown case fields: {', '.join(sorted(map(str, unknown)))}; "
            f"valid fields: {', '.join(_GRID_FIELDS)}"
        )
    values: list[Sequence[object]] = []
    names: list[str] = []
    for field in _GRID_FIELDS:
        if field not in axes:
            if field == "radius":
                axes[field] = 1
            else:
                raise ValueError(f"missing required case field {field!r}")
        raw = axes[field]
        seq = raw if isinstance(raw, (list, tuple)) else (raw,)
        names.append(field)
        values.append(tuple(seq))
    return [
        FmmCase(**dict(zip(names, combo))) for combo in itertools.product(*values)
    ]


def run_campaign(
    cases: Iterable[FmmCase],
    *,
    trials: int = 3,
    seed: SeedLike = 0,
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> list[CaseResult]:
    """Execute every case, sharing topologies across identical networks."""
    cache: dict[tuple, object] = {}
    results = []
    for case in cases:
        key = (case.topology, case.num_processors, case.processor_curve)
        if key not in cache:
            cache[key] = make_topology(
                case.topology, case.num_processors, processor_curve=case.processor_curve
            )
        results.append(
            run_case(case, trials=trials, seed=seed, topology=cache[key], parts=parts)
        )
    return results


def format_campaign(results: Sequence[CaseResult]) -> str:
    """Render campaign results as one row per case."""
    rows = [r.row() for r in results]
    columns = [
        "topology",
        "processor_curve",
        "particle_curve",
        "distribution",
        "num_particles",
        "num_processors",
        "radius",
        "nfi_acd",
        "ffi_acd",
    ]
    return format_rows(rows, columns)
