"""Batch execution of arbitrary experiment-case grids.

The study modules regenerate the paper's fixed designs; downstream users
usually want their *own* grid ("my three networks x my two curves x my
input").  :func:`run_campaign` executes any iterable of
:class:`~repro.experiments.config.FmmCase` with shared topology caching
and returns tidy per-case results; :func:`expand_grid` builds the
cartesian product from keyword lists.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro._typing import SeedLike
from repro.experiments.config import FmmCase
from repro.experiments.reporting import format_rows
from repro.experiments.runner import (
    CaseResult,
    aggregate_trials,
    resolve_jobs,
    run_case,
    run_trial,
    shared_executor,
)
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = ["expand_grid", "run_campaign", "format_campaign"]

_GRID_FIELDS = (
    "num_particles",
    "order",
    "num_processors",
    "topology",
    "particle_curve",
    "processor_curve",
    "distribution",
    "radius",
)


def expand_grid(**axes: object) -> list[FmmCase]:
    """Build the cartesian product of case parameters.

    Every :class:`FmmCase` field may be given either a scalar or a
    sequence of values; sequences are crossed::

        cases = expand_grid(
            num_particles=10_000, order=8, num_processors=256,
            topology=("torus", "hypercube"),
            particle_curve=("hilbert", "rowmajor"),
            processor_curve="hilbert",
            distribution="uniform",
        )   # 4 cases
    """
    unknown = set(axes) - set(_GRID_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown case fields: {', '.join(sorted(map(str, unknown)))}; "
            f"valid fields: {', '.join(_GRID_FIELDS)}"
        )
    values: list[Sequence[object]] = []
    names: list[str] = []
    for field in _GRID_FIELDS:
        if field not in axes:
            if field == "radius":
                axes[field] = 1
            else:
                raise ValueError(f"missing required case field {field!r}")
        raw = axes[field]
        seq = raw if isinstance(raw, (list, tuple)) else (raw,)
        names.append(field)
        values.append(tuple(seq))
    return [
        FmmCase(**dict(zip(names, combo))) for combo in itertools.product(*values)
    ]


def run_campaign(
    cases: Iterable[FmmCase],
    *,
    trials: int = 3,
    seed: SeedLike = 0,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    jobs: int | None = None,
) -> list[CaseResult]:
    """Execute every case, sharing topologies across identical networks.

    With ``jobs > 1`` whole cases fan out over a persistent process pool
    (each worker runs a case's trials serially, so the per-case
    topology/model build happens exactly once); a single-case campaign
    falls back to trial-level fan-out.  Every trial uses the same
    spawned child seed as the serial path, so results are identical for
    any ``jobs``.
    """
    cases = list(cases)
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(cases) == 1:
        # a single case can only parallelise over its trials
        return [run_case(cases[0], trials=trials, seed=seed, parts=parts, jobs=jobs)]
    if jobs > 1 and len(cases) > 1:
        return _run_campaign_parallel(cases, trials=trials, seed=seed, parts=parts, jobs=jobs)
    cache: dict[tuple, object] = {}
    results = []
    for case in cases:
        key = (case.topology, case.num_processors, case.processor_curve)
        if key not in cache:
            cache[key] = make_topology(
                case.topology, case.num_processors, processor_curve=case.processor_curve
            )
        results.append(
            run_case(case, trials=trials, seed=seed, topology=cache[key], parts=parts, jobs=1)
        )
    return results


def run_campaign_case(
    case: FmmCase,
    trials: int,
    seed: SeedLike,
    parts: tuple[str, ...],
) -> CaseResult:
    """One whole case, serially — the campaign's unit of parallel work.

    Top-level (picklable) for process pools.  Fanning out *cases* rather
    than individual trials keeps each case's topology/model build on a
    single worker; the same spawned child seeds as the serial path make
    the results bit-identical.
    """
    outputs = [run_trial(case, child, parts) for child in spawn_seeds(seed, trials)]
    return aggregate_trials(case, outputs)


def _run_campaign_parallel(
    cases: list[FmmCase],
    *,
    trials: int,
    seed: SeedLike,
    parts: tuple[str, ...],
    jobs: int,
) -> list[CaseResult]:
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    pool = shared_executor(jobs)
    return list(
        pool.map(
            run_campaign_case,
            cases,
            [trials] * len(cases),
            [seed] * len(cases),
            [parts] * len(cases),
        )
    )


def format_campaign(results: Sequence[CaseResult]) -> str:
    """Render campaign results as one row per case."""
    rows = [r.row() for r in results]
    columns = [
        "topology",
        "processor_curve",
        "particle_curve",
        "distribution",
        "num_particles",
        "num_processors",
        "radius",
        "nfi_acd",
        "ffi_acd",
    ]
    return format_rows(rows, columns)
