"""Tables I & II — particle-order x processor-order SFC combinations (§VI-A).

16 curve pairings x 3 input distributions on a torus; near-field
(Table I) and far-field (Table II) ACD are produced by the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.distributions.registry import PAPER_DISTRIBUTIONS
from repro.experiments.config import FmmCase, Scale, active_scale
from repro.experiments.reporting import format_matrix, pretty
from repro.experiments.runner import run_case
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import make_topology

__all__ = ["SfcPairsResult", "run_sfc_pairs", "format_sfc_pairs"]


@dataclass(frozen=True)
class SfcPairsResult:
    """ACD matrices per distribution for both interaction models.

    ``nfi[dist][processor_curve][particle_curve]`` (and ``ffi`` alike)
    hold trial-averaged ACD values — the exact layout of the paper's
    Tables I and II.
    """

    distributions: tuple[str, ...]
    processor_curves: tuple[str, ...]
    particle_curves: tuple[str, ...]
    nfi: dict[str, dict[str, dict[str, float]]]
    ffi: dict[str, dict[str, dict[str, float]]]


def run_sfc_pairs(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> SfcPairsResult:
    """Run the full 16-combination study of §VI-A.

    ``parts`` restricts the evaluation to one interaction model when only
    Table I (``("nfi",)``) or Table II (``("ffi",)``) is required.
    """
    preset = scale if isinstance(scale, Scale) else active_scale(scale)
    n_trials = trials if trials is not None else preset.trials
    nfi: dict[str, dict[str, dict[str, float]]] = {}
    ffi: dict[str, dict[str, dict[str, float]]] = {}
    for dist in distributions:
        nfi[dist] = {c: {} for c in curves}
        ffi[dist] = {c: {} for c in curves}
    for proc_curve in curves:
        # One network per processor ordering, shared across all cases.
        net = make_topology(topology, preset.pairs_processors, processor_curve=proc_curve)
        for dist in distributions:
            for part_curve in curves:
                case = FmmCase(
                    num_particles=preset.pairs_particles,
                    order=preset.pairs_order,
                    num_processors=preset.pairs_processors,
                    topology=topology,
                    particle_curve=part_curve,
                    processor_curve=proc_curve,
                    distribution=dist,
                    radius=1,
                )
                result = run_case(case, trials=n_trials, seed=seed, topology=net, parts=parts)
                nfi[dist][proc_curve][part_curve] = result.nfi_acd
                ffi[dist][proc_curve][part_curve] = result.ffi_acd
    return SfcPairsResult(
        distributions=tuple(distributions),
        processor_curves=tuple(curves),
        particle_curves=tuple(curves),
        nfi=nfi,
        ffi=ffi,
    )


def format_sfc_pairs(result: SfcPairsResult) -> str:
    """Render both tables in the paper's layout."""
    blocks = []
    for table, data in (("Table I (NFI)", result.nfi), ("Table II (FFI)", result.ffi)):
        for dist in result.distributions:
            blocks.append(
                format_matrix(
                    data[dist],
                    result.processor_curves,
                    result.particle_curves,
                    title=f"{table} — {pretty(dist)} distribution, ACD",
                )
            )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_sfc_pairs(run_sfc_pairs()))


if __name__ == "__main__":  # pragma: no cover
    main()
