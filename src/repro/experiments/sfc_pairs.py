"""Tables I & II — particle-order x processor-order SFC combinations (§VI-A).

16 curve pairings x 3 input distributions on a torus; near-field
(Table I) and far-field (Table II) ACD are produced by the same runs.
The study declares one :class:`~repro.experiments.study.FmmUnit` per
``(distribution, processor_curve, particle_curve)`` cell; the shared
driver lowers the whole grid through the grouped campaign engine, so
all 4 processor orderings of a given ``(distribution, particle_curve)``
instance share each trial's generated events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.distributions.registry import PAPER_DISTRIBUTIONS
from repro.experiments.config import FmmCase, Scale
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_matrix, pretty
from repro.experiments.study import (
    FmmUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
    run_study,
)
from repro.sfc.registry import PAPER_CURVES

__all__ = ["SfcPairsResult", "SFC_PAIRS_STUDY", "run_sfc_pairs", "format_sfc_pairs"]


@dataclass(frozen=True)
class SfcPairsResult:
    """ACD matrices per distribution for both interaction models.

    ``nfi[dist][processor_curve][particle_curve]`` (and ``ffi`` alike)
    hold trial-averaged ACD values — the exact layout of the paper's
    Tables I and II.
    """

    distributions: tuple[str, ...]
    processor_curves: tuple[str, ...]
    particle_curves: tuple[str, ...]
    nfi: dict[str, dict[str, dict[str, float]]]
    ffi: dict[str, dict[str, dict[str, float]]]


def plan_sfc_pairs(
    ctx: StudyContext,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> StudyPlan:
    """Declare the §VI-A grid: 16 pairings x 3 distributions."""
    preset = ctx.preset()
    units = tuple(
        FmmUnit(
            key=(dist, proc_curve, part_curve),
            case=FmmCase(
                num_particles=preset.pairs_particles,
                order=preset.pairs_order,
                num_processors=preset.pairs_processors,
                topology=topology,
                particle_curve=part_curve,
                processor_curve=proc_curve,
                distribution=dist,
                radius=1,
            ),
        )
        for proc_curve in curves
        for dist in distributions
        for part_curve in curves
    )
    return StudyPlan(
        units=units,
        trials=preset.resolve_trials(ctx.trials),
        seed=ctx.seed,
        parts=tuple(parts),
        meta={"distributions": tuple(distributions), "curves": tuple(curves)},
    )


def collect_sfc_pairs(plan: StudyPlan, outputs: list) -> SfcPairsResult:
    """Assemble both tables from the per-cell case results."""
    by_key = outputs_by_key(plan, outputs)
    distributions, curves = plan.meta["distributions"], plan.meta["curves"]
    nfi = {d: {c: {} for c in curves} for d in distributions}
    ffi = {d: {c: {} for c in curves} for d in distributions}
    for dist in distributions:
        for proc in curves:
            for part in curves:
                result = by_key[(dist, proc, part)]
                nfi[dist][proc][part] = result.nfi_acd
                ffi[dist][proc][part] = result.ffi_acd
    return SfcPairsResult(
        distributions=distributions,
        processor_curves=curves,
        particle_curves=curves,
        nfi=nfi,
        ffi=ffi,
    )


def format_sfc_pairs(result: SfcPairsResult) -> str:
    """Render both tables in the paper's layout."""
    blocks = []
    for table, data in (("Table I (NFI)", result.nfi), ("Table II (FFI)", result.ffi)):
        for dist in result.distributions:
            blocks.append(
                format_matrix(
                    data[dist],
                    result.processor_curves,
                    result.particle_curves,
                    title=f"{table} — {pretty(dist)} distribution, ACD",
                )
            )
    return "\n\n".join(blocks)


def _flatten(result: SfcPairsResult) -> list[dict]:
    return [
        {
            "model": model,
            "distribution": dist,
            "processor_curve": proc,
            "particle_curve": part,
            "acd": table[dist][proc][part],
        }
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for dist in result.distributions
        for proc in result.processor_curves
        for part in result.particle_curves
    ]


SFC_PAIRS_STUDY = register_study(
    Study(
        name="tables",
        title="Tables I & II — SFC pairings x distributions",
        result_type=SfcPairsResult,
        plan=plan_sfc_pairs,
        collect=collect_sfc_pairs,
        render=format_sfc_pairs,
        schema=ResultSchema(SfcPairsResult, flatten=_flatten),
    )
)


def run_sfc_pairs(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> SfcPairsResult:
    """Removed legacy runner for the §VI-A study; raises with the
    ``run_study("tables")`` replacement."""
    _legacy_runner_error("run_sfc_pairs", "tables")
    raise AssertionError("unreachable")


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_sfc_pairs(run_study(SFC_PAIRS_STUDY)))


if __name__ == "__main__":  # pragma: no cover
    main()
