"""Persistent, content-addressed store of per-case study results.

Large SFC sweeps are exactly the workloads where repeated re-computation
wastes the most time and energy: a paper-scale campaign takes tens of
minutes, and extending a sweep by one more processor count (or resuming
after an interruption) used to mean recomputing every finished case.
This module gives the study driver a durable memo:

* **Content-addressed keys** — every case is identified by the SHA-256
  of a canonical-JSON key covering the full case specification, the
  trial count, the experiment seed and the code-schema version
  (:data:`STORE_SCHEMA_VERSION`, bumped whenever the computation
  changes meaning).  Identical inputs hit; anything else misses.
* **Per-case granularity** — one file per case, written *as each case
  completes* (the campaign engine streams finished cases), so an
  interrupted sweep resumes from the cases already done and an extended
  sweep computes only the new cases.
* **Atomic, durable writes** — values are fsynced into a temp file in
  the store directory, published with ``os.replace`` and the directory
  entry fsynced; a crash or power loss mid-write never leaves a torn
  entry, and concurrent writers of the same key are safe.
* **Corruption tolerance** — an entry that cannot be read, parsed *or
  decoded* (truncated payload, codec schema drift) reads as a miss:
  the bad file is quarantined as ``*.corrupt`` and counted under
  ``store.corrupt``, and the case is simply recomputed.

The store is enabled by pointing ``REPRO_STORE`` at a directory (or the
CLI's ``--store DIR``; ``--no-store`` bypasses it).  Values round-trip
through JSON: Python's float repr is exact, so a resumed result is
bit-identical to a recomputed one.  Tuples inside stored values come
back as lists — study unit outputs are therefore defined in JSON-native
shapes, with dataclass values (``CaseResult`` and friends) handled by a
small extensible codec (:func:`register_store_codec`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.experiments.config import FmmCase
from repro.experiments.runner import CaseResult
from repro.runtime import runtime_config

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MISS",
    "ResultStore",
    "default_store",
    "canonical_key",
    "register_store_codec",
    "encode_value",
    "decode_value",
]

#: Version of the result semantics.  Part of every store key: bump it
#: when a change makes previously stored results non-comparable (event
#: generation, ACD accounting, seed discipline, ...), and stale entries
#: become unreachable instead of silently wrong.
STORE_SCHEMA_VERSION = 1

#: Sentinel returned by :meth:`ResultStore.get` on a miss (stored values
#: may legitimately be any JSON value, including ``null``).
MISS = object()

_TAG = "__store__"

#: tag -> (type, encode to JSON tree, decode from JSON tree)
_CODECS: dict[str, tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_store_codec(
    tag: str,
    cls: type,
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
) -> None:
    """Teach the store to round-trip instances of ``cls``.

    ``encode`` must return a JSON-able tree (it may contain further
    codec-registered values); ``decode`` inverts it.  Registration is
    idempotent per tag; studies register their row dataclasses at import
    time, so any future result type persists without touching this
    module.
    """
    existing = _CODECS.get(tag)
    if existing is not None and existing[0] is not cls:
        raise ValueError(f"store codec tag {tag!r} already bound to {existing[0].__name__}")
    _CODECS[tag] = (cls, encode, decode)


def encode_value(value: Any) -> Any:
    """Recursively convert a unit output to a JSON-able tree."""
    for tag, (cls, encode, _) in _CODECS.items():
        if isinstance(value, cls):
            return {_TAG: tag, "data": encode_value(encode(value))}
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"store values need string dict keys, got {k!r}")
            out[k] = encode_value(v)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot store value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is not None:
            try:
                _, _, decode = _CODECS[tag]
            except KeyError:
                raise ValueError(f"stored value has unknown codec tag {tag!r}") from None
            return decode(decode_value(value["data"]))
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to stable storage (best effort).

    Required for the rename in :meth:`ResultStore.put` to survive a
    power loss; skipped silently where directories cannot be opened
    (e.g. Windows).
    """
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def canonical_key(key: Any) -> str:
    """Canonical JSON text of a key tree (sorted keys, no whitespace).

    Raises ``TypeError`` for non-JSON-able keys — callers treat that as
    "this unit cannot be addressed" and bypass the store.
    """
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """A directory of content-addressed, atomically written results.

    Each entry is ``<sha256(canonical key)>.json`` holding the canonical
    key (for audit/debugging — the hash alone is write-only) and the
    encoded value.  ``get`` verifies the stored key against the request,
    so a corrupt or colliding file reads as a miss rather than a wrong
    answer.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, key: Any) -> Path:
        """The entry file a key addresses."""
        digest = hashlib.sha256(canonical_key(key).encode()).hexdigest()
        return self.root / f"{digest}.json"

    def _miss(self) -> Any:
        self.misses += 1
        obs.count("store.misses")
        return MISS

    def _quarantine(self, path: Path) -> Any:
        """Move a corrupt entry aside (``*.corrupt``) and read as a miss.

        The bad bytes are kept for forensics but leave the addressable
        namespace, so the next :meth:`put` of the key is a clean write
        and repeated :meth:`get`\\ s stop re-parsing garbage.
        """
        self.corrupt += 1
        obs.count("store.corrupt")
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass  # a concurrent reader may have quarantined it already
        return self._miss()

    def get(self, key: Any) -> Any:
        """The stored value for ``key``, or :data:`MISS`.

        *Any* failure to produce a value — unreadable file, invalid
        JSON, a payload that drifted from the codec schema — reads as a
        miss (the corrupt file is quarantined and counted under
        ``store.corrupt``), never as an exception: a damaged entry must
        cost a recomputation, not the run.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return self._miss()
        except (OSError, UnicodeDecodeError):
            return self._quarantine(path)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return self._quarantine(path)
        if not isinstance(payload, dict):
            return self._quarantine(path)
        if payload.get("key") != json.loads(canonical_key(key)):
            return self._miss()  # collision/tamper: put() overwrites in place
        try:
            value = decode_value(payload["value"])
        except Exception:
            # decode_value raises KeyError/TypeError/ValueError on
            # truncated or schema-drifted payloads; all of them are
            # "this entry is unusable", not caller errors.
            return self._quarantine(path)
        self.hits += 1
        obs.count("store.hits")
        return value

    def put(self, key: Any, value: Any) -> Path:
        """Persist ``value`` under ``key``, atomically *and* durably.

        The payload is fsynced in the temp file before ``os.replace``
        publishes it, and the directory entry is fsynced after — a
        power loss leaves either the old entry or the complete new one,
        never a torn-but-parseable file.
        """
        path = self.path_for(key)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": json.loads(canonical_key(key)),
            "value": encode_value(value),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(self.root)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        obs.count("store.puts")
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> None:
        """Delete every entry, quarantined files included (keeps the directory)."""
        for pattern in ("*.json", "*.corrupt"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/corruption/residency counters (for tests and diagnostics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }


def default_store() -> ResultStore | None:
    """The store named by the runtime config (``REPRO_STORE``), or ``None``."""
    root = runtime_config().store_dir
    return ResultStore(root) if root else None


def _encode_case_result(result: CaseResult) -> dict:
    return dataclasses.asdict(result)


def _decode_case_result(data: dict) -> CaseResult:
    return CaseResult(**{**data, "case": FmmCase(**data["case"])})


register_store_codec("CaseResult", CaseResult, _encode_case_result, _decode_case_result)
