"""Persistent, content-addressed store of per-case study results.

Large SFC sweeps are exactly the workloads where repeated re-computation
wastes the most time and energy: a paper-scale campaign takes tens of
minutes, and extending a sweep by one more processor count (or resuming
after an interruption) used to mean recomputing every finished case.
This module gives the study driver — and the query service built on top
of it (:mod:`repro.service`) — a durable memo:

* **Content-addressed keys** — every case is identified by the SHA-256
  of a canonical-JSON key covering the full case specification, the
  trial count, the experiment seed and the code-schema version
  (:data:`STORE_SCHEMA_VERSION`, bumped whenever the computation
  changes meaning).  Identical inputs hit; anything else misses.
* **Per-case granularity** — one entry per case, written *as each case
  completes* (the campaign engine streams finished cases), so an
  interrupted sweep resumes from the cases already done and an extended
  sweep computes only the new cases.
* **Pluggable storage** — the :class:`ResultStore` owns the store
  *semantics* (keys, codecs, corruption tolerance, counters) and
  delegates raw payload IO to a :class:`~repro.experiments.backends.
  StoreBackend`: the original directory-of-JSON layout, or a shared
  SQLite database in WAL mode so many processes and hosts read and
  write one warm store concurrently.  Selected by URL
  (:func:`open_store`): ``REPRO_STORE=results/`` or
  ``REPRO_STORE=sqlite://results.db``.
* **Atomic, durable writes** — both backends publish entries
  atomically (fsynced temp file + ``os.replace``, or a SQLite
  transaction); a crash or power loss mid-write never leaves a torn
  entry, and concurrent writers of the same key are safe.
* **Corruption tolerance** — an entry that cannot be read, parsed *or
  decoded* (truncated payload, codec schema drift) reads as a miss:
  the bad payload is quarantined (``*.corrupt`` file / quarantine
  table) and counted under ``store.corrupt``, and the case is simply
  recomputed.

The store is enabled by pointing ``REPRO_STORE`` at a directory or
backend URL (or the CLI's ``--store``; ``--no-store`` bypasses it).
Values round-trip through JSON: Python's float repr is exact, so a
resumed result is bit-identical to a recomputed one.  Tuples inside
stored values come back as lists — study unit outputs are therefore
defined in JSON-native shapes, with dataclass values (``CaseResult``
and friends) handled by a small extensible codec
(:func:`register_store_codec`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.experiments.backends import (
    DirectoryBackend,
    SqliteBackend,
    StoreBackend,
    StoreCorruptPayload,
    open_backend,
)
from repro.experiments.config import FmmCase
from repro.experiments.runner import CaseResult
from repro.runtime import runtime_config

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MISS",
    "ResultStore",
    "StoreBackend",
    "DirectoryBackend",
    "SqliteBackend",
    "open_store",
    "default_store",
    "canonical_key",
    "register_store_codec",
    "encode_value",
    "decode_value",
]

#: Version of the result semantics.  Part of every store key: bump it
#: when a change makes previously stored results non-comparable (event
#: generation, ACD accounting, seed discipline, ...), and stale entries
#: become unreachable instead of silently wrong.
STORE_SCHEMA_VERSION = 1

#: Sentinel returned by :meth:`ResultStore.get` on a miss (stored values
#: may legitimately be any JSON value, including ``null``).
MISS = object()

_TAG = "__store__"

#: tag -> (type, encode to JSON tree, decode from JSON tree)
_CODECS: dict[str, tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}

#: Exact-type dispatch cache over :data:`_CODECS`: ``type -> (tag,
#: encode)`` for codec-registered types, ``None`` for everything else.
#: Encoding a large ``CaseResult`` tree visits thousands of plain
#: dicts/floats/strings; without the cache each one re-scanned the whole
#: codec registry with ``isinstance``.  Subclasses resolve to the first
#: matching registered base (same semantics as the ``isinstance`` scan);
#: the cache is invalidated whenever a codec registers.
_ENCODE_DISPATCH: dict[type, tuple[str, Callable[[Any], Any]] | None] = {}


def register_store_codec(
    tag: str,
    cls: type,
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
) -> None:
    """Teach the store to round-trip instances of ``cls``.

    ``encode`` must return a JSON-able tree (it may contain further
    codec-registered values); ``decode`` inverts it.  Registration is
    idempotent per tag; studies register their row dataclasses at import
    time, so any future result type persists without touching this
    module.
    """
    existing = _CODECS.get(tag)
    if existing is not None and existing[0] is not cls:
        raise ValueError(f"store codec tag {tag!r} already bound to {existing[0].__name__}")
    _CODECS[tag] = (cls, encode, decode)
    _ENCODE_DISPATCH.clear()  # a new codec may claim previously plain types


def _codec_for(tp: type) -> tuple[str, Callable[[Any], Any]] | None:
    """The codec handling exact type ``tp`` (cached), or ``None``."""
    try:
        return _ENCODE_DISPATCH[tp]
    except KeyError:
        pass
    entry = None
    for tag, (cls, encode, _) in _CODECS.items():
        if issubclass(tp, cls):
            entry = (tag, encode)
            break
    _ENCODE_DISPATCH[tp] = entry
    return entry


def encode_value(value: Any) -> Any:
    """Recursively convert a unit output to a JSON-able tree.

    Type dispatch is O(1) per node via the exact-type cache
    (:data:`_ENCODE_DISPATCH`) — the codec registry is scanned at most
    once per distinct runtime type, not once per value.
    """
    codec = _codec_for(type(value))
    if codec is not None:
        tag, encode = codec
        return {_TAG: tag, "data": encode_value(encode(value))}
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"store values need string dict keys, got {k!r}")
            out[k] = encode_value(v)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot store value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is not None:
            try:
                _, _, decode = _CODECS[tag]
            except KeyError:
                raise ValueError(f"stored value has unknown codec tag {tag!r}") from None
            return decode(decode_value(value["data"]))
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def canonical_key(key: Any) -> str:
    """Canonical JSON text of a key tree (sorted keys, no whitespace).

    Raises ``TypeError`` for non-JSON-able keys — callers treat that as
    "this unit cannot be addressed" and bypass the store.
    """
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Content-addressed, atomically written results over any backend.

    The store layer owns keys (SHA-256 of the canonical key), the value
    codec, hit/miss/corruption accounting and quarantine policy; the
    backend moves opaque payload text.  Each entry holds the canonical
    key (for audit/debugging — the hash alone is write-only) alongside
    the encoded value, and ``get`` verifies the stored key against the
    request, so a corrupt or colliding entry reads as a miss rather
    than a wrong answer.

    Construct with a directory path (the original layout), a backend
    URL (``sqlite://results.db``) or a ready-made
    :class:`~repro.experiments.backends.StoreBackend` instance.
    """

    def __init__(self, root: "str | Path | StoreBackend"):
        if isinstance(root, (str, Path)):
            self.backend: StoreBackend = open_backend(root)
        else:
            self.backend = root
        self.root = self.backend.location
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def digest_for(self, key: Any) -> str:
        """The backend address (hex SHA-256 of the canonical key)."""
        return hashlib.sha256(canonical_key(key).encode()).hexdigest()

    def path_for(self, key: Any) -> Path:
        """The entry file a key addresses (directory backend only)."""
        path_for = getattr(self.backend, "path_for", None)
        if path_for is None:
            raise TypeError(
                f"{self.backend.kind} backend keeps entries in "
                f"{self.backend.location}, not per-entry files"
            )
        return path_for(self.digest_for(key))

    def _miss(self) -> Any:
        self.misses += 1
        obs.count("store.misses")
        return MISS

    def _quarantine(self, digest: str) -> Any:
        """Move a corrupt entry aside and read as a miss.

        The bad payload is kept for forensics (``*.corrupt`` file or
        quarantine table) but leaves the addressable namespace, so the
        next :meth:`put` of the key is a clean write and repeated
        :meth:`get`\\ s stop re-parsing garbage.
        """
        self.corrupt += 1
        obs.count("store.corrupt")
        self.backend.quarantine(digest)
        return self._miss()

    def get(self, key: Any) -> Any:
        """The stored value for ``key``, or :data:`MISS`.

        *Any* failure to produce a value — unreadable payload, invalid
        JSON, a tree that drifted from the codec schema — reads as a
        miss (the corrupt entry is quarantined and counted under
        ``store.corrupt``), never as an exception: a damaged entry must
        cost a recomputation, not the run.
        """
        digest = self.digest_for(key)
        try:
            text = self.backend.get_raw(digest)
        except StoreCorruptPayload:
            return self._quarantine(digest)
        if text is None:
            return self._miss()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return self._quarantine(digest)
        if not isinstance(payload, dict):
            return self._quarantine(digest)
        if payload.get("key") != json.loads(canonical_key(key)):
            return self._miss()  # collision/tamper: put() overwrites in place
        try:
            value = decode_value(payload["value"])
        except Exception:
            # decode_value raises KeyError/TypeError/ValueError on
            # truncated or schema-drifted payloads; all of them are
            # "this entry is unusable", not caller errors.
            return self._quarantine(digest)
        self.hits += 1
        obs.count("store.hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        """Persist ``value`` under ``key``, atomically *and* durably.

        The directory backend fsyncs the payload into a temp file
        before ``os.replace`` publishes it; the SQLite backend commits
        one WAL transaction — either way a power loss leaves the old
        entry or the complete new one, never a torn-but-parseable
        payload.
        """
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": json.loads(canonical_key(key)),
            "value": encode_value(value),
        }
        self.backend.put_raw(self.digest_for(key), json.dumps(payload, sort_keys=True))
        obs.count("store.puts")

    def contains(self, key: Any) -> bool:
        """Whether an entry exists for ``key`` (no decode, no counters)."""
        return self.backend.contains(self.digest_for(key))

    def __len__(self) -> int:
        return int(self.backend.stats()["entries"])

    def clear(self) -> None:
        """Delete every entry, quarantined payloads included."""
        self.backend.clear()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def close(self) -> None:
        """Release backend resources (idempotent; the store stays usable)."""
        self.backend.close()

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/corruption/residency counters (for tests and diagnostics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "entries": len(self),
        }

    def storage_stats(self) -> dict[str, Any]:
        """Uniform residency profile of the underlying storage.

        The ``store stats`` CLI face: backend kind and location, entry
        count, total payload bytes, the code-schema version current
        writes carry, and how many payloads sit in quarantine.
        """
        return {
            "backend": self.backend.kind,
            "location": str(self.backend.location),
            "schema_version": STORE_SCHEMA_VERSION,
            **self.backend.stats(),
        }

    def __repr__(self) -> str:
        return f"ResultStore({self.backend!r})"


def open_store(url: "str | Path | None") -> ResultStore | None:
    """Open the store a URL names (``None`` stays ``None``).

    Accepts everything :func:`repro.runtime.parse_store_url` does: a
    plain directory path, ``dir://path`` or ``sqlite://path``.
    """
    return ResultStore(url) if url else None


def default_store() -> ResultStore | None:
    """The store named by the runtime config (``REPRO_STORE``), or ``None``."""
    return open_store(runtime_config().store_dir)


def _encode_case_result(result: CaseResult) -> dict:
    return dataclasses.asdict(result)


def _decode_case_result(data: dict) -> CaseResult:
    return CaseResult(**{**data, "case": FmmCase(**data["case"])})


register_store_codec("CaseResult", CaseResult, _encode_case_result, _decode_case_result)
