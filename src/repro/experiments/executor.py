"""Fault-tolerant unit execution over a shared process pool.

The campaign/study engine fans every paper experiment across one
process-wide ``ProcessPoolExecutor`` — which used to make a single
worker crash fatal twice over: the ``BrokenProcessPool`` aborted the
run, *and* the poisoned pool stayed installed as the module-level
shared executor, breaking every later call in the same process.  This
module owns the pool lifecycle and the execution policy that makes
failures survivable:

* **Broken-pool recovery** — :func:`shared_executor` detects a broken
  (or shut-down) pool and rebuilds it instead of returning the
  poisoned global; :func:`execute_units` reclaims the in-flight units
  of a broken pool and resubmits them to the fresh one
  (``pool.broken`` / ``pool.rebuilds`` counters).
* **Per-unit retry** — transient unit exceptions are retried with
  exponential backoff under a bounded attempt budget
  (``units.retries``).
* **Per-unit wall-clock timeouts** — a hung worker is detected by
  deadline, the pool is torn down (hung processes terminated) and the
  unit retried (``units.timeouts``).
* **Graceful degradation** — when the pool breaks repeatedly, the
  remaining units run in-process instead of failing the sweep
  (``units.degraded_serial``).
* **Bounded shutdown** — the ``atexit`` hook cancels queued work and
  waits a bounded time before terminating workers, so a hung worker
  can no longer block interpreter exit forever.

Faults injected via :mod:`repro.faults` (``REPRO_FAULTS`` /
``configure(faults=...)``) are threaded through
:func:`repro.obs.record_unit` into every pool unit, making all of the
above reproducible in tests.  None of the machinery touches result
values: a retried, rebuilt or degraded run is bit-identical to a
fault-free serial run.
"""

from __future__ import annotations

import atexit
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro import obs
from repro.faults import FaultPlan, parse_faults
from repro.obs.recorder import record_unit
from repro.runtime import runtime_config

__all__ = [
    "ExecutionPolicy",
    "default_policy",
    "execute_units",
    "UnitFailedError",
    "UnitTimeoutError",
    "shared_executor",
    "shutdown_shared_executor",
]


class UnitFailedError(RuntimeError):
    """A unit exhausted its attempt budget; the last cause is chained."""

    def __init__(self, index: int, attempts: int, detail: str):
        super().__init__(f"unit {index} failed after {attempts} attempt(s): {detail}")
        self.index = index
        self.attempts = attempts


class UnitTimeoutError(UnitFailedError):
    """A unit exceeded its wall-clock timeout on every allowed attempt."""

    def __init__(self, index: int, attempts: int, timeout: float):
        super().__init__(index, attempts, f"exceeded the {timeout:g}s unit timeout")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How (not what) units execute: budgets for surviving faults.

    ``max_retries`` bounds *additional* attempts after the first try of
    a unit that raised or timed out; ``unit_timeout`` is the per-unit
    wall-clock budget in seconds (``None`` disables timeouts — a
    necessity for the serial path, which cannot preempt a unit);
    backoff between retries is ``backoff_base * 2**(failures-1)``
    capped at ``backoff_cap``; ``max_pool_rebuilds`` bounds
    *consecutive* pool breaks before execution degrades to in-process;
    ``strict`` fails fast on the first fault instead (completed units
    are still flushed first); ``faults`` is the injection plan.
    """

    max_retries: int = 2
    unit_timeout: float | None = None
    backoff_base: float = 0.1
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 3
    strict: bool = False
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0 or None, got {self.unit_timeout}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}")


def default_policy() -> ExecutionPolicy:
    """The policy named by the runtime config (``REPRO_MAX_RETRIES``,
    ``REPRO_UNIT_TIMEOUT``, ``REPRO_STRICT``, ``REPRO_FAULTS``)."""
    cfg = runtime_config()
    plan = parse_faults(cfg.faults)
    return ExecutionPolicy(
        max_retries=cfg.max_retries,
        unit_timeout=cfg.unit_timeout,
        strict=cfg.strict,
        faults=plan if plan else None,
    )


# -- the shared process pool --------------------------------------------------

_executor: ProcessPoolExecutor | None = None
_executor_workers = 0

#: Bound on the atexit shutdown: queued work is cancelled, running
#: workers get this many seconds to finish, stragglers are terminated.
ATEXIT_TIMEOUT_S = 5.0


def _pool_unusable(pool: ProcessPoolExecutor) -> bool:
    """Whether the pool can no longer accept work (broken or shut down)."""
    return bool(getattr(pool, "_broken", False)) or bool(
        getattr(pool, "_shutdown_thread", False)
    )


def _terminate_pool(pool: ProcessPoolExecutor, timeout: float) -> None:
    """Tear a pool down within ``timeout`` seconds, killing stragglers."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    deadline = time.monotonic() + timeout
    for proc in processes:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if proc.is_alive():
                proc.kill()
        except Exception:
            pass  # the process may already be reaped by the pool itself


def shared_executor(jobs: int) -> ProcessPoolExecutor:
    """A persistent process pool, grown on demand and reused across calls.

    Studies invoke the campaign engine once per sweep; keeping the
    workers alive between calls means each worker pays per-case
    topology builds once and the pool spawn cost is paid once per
    session rather than once per case.  A pool poisoned by a worker
    crash (``BrokenProcessPool``) or an earlier shutdown is *detected
    and replaced* here — callers always receive a usable pool, never
    the broken global.  Growing the pool retires the old one so its
    workers terminate instead of being orphaned, and the final pool is
    shut down at interpreter exit with a bounded wait.
    """
    global _executor, _executor_workers
    if _executor is not None and _pool_unusable(_executor):
        obs.count("pool.broken_replaced")
        discard_shared_executor()
    if _executor is None or _executor_workers < jobs:
        if _executor is not None:
            _executor.shutdown(wait=True)
        _executor = ProcessPoolExecutor(max_workers=jobs)
        _executor_workers = jobs
    return _executor


def discard_shared_executor(timeout: float = ATEXIT_TIMEOUT_S) -> None:
    """Forget the shared pool, terminating its processes within ``timeout``.

    Used after a pool break or a unit timeout: the old pool's workers
    may be dead or hung, so they are torn down forcibly rather than
    joined; the next :func:`shared_executor` call builds a fresh pool.
    """
    global _executor, _executor_workers
    pool, _executor, _executor_workers = _executor, None, 0
    if pool is not None:
        _terminate_pool(pool, timeout)


def shutdown_shared_executor(
    wait: bool = True, cancel_futures: bool = False, timeout: float | None = None
) -> None:
    """Shut down the persistent pool (no-op when none is alive).

    With ``timeout`` set the shutdown is *bounded*: queued futures are
    cancelled (regardless of ``cancel_futures``), running workers get
    ``timeout`` seconds to finish, and stragglers are terminated — a
    hung worker cannot block the caller forever.
    """
    global _executor, _executor_workers
    pool, _executor, _executor_workers = _executor, None, 0
    if pool is None:
        return
    if timeout is not None:
        _terminate_pool(pool, timeout)
    else:
        pool.shutdown(wait=wait, cancel_futures=cancel_futures)


@atexit.register
def _shutdown_at_exit() -> None:
    """Bounded atexit shutdown — a hung worker must not hang ``exit()``.

    The previous hook shut down with ``wait=True`` and no bound, so one
    stuck worker made interpreter exit block forever; now queued work
    is cancelled and stragglers are terminated after
    :data:`ATEXIT_TIMEOUT_S`.
    """
    shutdown_shared_executor(wait=False, cancel_futures=True, timeout=ATEXIT_TIMEOUT_S)


# -- fault-tolerant execution -------------------------------------------------


def _sleep_backoff(policy: ExecutionPolicy, failures: int) -> None:
    if policy.backoff_base <= 0:
        return
    time.sleep(min(policy.backoff_cap, policy.backoff_base * 2 ** (failures - 1)))


def _run_unit_inline(
    fn: Callable[..., Any],
    args: Sequence[Any],
    index: int,
    policy: ExecutionPolicy,
    recorder,
    attempt: int = 0,
) -> Any:
    """One unit in-process, with fault injection and bounded retries."""
    failures = 0
    while True:
        start = time.perf_counter()
        try:
            if policy.faults is not None:
                from repro.faults import inject

                inject(policy.faults, index, attempt, in_worker=False)
            result = fn(*args)
        except Exception as exc:
            failures += 1
            attempt += 1
            if policy.strict or failures > policy.max_retries:
                raise UnitFailedError(index, failures, repr(exc)) from exc
            obs.count("units.retries")
            _sleep_backoff(policy, failures)
            continue
        if recorder is not None:
            recorder.count("units.busy_s", time.perf_counter() - start)
            recorder.count("units.serial", 1)
        return result


def execute_units(
    fn: Callable[..., Any],
    arglists,
    jobs: int,
    policy: ExecutionPolicy | None = None,
) -> Iterator[tuple[int, Any]]:
    """Apply ``fn`` across argument tuples; yield ``(index, result)``.

    The unordered core of the experiments fan-out: results stream *as
    units complete* (any order), so callers can checkpoint each one
    before the batch — or a failure — ends the run.  With ``jobs > 1``
    units run on the shared pool under the fault-tolerance policy
    (retries, timeouts, pool rebuilds, serial degradation); otherwise
    in-process, where ``raise``-fault injection and retries still
    apply.  When a unit exhausts its budget a :class:`UnitFailedError`
    (or :class:`UnitTimeoutError`) propagates — after every completed
    unit has been yielded, so consumers flush finished work first.

    Worker-side counters travel back inside the ordinary result stream
    (:func:`repro.obs.record_unit`) and merge into the parent recorder,
    so aggregated totals agree with a serial run at any job count.
    """
    arglists = list(arglists)
    if policy is None:
        policy = default_policy()
    recorder = obs.get_recorder()
    if jobs <= 1 or len(arglists) <= 1:
        for i, args in enumerate(arglists):
            yield i, _run_unit_inline(fn, args, i, policy, recorder)
        return
    yield from _execute_pooled(fn, arglists, jobs, policy, recorder)


def _execute_pooled(
    fn: Callable[..., Any],
    arglists: list,
    jobs: int,
    policy: ExecutionPolicy,
    recorder,
) -> Iterator[tuple[int, Any]]:
    n = len(arglists)
    attempts = [0] * n  # total submissions (drives the fault schedule)
    failures = [0] * n  # attributed failures (drives the retry budget)
    remaining = set(range(n))
    running: dict[Future, int] = {}
    deadlines: dict[Future, float] = {}
    consecutive_breaks = 0
    pool = shared_executor(jobs)
    if recorder is not None:
        recorder.gauge("pool.jobs", jobs)
        recorder.gauge("pool.queue", n)
    start_wall = time.perf_counter()

    def submit(i: int) -> None:
        future = pool.submit(
            record_unit,
            fn,
            *arglists[i],
            unit_index=i,
            attempt=attempts[i],
            faults=policy.faults,
            in_worker=True,
        )
        running[future] = i
        if policy.unit_timeout is not None:
            deadlines[future] = time.monotonic() + policy.unit_timeout

    def reclaim_running() -> list[int]:
        """Drop every in-flight future (their pool is gone); resubmittable."""
        victims = sorted(running.values())
        running.clear()
        deadlines.clear()
        for i in victims:
            attempts[i] += 1  # any of them may have been the crasher
        return victims

    def rebuild() -> None:
        nonlocal pool
        obs.count("pool.rebuilds")
        pool = shared_executor(jobs)

    def unit_failed(i: int, exc: BaseException) -> None:
        """Account one attributed failure; raises when the budget is gone."""
        failures[i] += 1
        attempts[i] += 1
        if policy.strict or failures[i] > policy.max_retries:
            raise UnitFailedError(i, failures[i], repr(exc)) from exc
        obs.count("units.retries")
        _sleep_backoff(policy, failures[i])

    def unpack(payload: tuple) -> Any:
        result, counters, busy = payload
        if recorder is not None:
            recorder.merge_counters(counters)
            recorder.count("pool.units", 1)
            recorder.count("pool.busy_s", busy)
        return result

    try:
        for i in range(n):
            submit(i)
        while running:
            now = time.monotonic()
            expired = sorted(
                running[f] for f, dl in deadlines.items() if dl <= now and not f.done()
            )
            if expired:
                # hung worker(s): the whole pool must be torn down — the
                # stuck process cannot be preempted any other way.
                victims = reclaim_running()
                discard_shared_executor()
                fatal: int | None = None
                for i in expired:
                    failures[i] += 1
                    obs.count("units.timeouts")
                    if policy.strict or failures[i] > policy.max_retries:
                        fatal = i
                if fatal is not None:
                    raise UnitTimeoutError(
                        fatal, failures[fatal], policy.unit_timeout or 0.0
                    )
                rebuild()
                for i in victims:
                    submit(i)
                continue
            timeout = max(0.0, min(deadlines.values()) - now) if deadlines else None
            done, _ = wait(list(running), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                continue  # woke on a deadline; handled at the top of the loop
            completed: list[tuple[int, tuple]] = []
            errored: list[tuple[int, BaseException]] = []
            broken_units: list[int] = []
            broken_exc: BaseException | None = None
            for future in done:
                i = running.pop(future)
                deadlines.pop(future, None)
                if future.cancelled():
                    broken_units.append(i)
                    continue
                exc = future.exception()
                if exc is None:
                    completed.append((i, future.result()))
                elif isinstance(exc, BrokenExecutor):
                    broken_units.append(i)
                    broken_exc = broken_exc or exc
                else:
                    errored.append((i, exc))
            # 1) flush finished units first — on any failure below, the
            #    consumer has already seen (and can persist) these.
            for i, payload in sorted(completed):
                consecutive_breaks = 0
                remaining.discard(i)
                yield i, unpack(payload)
            # 2) a broken pool invalidates every in-flight unit
            if broken_units or (broken_exc is not None):
                obs.count("pool.broken")
                consecutive_breaks += 1
                victims = sorted(broken_units) + reclaim_running()
                for i in broken_units:
                    attempts[i] += 1
                discard_shared_executor()
                if policy.strict:
                    raise broken_exc if broken_exc is not None else UnitFailedError(
                        victims[0], attempts[victims[0]], "process pool broke"
                    )
                for i, exc in errored:
                    unit_failed(i, exc)  # may raise once the budget is gone
                    if i not in victims:
                        victims.append(i)
                if consecutive_breaks > policy.max_pool_rebuilds:
                    # graceful degradation: finish the sweep in-process
                    for i in sorted(remaining):
                        obs.count("units.degraded_serial")
                        result = _run_unit_inline(
                            fn, arglists[i], i, policy, recorder, attempt=attempts[i]
                        )
                        remaining.discard(i)
                        yield i, result
                    return
                rebuild()
                for i in victims:
                    submit(i)
            else:
                for i, exc in errored:
                    unit_failed(i, exc)  # may raise once the budget is gone
                    submit(i)
    finally:
        for future in running:
            future.cancel()
        if recorder is not None:
            recorder.count("pool.wall_s", time.perf_counter() - start_wall)
