"""§VI-C parametric studies: radius, input size and distribution sweeps.

The text of §VI-C reports three observations beyond Fig. 7:

* increasing the near-field radius raises all ACDs proportionately and
  never reorders the curves;
* growing the particle count (fixed processors) preserves the ordering
  while amplifying the row-major penalty;
* across distributions the NFI ACD is best for uniform, then
  exponential, then normal, while the FFI ACD is largely insensitive.

Each sweep is a registered study sharing one :class:`SweepResult`
reducer; a ``(value, curve)`` grid point is one declared unit, so the
campaign engine shares event generation across points with equal
instance keys (e.g. every radius of a curve reuses the same particle
assignment) and fans the grid out over ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.distributions.registry import PAPER_DISTRIBUTIONS
from repro.experiments.config import FmmCase, Scale
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_series
from repro.experiments.study import (
    FmmUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
)
from repro.sfc.registry import PAPER_CURVES

__all__ = [
    "SweepResult",
    "RADIUS_SWEEP_STUDY",
    "INPUT_SIZE_SWEEP_STUDY",
    "DISTRIBUTION_SWEEP_STUDY",
    "run_radius_sweep",
    "run_input_size_sweep",
    "run_distribution_sweep",
    "format_sweep",
]

#: Default sweep axes (§VI-C text).
DEFAULT_RADII: tuple[int, ...] = (1, 2, 4, 6)
DEFAULT_FRACTIONS: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class SweepResult:
    """ACD series per curve over a one-dimensional parameter sweep."""

    parameter: str
    values: tuple[object, ...]
    curves: tuple[str, ...]
    nfi: dict[str, list[float]]
    ffi: dict[str, list[float]]


def _sweep_plan(
    ctx: StudyContext,
    parameter: str,
    values: tuple[object, ...],
    case_for,
    curves: tuple[str, ...],
) -> StudyPlan:
    preset = ctx.preset()
    units = tuple(
        FmmUnit(key=(value, curve), case=case_for(preset, value, curve))
        for value in values
        for curve in curves
    )
    return StudyPlan(
        units=units,
        trials=preset.resolve_trials(ctx.trials),
        seed=ctx.seed,
        meta={"parameter": parameter, "values": values, "curves": tuple(curves)},
    )


def collect_sweep(plan: StudyPlan, outputs: list) -> SweepResult:
    """Assemble the per-curve series in sweep order (shared by all sweeps)."""
    by_key = outputs_by_key(plan, outputs)
    values, curves = plan.meta["values"], plan.meta["curves"]
    nfi = {c: [by_key[(v, c)].nfi_acd for v in values] for c in curves}
    ffi = {c: [by_key[(v, c)].ffi_acd for v in values] for c in curves}
    return SweepResult(
        parameter=plan.meta["parameter"], values=values, curves=curves, nfi=nfi, ffi=ffi
    )


def _torus_case(preset: Scale, *, n=None, radius=1, distribution="uniform", curve):
    return FmmCase(
        num_particles=int(n) if n is not None else preset.pairs_particles,
        order=preset.pairs_order,
        num_processors=preset.pairs_processors,
        topology="torus",
        particle_curve=curve,
        processor_curve=curve,
        distribution=distribution,
        radius=int(radius),
    )


def plan_radius_sweep(
    ctx: StudyContext,
    radii: tuple[int, ...] = DEFAULT_RADII,
    curves: tuple[str, ...] = PAPER_CURVES,
) -> StudyPlan:
    """Near-field radius sweep on the torus (fixed uniform input)."""
    return _sweep_plan(
        ctx,
        "radius",
        tuple(radii),
        lambda preset, radius, curve: _torus_case(preset, radius=radius, curve=curve),
        curves,
    )


def plan_input_size_sweep(
    ctx: StudyContext,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
) -> StudyPlan:
    """Particle-count sweep (multiples of the preset size) on the torus."""
    preset = ctx.preset()
    cells = 4**preset.pairs_order
    sizes = tuple(min(int(preset.pairs_particles * f), cells // 2) for f in fractions)
    return _sweep_plan(
        ctx,
        "num_particles",
        sizes,
        lambda preset, n, curve: _torus_case(preset, n=n, curve=curve),
        curves,
    )


def plan_distribution_sweep(
    ctx: StudyContext,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
) -> StudyPlan:
    """Distribution sweep on the torus (fixed size, same-SFC pairing)."""
    return _sweep_plan(
        ctx,
        "distribution",
        tuple(distributions),
        lambda preset, dist, curve: _torus_case(preset, distribution=str(dist), curve=curve),
        curves,
    )


def format_sweep(result: SweepResult) -> str:
    """Render NFI and FFI panels of a sweep as text tables."""
    return "\n\n".join(
        [
            format_series(
                result.nfi, result.values, f"NFI ACD vs {result.parameter}", result.parameter
            ),
            format_series(
                result.ffi, result.values, f"FFI ACD vs {result.parameter}", result.parameter
            ),
        ]
    )


def _flatten(result: SweepResult) -> list[dict]:
    return [
        {"model": model, "curve": curve, result.parameter: value, "acd": val}
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for curve in result.curves
        for value, val in zip(result.values, table[curve])
    ]


_SWEEP_SCHEMA = ResultSchema(SweepResult, flatten=_flatten)

RADIUS_SWEEP_STUDY = register_study(
    Study(
        name="sweep_radius",
        title="§VI-C — ACD vs near-field radius",
        result_type=SweepResult,
        plan=plan_radius_sweep,
        collect=collect_sweep,
        render=format_sweep,
        schema=_SWEEP_SCHEMA,
    )
)

INPUT_SIZE_SWEEP_STUDY = register_study(
    Study(
        name="sweep_input_size",
        title="§VI-C — ACD vs input size",
        result_type=SweepResult,
        plan=plan_input_size_sweep,
        collect=collect_sweep,
        render=format_sweep,
        schema=_SWEEP_SCHEMA,
    )
)

DISTRIBUTION_SWEEP_STUDY = register_study(
    Study(
        name="sweep_distribution",
        title="§VI-C — ACD vs input distribution",
        result_type=SweepResult,
        plan=plan_distribution_sweep,
        collect=collect_sweep,
        render=format_sweep,
        schema=_SWEEP_SCHEMA,
    )
)


def run_radius_sweep(
    scale: Scale | str | None = None,
    *,
    radii: tuple[int, ...] = DEFAULT_RADII,
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Removed legacy runner; raises with the ``run_study("sweep_radius")``
    replacement."""
    _legacy_runner_error("run_radius_sweep", "sweep_radius")
    raise AssertionError("unreachable")


def run_input_size_sweep(
    scale: Scale | str | None = None,
    *,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Removed legacy runner; raises with the
    ``run_study("sweep_input_size")`` replacement."""
    _legacy_runner_error("run_input_size_sweep", "sweep_input_size")
    raise AssertionError("unreachable")


def run_distribution_sweep(
    scale: Scale | str | None = None,
    *,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Removed legacy runner; raises with the
    ``run_study("sweep_distribution")`` replacement."""
    _legacy_runner_error("run_distribution_sweep", "sweep_distribution")
    raise AssertionError("unreachable")
