"""§VI-C parametric studies: radius, input size and distribution sweeps.

The text of §VI-C reports three observations beyond Fig. 7:

* increasing the near-field radius raises all ACDs proportionately and
  never reorders the curves;
* growing the particle count (fixed processors) preserves the ordering
  while amplifying the row-major penalty;
* across distributions the NFI ACD is best for uniform, then
  exponential, then normal, while the FFI ACD is largely insensitive.

These runners regenerate each sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.distributions.registry import PAPER_DISTRIBUTIONS
from repro.experiments.config import FmmCase, Scale, active_scale
from repro.experiments.reporting import format_series
from repro.experiments.runner import run_case
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import make_topology

__all__ = [
    "SweepResult",
    "run_radius_sweep",
    "run_input_size_sweep",
    "run_distribution_sweep",
    "format_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """ACD series per curve over a one-dimensional parameter sweep."""

    parameter: str
    values: tuple[object, ...]
    curves: tuple[str, ...]
    nfi: dict[str, list[float]]
    ffi: dict[str, list[float]]


def _sweep(
    parameter: str,
    values: tuple[object, ...],
    case_for,
    curves: tuple[str, ...],
    trials: int,
    seed: SeedLike,
    topology_cache: dict | None = None,
) -> SweepResult:
    nfi: dict[str, list[float]] = {c: [] for c in curves}
    ffi: dict[str, list[float]] = {c: [] for c in curves}
    cache = topology_cache if topology_cache is not None else {}
    for value in values:
        for curve in curves:
            case: FmmCase = case_for(value, curve)
            key = (case.topology, case.num_processors, case.processor_curve)
            if key not in cache:
                cache[key] = make_topology(
                    case.topology, case.num_processors, processor_curve=case.processor_curve
                )
            result = run_case(case, trials=trials, seed=seed, topology=cache[key])
            nfi[curve].append(result.nfi_acd)
            ffi[curve].append(result.ffi_acd)
    return SweepResult(
        parameter=parameter, values=values, curves=tuple(curves), nfi=nfi, ffi=ffi
    )


def run_radius_sweep(
    scale: Scale | str | None = None,
    *,
    radii: tuple[int, ...] = (1, 2, 4, 6),
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Near-field radius sweep on the torus (fixed uniform input)."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)

    def case_for(radius, curve):
        return FmmCase(
            num_particles=preset.pairs_particles,
            order=preset.pairs_order,
            num_processors=preset.pairs_processors,
            topology="torus",
            particle_curve=curve,
            processor_curve=curve,
            distribution="uniform",
            radius=int(radius),
        )

    return _sweep("radius", radii, case_for, curves, trials or preset.trials, seed)


def run_input_size_sweep(
    scale: Scale | str | None = None,
    *,
    fractions: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Particle-count sweep (multiples of the preset size) on the torus."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)
    cells = 4**preset.pairs_order
    sizes = tuple(
        min(int(preset.pairs_particles * f), cells // 2) for f in fractions
    )

    def case_for(n, curve):
        return FmmCase(
            num_particles=int(n),
            order=preset.pairs_order,
            num_processors=preset.pairs_processors,
            topology="torus",
            particle_curve=curve,
            processor_curve=curve,
            distribution="uniform",
            radius=1,
        )

    return _sweep("num_particles", sizes, case_for, curves, trials or preset.trials, seed)


def run_distribution_sweep(
    scale: Scale | str | None = None,
    *,
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
    curves: tuple[str, ...] = PAPER_CURVES,
    seed: SeedLike = 2013,
    trials: int | None = None,
) -> SweepResult:
    """Distribution sweep on the torus (fixed size, same-SFC pairing)."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)

    def case_for(dist, curve):
        return FmmCase(
            num_particles=preset.pairs_particles,
            order=preset.pairs_order,
            num_processors=preset.pairs_processors,
            topology="torus",
            particle_curve=curve,
            processor_curve=curve,
            distribution=str(dist),
            radius=1,
        )

    return _sweep(
        "distribution", distributions, case_for, curves, trials or preset.trials, seed
    )


def format_sweep(result: SweepResult) -> str:
    """Render NFI and FFI panels of a sweep as text tables."""
    return "\n\n".join(
        [
            format_series(
                result.nfi, result.values, f"NFI ACD vs {result.parameter}", result.parameter
            ),
            format_series(
                result.ffi, result.values, f"FFI ACD vs {result.parameter}", result.parameter
            ),
        ]
    )
