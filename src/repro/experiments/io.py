"""Persistence of experiment results (JSON and CSV), registry-driven.

Every study result in :mod:`repro.experiments` is a frozen dataclass of
plain containers, so it serialises losslessly to JSON.  A thin type tag
lets :func:`load_result` reconstruct the right dataclass, and
:func:`result_to_csv_rows` flattens matrix/series results into rows for
spreadsheet-style downstream analysis.

Result types are no longer hard-coded here: each study registers a
:class:`ResultSchema` (via :func:`~repro.experiments.study.register_study`)
declaring how its result flattens to rows and how JSON-mangled fields
are repaired on load — ``int_key_fields`` names dict fields whose keys
JSON stringified (the generalisation of the old ``AnnsStudyResult``
special case), and ``restore`` hooks arbitrary reconstruction (nested
row dataclasses, ...).  Adding a study therefore never touches this
module.

All writes are atomic (temp file + ``os.replace``) and CSV output is
RFC-4180 quoted via the :mod:`csv` module, so values containing commas,
quotes or newlines round-trip instead of corrupting the file.
"""

from __future__ import annotations

import csv
import dataclasses
import io as _io
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "ResultSchema",
    "register_result",
    "registered_result_types",
    "save_result",
    "load_result",
    "result_to_csv_rows",
    "write_csv",
    "atomic_write_text",
]


@dataclass(frozen=True)
class ResultSchema:
    """How one result dataclass persists and flattens.

    ``flatten(result)`` returns uniform row dicts for CSV/tabular use;
    ``int_key_fields`` lists dict-valued fields whose keys are integers
    (stringified by JSON, repaired on load); ``restore(data)`` runs on
    the loaded field dict for anything structural (e.g. rebuilding
    nested row dataclasses) before the result dataclass is constructed.
    """

    result_type: type
    flatten: Callable[[Any], list[dict[str, Any]]]
    int_key_fields: tuple[str, ...] = ()
    restore: Callable[[dict], dict] | None = None


_SCHEMAS: dict[str, ResultSchema] = {}


def register_result(schema: ResultSchema) -> ResultSchema:
    """Register (or re-register) the schema for one result type."""
    _SCHEMAS[schema.result_type.__name__] = schema
    return schema


def registered_result_types() -> tuple[str, ...]:
    """Names of every registered result type."""
    return tuple(_SCHEMAS)


def _schema_for(result: Any) -> ResultSchema:
    name = type(result).__name__
    try:
        return _SCHEMAS[name]
    except KeyError:
        raise TypeError(
            f"unknown result type {name}; known: {', '.join(_SCHEMAS)}"
        ) from None


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file + rename."""
    out = Path(path)
    fd, tmp = tempfile.mkstemp(dir=out.parent or Path("."), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, out)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    return out


def _jsonable(value: Any) -> Any:
    """Recursively convert tuples and numpy scalars to JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def save_result(result: Any, path: str | Path) -> Path:
    """Serialise a study-result dataclass to a JSON file (atomically)."""
    schema = _schema_for(result)
    payload = {
        "type": schema.result_type.__name__,
        "data": _jsonable(dataclasses.asdict(result)),
    }
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def _tuplify(cls: type, data: dict) -> dict:
    """Restore tuple-typed fields that JSON flattened into lists."""
    out = dict(data)
    for field in dataclasses.fields(cls):
        raw = out.get(field.name)
        if isinstance(raw, list) and str(field.type).startswith("tuple"):
            out[field.name] = tuple(raw)
    return out


def load_result(path: str | Path) -> Any:
    """Reconstruct a study-result dataclass from :func:`save_result` output."""
    payload = json.loads(Path(path).read_text())
    try:
        schema = _SCHEMAS[payload["type"]]
    except KeyError:
        raise ValueError(f"file does not contain a known result type: {path}") from None
    data = dict(payload["data"])
    # integer dict keys were stringified by JSON; the schema names them
    for field in schema.int_key_fields:
        if isinstance(data.get(field), dict):
            data[field] = {int(k): v for k, v in data[field].items()}
    if schema.restore is not None:
        data = schema.restore(data)
    cls = schema.result_type
    return cls(**_tuplify(cls, data))


def result_to_csv_rows(result: Any) -> list[dict[str, Any]]:
    """Flatten any registered study result into uniform row dicts."""
    return _schema_for(result).flatten(result)


def write_csv(result: Any, path: str | Path) -> Path:
    """Flatten a study result and write it as an RFC-4180 CSV file."""
    rows = result_to_csv_rows(result)
    if not rows:
        return atomic_write_text(path, "")
    columns = list(rows[0])
    buffer = _io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return atomic_write_text(path, buffer.getvalue())
