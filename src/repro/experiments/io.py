"""Persistence of experiment results (JSON and CSV).

Every study result in :mod:`repro.experiments` is a frozen dataclass of
plain containers, so it serialises losslessly to JSON.  A thin type tag
lets :func:`load_result` reconstruct the right dataclass, and
:func:`result_to_csv_rows` flattens matrix/series results into rows for
spreadsheet-style downstream analysis.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.experiments.anns_study import AnnsStudyResult
from repro.experiments.scaling_study import ScalingStudyResult
from repro.experiments.sfc_pairs import SfcPairsResult
from repro.experiments.topology_study import TopologyStudyResult

__all__ = ["save_result", "load_result", "result_to_csv_rows", "write_csv"]

_RESULT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (AnnsStudyResult, SfcPairsResult, TopologyStudyResult, ScalingStudyResult)
}


def _jsonable(value: Any) -> Any:
    """Recursively convert tuples and numpy scalars to JSON-native types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def save_result(result: Any, path: str | Path) -> Path:
    """Serialise a study-result dataclass to a JSON file."""
    name = type(result).__name__
    if name not in _RESULT_TYPES:
        raise TypeError(
            f"unknown result type {name}; known: {', '.join(_RESULT_TYPES)}"
        )
    payload = {"type": name, "data": _jsonable(dataclasses.asdict(result))}
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return out


def _tuplify(cls: type, data: dict) -> dict:
    """Restore tuple-typed fields that JSON flattened into lists."""
    out = dict(data)
    for field in dataclasses.fields(cls):
        raw = out.get(field.name)
        if isinstance(raw, list) and str(field.type).startswith("tuple"):
            out[field.name] = tuple(raw)
    return out


def load_result(path: str | Path) -> Any:
    """Reconstruct a study-result dataclass from :func:`save_result` output."""
    payload = json.loads(Path(path).read_text())
    try:
        cls = _RESULT_TYPES[payload["type"]]
    except KeyError:
        raise ValueError(f"file does not contain a known result type: {path}") from None
    data = payload["data"]
    # integer dict keys (the ANNS radii) were stringified by JSON
    if cls is AnnsStudyResult:
        data["values"] = {int(k): v for k, v in data["values"].items()}
    return cls(**_tuplify(cls, data))


def result_to_csv_rows(result: Any) -> list[dict[str, Any]]:
    """Flatten any study result into a list of uniform row dicts."""
    if isinstance(result, AnnsStudyResult):
        return [
            {"radius": radius, "curve": curve, "side": 1 << order, "stretch": val}
            for radius, per_curve in result.values.items()
            for curve, series in per_curve.items()
            for order, val in zip(result.orders, series)
        ]
    if isinstance(result, SfcPairsResult):
        return [
            {
                "model": model,
                "distribution": dist,
                "processor_curve": proc,
                "particle_curve": part,
                "acd": table[dist][proc][part],
            }
            for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
            for dist in result.distributions
            for proc in result.processor_curves
            for part in result.particle_curves
        ]
    if isinstance(result, TopologyStudyResult):
        return [
            {"model": model, "topology": topo, "curve": curve, "acd": table[topo][curve]}
            for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
            for topo in result.topologies
            for curve in result.curves
        ]
    if isinstance(result, ScalingStudyResult):
        return [
            {"model": model, "curve": curve, "processors": p, "acd": series[curve][i]}
            for model, series in (("nfi", result.nfi), ("ffi", result.ffi))
            for curve in result.curves
            for i, p in enumerate(result.processor_counts)
        ]
    raise TypeError(f"cannot flatten result of type {type(result).__name__}")


def write_csv(result: Any, path: str | Path) -> Path:
    """Flatten a study result and write it as a CSV file."""
    rows = result_to_csv_rows(result)
    out = Path(path)
    if not rows:
        out.write_text("")
        return out
    columns = list(rows[0])
    lines = [",".join(columns)]
    lines.extend(",".join(str(row[c]) for c in columns) for row in rows)
    out.write_text("\n".join(lines) + "\n")
    return out
