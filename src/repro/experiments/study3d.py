"""3D validation study (paper's future-work item ii).

§VIII lists "validation of the communication trends projected by the
ACD metric ... using 3D" as future work.  This study re-runs the core
evaluation in three dimensions: same-SFC particle/processor pairings of
the four (3D) curves on the 3D torus, octree and hypercube networks,
plus a 3D ANNS sweep — and checks whether the 2D conclusions carry over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike
from repro.distributions.three_d import get_distribution3d
from repro.experiments.reporting import format_matrix
from repro.fmm.model3d import FmmCommunicationModel3D
from repro.metrics.anns3d import neighbor_stretch3d
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = [
    "PAPER_CURVES_3D",
    "Study3DResult",
    "run_study3d",
    "run_anns3d_study",
    "format_study3d",
]

#: 3D counterparts of the paper's four curves, in table order.
PAPER_CURVES_3D: tuple[str, ...] = ("hilbert3d", "morton3d", "gray3d", "rowmajor3d")

#: 3D networks evaluated (hypercube needs no curve; octree/torus3d do).
TOPOLOGIES_3D: tuple[str, ...] = ("mesh3d", "torus3d", "octree", "hypercube")


@dataclass(frozen=True)
class Study3DResult:
    """ACD per {topology, 3D curve} for both interaction models."""

    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    nfi: dict[str, dict[str, float]]
    ffi: dict[str, dict[str, float]]


def run_study3d(
    num_particles: int = 20_000,
    order: int = 6,
    num_processors: int = 4_096,
    *,
    radius: int = 1,
    distribution: str = "uniform3d",
    topologies: tuple[str, ...] = TOPOLOGIES_3D,
    curves: tuple[str, ...] = PAPER_CURVES_3D,
    trials: int = 2,
    seed: SeedLike = 2013,
) -> Study3DResult:
    """Same-SFC pairings across the 3D networks, trial-averaged."""
    dist = get_distribution3d(distribution)
    nfi: dict[str, dict[str, float]] = {t: {} for t in topologies}
    ffi: dict[str, dict[str, float]] = {t: {} for t in topologies}
    for topo in topologies:
        for curve in curves:
            net = make_topology(topo, num_processors, processor_curve=curve)
            model = FmmCommunicationModel3D(net, particle_curve=curve, radius=radius)
            nfi_vals, ffi_vals = [], []
            for child in spawn_seeds(seed, trials):
                particles = dist.sample(
                    num_particles, order, rng=np.random.default_rng(child)
                )
                report = model.evaluate(particles)
                nfi_vals.append(report.nfi_acd)
                ffi_vals.append(report.ffi_acd)
            nfi[topo][curve] = float(np.mean(nfi_vals))
            ffi[topo][curve] = float(np.mean(ffi_vals))
    return Study3DResult(
        topologies=tuple(topologies), curves=tuple(curves), nfi=nfi, ffi=ffi
    )


def run_anns3d_study(
    orders: tuple[int, ...] = (1, 2, 3, 4),
    curves: tuple[str, ...] = PAPER_CURVES_3D,
    radius: int = 1,
) -> dict[str, list[float]]:
    """3D ANNS sweep over cube resolutions."""
    return {
        curve: [neighbor_stretch3d(curve, order, radius=radius).mean for order in orders]
        for curve in curves
    }


def format_study3d(result: Study3DResult) -> str:
    """Render the 3D study as topology x curve matrices."""
    return "\n\n".join(
        [
            format_matrix(
                result.nfi,
                result.topologies,
                result.curves,
                title="3D validation — NFI ACD",
                row_axis="Topology",
                col_axis="3D SFC",
            ),
            format_matrix(
                result.ffi,
                result.topologies,
                result.curves,
                title="3D validation — FFI ACD",
                row_axis="Topology",
                col_axis="3D SFC",
            ),
        ]
    )
