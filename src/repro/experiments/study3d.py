"""3D validation study (paper's future-work item ii).

§VIII lists "validation of the communication trends projected by the
ACD metric ... using 3D" as future work.  This study re-runs the core
evaluation in three dimensions: same-SFC particle/processor pairings of
the four (3D) curves on the 3D torus, octree and hypercube networks,
plus a 3D ANNS sweep — and checks whether the 2D conclusions carry over.

The 3D model does not go through the 2D ``run_case`` path, so both
studies declare :class:`~repro.experiments.study.ComputeUnit` grids —
one unit per ``(topology, curve)`` pairing (resp. ``(curve, order)``
ANNS point) — which the shared driver fans out over ``--jobs`` and
persists in the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike
from repro.distributions.three_d import get_distribution3d
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_matrix, format_series
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
)
from repro.fmm.model3d import FmmCommunicationModel3D
from repro.metrics.anns3d import neighbor_stretch3d
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = [
    "PAPER_CURVES_3D",
    "Study3DResult",
    "Anns3dStudyResult",
    "STUDY3D",
    "ANNS3D_STUDY",
    "run_study3d",
    "run_anns3d_study",
    "format_study3d",
    "format_anns3d_study",
]

#: 3D counterparts of the paper's four curves, in table order.
PAPER_CURVES_3D: tuple[str, ...] = ("hilbert3d", "morton3d", "gray3d", "rowmajor3d")

#: 3D networks evaluated (hypercube needs no curve; octree/torus3d do).
TOPOLOGIES_3D: tuple[str, ...] = ("mesh3d", "torus3d", "octree", "hypercube")

#: Default 3D workload (kept well below the 2D sizes: the 3D model is
#: denser per particle and this study is a trend check, not a table).
DEFAULT_PARTICLES_3D = 20_000
DEFAULT_ORDER_3D = 6
DEFAULT_PROCESSORS_3D = 4_096
DEFAULT_TRIALS_3D = 2
DEFAULT_ANNS3D_ORDERS: tuple[int, ...] = (1, 2, 3, 4)


@dataclass(frozen=True)
class Study3DResult:
    """ACD per {topology, 3D curve} for both interaction models."""

    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    nfi: dict[str, dict[str, float]]
    ffi: dict[str, dict[str, float]]


@dataclass(frozen=True)
class Anns3dStudyResult:
    """3D ANNS stretch series per curve over a cube-resolution sweep."""

    orders: tuple[int, ...]
    radius: int
    #: ``values[curve][i]`` = mean stretch at ``orders[i]``.
    values: dict[str, list[float]]

    def sides(self) -> list[int]:
        """Cube side lengths corresponding to :attr:`orders`."""
        return [1 << k for k in self.orders]


def study3d_point(
    topology: str,
    curve: str,
    num_particles: int,
    order: int,
    num_processors: int,
    radius: int,
    distribution: str,
    trials: int,
    seed,
) -> list[float]:
    """One 3D pairing: trial-averaged ``[nfi_acd, ffi_acd]``."""
    dist = get_distribution3d(distribution)
    net = make_topology(topology, num_processors, processor_curve=curve)
    model = FmmCommunicationModel3D(net, particle_curve=curve, radius=radius)
    nfi_vals, ffi_vals = [], []
    for child in spawn_seeds(seed, trials):
        particles = dist.sample(num_particles, order, rng=np.random.default_rng(child))
        report = model.evaluate(particles)
        nfi_vals.append(report.nfi_acd)
        ffi_vals.append(report.ffi_acd)
    return [float(np.mean(nfi_vals)), float(np.mean(ffi_vals))]


def anns3d_point(curve: str, order: int, radius: int) -> float:
    """One 3D ANNS grid point: mean stretch at one cube resolution."""
    return neighbor_stretch3d(curve, order, radius=radius).mean


def plan_study3d(
    ctx: StudyContext,
    num_particles: int = DEFAULT_PARTICLES_3D,
    order: int = DEFAULT_ORDER_3D,
    num_processors: int = DEFAULT_PROCESSORS_3D,
    radius: int = 1,
    distribution: str = "uniform3d",
    topologies: tuple[str, ...] = TOPOLOGIES_3D,
    curves: tuple[str, ...] = PAPER_CURVES_3D,
) -> StudyPlan:
    """Declare the 3D validation grid: every {topology, curve} pairing."""
    trials = ctx.trials if ctx.trials is not None else DEFAULT_TRIALS_3D
    units = tuple(
        ComputeUnit(
            key=(topo, curve),
            fn=study3d_point,
            args=(
                topo,
                curve,
                num_particles,
                order,
                num_processors,
                radius,
                distribution,
                trials,
                ctx.seed,
            ),
        )
        for topo in topologies
        for curve in curves
    )
    return StudyPlan(
        units=units,
        trials=trials,
        seed=ctx.seed,
        meta={"topologies": tuple(topologies), "curves": tuple(curves)},
    )


def collect_study3d(plan: StudyPlan, outputs: list) -> Study3DResult:
    """Assemble the topology x curve matrices from per-pairing outputs."""
    by_key = outputs_by_key(plan, outputs)
    topologies, curves = plan.meta["topologies"], plan.meta["curves"]
    nfi = {t: {c: by_key[(t, c)][0] for c in curves} for t in topologies}
    ffi = {t: {c: by_key[(t, c)][1] for c in curves} for t in topologies}
    return Study3DResult(topologies=topologies, curves=curves, nfi=nfi, ffi=ffi)


def plan_anns3d_study(
    ctx: StudyContext,
    orders: tuple[int, ...] = DEFAULT_ANNS3D_ORDERS,
    curves: tuple[str, ...] = PAPER_CURVES_3D,
    radius: int = 1,
) -> StudyPlan:
    """Declare the 3D ANNS grid: every (curve, order) point."""
    units = tuple(
        ComputeUnit(key=(curve, order), fn=anns3d_point, args=(curve, order, radius))
        for curve in curves
        for order in orders
    )
    return StudyPlan(
        units=units,
        meta={"orders": tuple(orders), "curves": tuple(curves), "radius": radius},
    )


def collect_anns3d_study(plan: StudyPlan, outputs: list) -> Anns3dStudyResult:
    """Assemble the per-curve series in sweep order."""
    by_key = outputs_by_key(plan, outputs)
    orders, curves = plan.meta["orders"], plan.meta["curves"]
    values = {c: [by_key[(c, k)] for k in orders] for c in curves}
    return Anns3dStudyResult(orders=orders, radius=plan.meta["radius"], values=values)


def format_study3d(result: Study3DResult) -> str:
    """Render the 3D study as topology x curve matrices."""
    return "\n\n".join(
        [
            format_matrix(
                result.nfi,
                result.topologies,
                result.curves,
                title="3D validation — NFI ACD",
                row_axis="Topology",
                col_axis="3D SFC",
            ),
            format_matrix(
                result.ffi,
                result.topologies,
                result.curves,
                title="3D validation — FFI ACD",
                row_axis="Topology",
                col_axis="3D SFC",
            ),
        ]
    )


def format_anns3d_study(result: Anns3dStudyResult) -> str:
    """Render the 3D ANNS sweep as a text table."""
    return format_series(
        result.values,
        result.sides(),
        f"3D ANNS (r={result.radius})",
        x_label="cube side",
    )


def _flatten_study3d(result: Study3DResult) -> list[dict]:
    return [
        {"model": model, "topology": topo, "curve": curve, "acd": table[topo][curve]}
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for topo in result.topologies
        for curve in result.curves
    ]


def _flatten_anns3d(result: Anns3dStudyResult) -> list[dict]:
    return [
        {"curve": curve, "side": 1 << order, "stretch": val}
        for curve in result.values
        for order, val in zip(result.orders, result.values[curve])
    ]


STUDY3D = register_study(
    Study(
        name="validate3d",
        title="3D validation — same-SFC pairings across 3D networks",
        result_type=Study3DResult,
        plan=plan_study3d,
        collect=collect_study3d,
        render=format_study3d,
        schema=ResultSchema(Study3DResult, flatten=_flatten_study3d),
    )
)

ANNS3D_STUDY = register_study(
    Study(
        name="anns3d",
        title="3D ANNS stretch sweep",
        result_type=Anns3dStudyResult,
        plan=plan_anns3d_study,
        collect=collect_anns3d_study,
        render=format_anns3d_study,
        schema=ResultSchema(Anns3dStudyResult, flatten=_flatten_anns3d),
    )
)


def run_study3d(
    num_particles: int = DEFAULT_PARTICLES_3D,
    order: int = DEFAULT_ORDER_3D,
    num_processors: int = DEFAULT_PROCESSORS_3D,
    *,
    radius: int = 1,
    distribution: str = "uniform3d",
    topologies: tuple[str, ...] = TOPOLOGIES_3D,
    curves: tuple[str, ...] = PAPER_CURVES_3D,
    trials: int = DEFAULT_TRIALS_3D,
    seed: SeedLike = 2013,
) -> Study3DResult:
    """Removed legacy runner; raises with the ``run_study("validate3d")``
    replacement."""
    _legacy_runner_error("run_study3d", "validate3d")
    raise AssertionError("unreachable")


def run_anns3d_study(
    orders: tuple[int, ...] = DEFAULT_ANNS3D_ORDERS,
    curves: tuple[str, ...] = PAPER_CURVES_3D,
    radius: int = 1,
) -> dict[str, list[float]]:
    """Removed legacy runner; raises with the ``run_study("anns3d")``
    replacement."""
    _legacy_runner_error("run_anns3d_study", "anns3d")
    raise AssertionError("unreachable")
