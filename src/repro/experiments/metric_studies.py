"""Objective-metric studies: energy, data volume, partition quality.

One registered Study per pluggable metric (see
:mod:`repro.metrics.registry`), so each inherits the store, fault
tolerance, ``--jobs`` fan-out and manifests exactly like the paper
studies:

* ``energy`` — Reissmann-style per-hop + per-message energy of the FMM
  communication pattern, per {topology, curve} pairing;
* ``data_volume`` — Walker & Skjellum-style bytes moved over the same
  histograms;
* ``surface_to_volume`` — Gadouleau–Weinzierl partition quality of the
  contiguous chunkings every registered curve induces (the one study
  where the Peano curve participates on its native radix-3 lattice).

Every grid point is a :class:`~repro.experiments.study.ComputeUnit`
calling a top-level evaluation function whose keyword arguments —
**including the metric name** — form the unit's canonical store key, so
warm-store semantics stay exact per objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.artifacts import FFI_PHASES, get_trial_artifact
from repro.experiments.config import FmmCase
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_matrix
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    outputs_by_key,
    register_study,
)
from repro.metrics.base import CommunicationMetric, MetricValue, PartitionMetric
from repro.metrics.registry import get_metric
from repro.sfc.registry import ALL_CURVES, CURVES, PAPER_CURVES
from repro.topology.registry import make_topology
from repro.util.rng import spawn_seeds

__all__ = [
    "METRIC_TOPOLOGIES",
    "CommunicationMetricResult",
    "SurfaceVolumeStudyResult",
    "ENERGY_STUDY",
    "DATA_VOLUME_STUDY",
    "SURFACE_VOLUME_STUDY",
    "evaluate_communication_metric",
    "evaluate_partition_metric",
    "default_partition_order",
    "plan_energy_study",
    "plan_data_volume_study",
    "plan_surface_volume_study",
    "format_communication_metric",
    "format_surface_volume_study",
]

#: Networks the communication-metric grids evaluate: the four Fig. 6
#: topologies plus the two hierarchical extensions.
METRIC_TOPOLOGIES: tuple[str, ...] = (
    "mesh",
    "torus",
    "quadtree",
    "hypercube",
    "fat_tree",
    "dragonfly",
)

#: Default communication-metric workload (a trend grid, not a table;
#: kept modest so cold smoke runs finish in seconds).
DEFAULT_PARTICLES = 10_000
DEFAULT_ORDER = 8
DEFAULT_PROCESSORS = 256
DEFAULT_TRIALS = 2

#: Processor counts the partition-quality grid cuts each curve into.
DEFAULT_SV_PROCESSORS: tuple[int, ...] = (4, 16, 64)
#: Lattice orders for the partition grid, by curve radix: a power-of-two
#: curve at order 5 covers 1024 cells; Peano's radix-3 lattice reaches a
#: comparable 729 cells at order 3.
DEFAULT_SV_ORDER = 5
DEFAULT_SV_ORDER_RADIX3 = 3


def default_partition_order(curve: str) -> int:
    """The partition-grid lattice order for ``curve`` (radix-aware)."""
    return (
        DEFAULT_SV_ORDER_RADIX3
        if CURVES.canonical(curve) == "peano"
        else DEFAULT_SV_ORDER
    )


# ----------------------------------------------------------------------
# Unit evaluation functions (top-level: their module:qualname plus their
# keyword arguments are the canonical store key of each unit)
# ----------------------------------------------------------------------

def _as_dict(value: MetricValue) -> dict:
    return {"total": value.total, "count": value.count, "mean": value.mean}


def evaluate_communication_metric(
    *,
    metric: str,
    case: dict,
    trials: int,
    seed,
    parts=("nfi", "ffi"),
) -> dict:
    """Trial-pooled value of one communication metric on one case.

    ``case`` is the :class:`~repro.experiments.config.FmmCase` field
    mapping (JSON-native so it can participate in store keys).  Events
    are drawn exactly as the campaign engine draws them — same
    ``spawn_seeds`` children, same artifact cache — so the pattern under
    evaluation is bit-identical to the ACD studies'.
    """
    engine = get_metric(metric)
    if not isinstance(engine, CommunicationMetric):
        raise TypeError(
            f"metric {metric!r} is a {engine.kind} metric; "
            "this unit evaluates communication metrics"
        )
    fmm_case = FmmCase(**case)
    topology = make_topology(
        fmm_case.topology,
        fmm_case.num_processors,
        processor_curve=fmm_case.processor_curve,
    )
    parts = tuple(parts)
    nfi = MetricValue(0, 0)
    ffi = MetricValue(0, 0)
    for child in spawn_seeds(seed, trials):
        artifact = get_trial_artifact(fmm_case, child, parts)
        if "nfi" in parts:
            nfi = nfi.merged(engine.evaluate(artifact.nfi, topology))
        if "ffi" in parts:
            for phase in FFI_PHASES:
                ffi = ffi.merged(engine.evaluate(artifact.ffi[phase], topology))
    return {"metric": metric, "nfi": _as_dict(nfi), "ffi": _as_dict(ffi)}


def evaluate_partition_metric(
    *, metric: str, curve: str, order: int, num_processors: int
) -> dict:
    """Value of one partition metric on one contiguous SFC chunking."""
    engine = get_metric(metric)
    if not isinstance(engine, PartitionMetric):
        raise TypeError(
            f"metric {metric!r} is a {engine.kind} metric; "
            "this unit evaluates partition metrics"
        )
    return {"metric": metric, **engine.evaluate(curve, order, num_processors)}


# ----------------------------------------------------------------------
# Communication-metric studies (energy, data_volume)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CommunicationMetricResult:
    """Mean metric cost per {topology, curve} for both interaction models."""

    metric: str
    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    nfi: dict[str, dict[str, float]]
    ffi: dict[str, dict[str, float]]


def _plan_communication_study(
    ctx: StudyContext,
    metric: str,
    topologies: tuple[str, ...],
    curves: tuple[str, ...],
    num_particles: int,
    order: int,
    num_processors: int,
    radius: int,
    distribution: str,
) -> StudyPlan:
    trials = ctx.trials if ctx.trials is not None else DEFAULT_TRIALS
    units = tuple(
        ComputeUnit(
            key=(topo, curve),
            fn=evaluate_communication_metric,
            kwargs=(
                ("metric", metric),
                (
                    "case",
                    {
                        "num_particles": num_particles,
                        "order": order,
                        "num_processors": num_processors,
                        "topology": topo,
                        "particle_curve": curve,
                        "processor_curve": curve,  # same-SFC pairing, as in Fig. 6
                        "distribution": distribution,
                        "radius": radius,
                    },
                ),
                ("trials", trials),
                ("seed", ctx.seed),
            ),
        )
        for topo in topologies
        for curve in curves
    )
    return StudyPlan(
        units=units,
        trials=trials,
        seed=ctx.seed,
        meta={"metric": metric, "topologies": tuple(topologies), "curves": tuple(curves)},
    )


def plan_energy_study(
    ctx: StudyContext,
    topologies: tuple[str, ...] = METRIC_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    num_particles: int = DEFAULT_PARTICLES,
    order: int = DEFAULT_ORDER,
    num_processors: int = DEFAULT_PROCESSORS,
    radius: int = 1,
    distribution: str = "uniform",
) -> StudyPlan:
    """Declare the energy grid: every {topology, curve} pairing."""
    return _plan_communication_study(
        ctx, "energy", topologies, curves,
        num_particles, order, num_processors, radius, distribution,
    )


def plan_data_volume_study(
    ctx: StudyContext,
    topologies: tuple[str, ...] = METRIC_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    num_particles: int = DEFAULT_PARTICLES,
    order: int = DEFAULT_ORDER,
    num_processors: int = DEFAULT_PROCESSORS,
    radius: int = 1,
    distribution: str = "uniform",
) -> StudyPlan:
    """Declare the data-volume grid: every {topology, curve} pairing."""
    return _plan_communication_study(
        ctx, "data_volume", topologies, curves,
        num_particles, order, num_processors, radius, distribution,
    )


def collect_communication_metric(
    plan: StudyPlan, outputs: list
) -> CommunicationMetricResult:
    """Assemble the topology x curve mean-cost matrices."""
    by_key = outputs_by_key(plan, outputs)
    topologies, curves = plan.meta["topologies"], plan.meta["curves"]
    nfi = {t: {c: by_key[(t, c)]["nfi"]["mean"] for c in curves} for t in topologies}
    ffi = {t: {c: by_key[(t, c)]["ffi"]["mean"] for c in curves} for t in topologies}
    return CommunicationMetricResult(
        metric=plan.meta["metric"],
        topologies=topologies,
        curves=curves,
        nfi=nfi,
        ffi=ffi,
    )


_METRIC_UNITS = {"energy": "energy units/event", "data_volume": "bytes/event"}


def format_communication_metric(result: CommunicationMetricResult) -> str:
    """Render both interaction models as topology x curve matrices."""
    unit = _METRIC_UNITS.get(result.metric, "cost/event")
    return "\n\n".join(
        format_matrix(
            data,
            result.topologies,
            result.curves,
            title=f"{result.metric} — {model.upper()} (mean {unit})",
            row_axis="Topology",
            col_axis="SFC",
        )
        for model, data in (("nfi", result.nfi), ("ffi", result.ffi))
    )


def _flatten_communication(result: CommunicationMetricResult) -> list[dict]:
    return [
        {
            "metric": result.metric,
            "model": model,
            "topology": topo,
            "curve": curve,
            "mean": table[topo][curve],
        }
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for topo in result.topologies
        for curve in result.curves
    ]


# ----------------------------------------------------------------------
# Partition-quality study (surface_to_volume)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SurfaceVolumeStudyResult:
    """Worst-part surface-to-volume ratio per {curve, processor count}."""

    curves: tuple[str, ...]
    processors: tuple[int, ...]
    #: Lattice order evaluated per curve (radix-aware, see
    #: :func:`default_partition_order`).
    orders: dict[str, int]
    max_ratio: dict[str, dict[int, float]]
    mean_ratio: dict[str, dict[int, float]]


def plan_surface_volume_study(
    ctx: StudyContext,
    curves: tuple[str, ...] = ALL_CURVES,
    processors: tuple[int, ...] = DEFAULT_SV_PROCESSORS,
    orders: dict | None = None,
) -> StudyPlan:
    """Declare the partition grid: every {curve, processor count} point."""
    orders = dict(orders) if orders is not None else {
        curve: default_partition_order(curve) for curve in curves
    }
    units = tuple(
        ComputeUnit(
            key=(curve, p),
            fn=evaluate_partition_metric,
            kwargs=(
                ("metric", "surface_to_volume"),
                ("curve", curve),
                ("order", orders[curve]),
                ("num_processors", p),
            ),
        )
        for curve in curves
        for p in processors
    )
    return StudyPlan(
        units=units,
        meta={"curves": tuple(curves), "processors": tuple(processors), "orders": orders},
    )


def collect_surface_volume_study(
    plan: StudyPlan, outputs: list
) -> SurfaceVolumeStudyResult:
    """Assemble the curve x processor-count ratio matrices."""
    by_key = outputs_by_key(plan, outputs)
    curves, processors = plan.meta["curves"], plan.meta["processors"]
    max_ratio = {c: {p: by_key[(c, p)]["max_ratio"] for p in processors} for c in curves}
    mean_ratio = {c: {p: by_key[(c, p)]["mean_ratio"] for p in processors} for c in curves}
    return SurfaceVolumeStudyResult(
        curves=curves,
        processors=processors,
        orders=dict(plan.meta["orders"]),
        max_ratio=max_ratio,
        mean_ratio=mean_ratio,
    )


def format_surface_volume_study(result: SurfaceVolumeStudyResult) -> str:
    """Render worst-part ratios as a curve x processor-count matrix."""
    lattice = ", ".join(
        f"{c}: {3 if c == 'peano' else 2}^{result.orders[c]} per side"
        for c in result.curves
    )
    return "\n\n".join(
        [
            format_matrix(
                result.max_ratio,
                result.curves,
                result.processors,
                title="surface_to_volume — worst part (max surface/volume)",
                row_axis="SFC",
                col_axis="processors",
            ),
            f"(lattice sides — {lattice})",
        ]
    )


def _flatten_surface_volume(result: SurfaceVolumeStudyResult) -> list[dict]:
    return [
        {
            "curve": curve,
            "order": result.orders[curve],
            "processors": p,
            "max_ratio": result.max_ratio[curve][p],
            "mean_ratio": result.mean_ratio[curve][p],
        }
        for curve in result.curves
        for p in result.processors
    ]


ENERGY_STUDY = register_study(
    Study(
        name="energy",
        title="Energy cost — per-hop + per-message model across networks",
        result_type=CommunicationMetricResult,
        plan=plan_energy_study,
        collect=collect_communication_metric,
        render=format_communication_metric,
        schema=ResultSchema(CommunicationMetricResult, flatten=_flatten_communication),
    )
)

DATA_VOLUME_STUDY = register_study(
    Study(
        name="data_volume",
        title="Data volume — bytes moved across networks",
        result_type=CommunicationMetricResult,
        plan=plan_data_volume_study,
        collect=collect_communication_metric,
        render=format_communication_metric,
        schema=None,  # CommunicationMetricResult schema registered by "energy"
    )
)

SURFACE_VOLUME_STUDY = register_study(
    Study(
        name="surface_to_volume",
        title="Partition quality — discrete surface-to-volume ratio",
        result_type=SurfaceVolumeStudyResult,
        plan=plan_surface_volume_study,
        collect=collect_surface_volume_study,
        render=format_surface_volume_study,
        schema=ResultSchema(SurfaceVolumeStudyResult, flatten=_flatten_surface_volume),
    )
)
