"""Plain-text rendering of experiment results in the paper's layouts.

The paper marks the lowest ACD in each table row in boldface and the
lowest in each column in italics; terminals have neither, so we mark
row minima with ``*`` and column minima with ``+`` (a cell can carry
both, as the Hilbert/Hilbert entries do in Table I).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_matrix", "format_series", "format_rows"]

_LABELS = {
    "hilbert": "Hilbert Curve",
    "zcurve": "Z-Curve",
    "gray": "Gray Code",
    "rowmajor": "Row Major",
    "snake": "Snake",
    "peano": "Peano Curve",
    "bus": "Bus",
    "ring": "Ring",
    "mesh": "Mesh",
    "torus": "Torus",
    "quadtree": "Quadtree",
    "hypercube": "Hypercube",
    "fat_tree": "Fat Tree",
    "dragonfly": "Dragonfly",
    "uniform": "Uniform",
    "normal": "Normal",
    "exponential": "Exponential",
    # 3D validation registry names (previously rendered as raw slugs)
    "hilbert3d": "3D Hilbert Curve",
    "morton3d": "3D Morton Curve",
    "gray3d": "3D Gray Code",
    "rowmajor3d": "3D Row Major",
    "snake3d": "3D Snake",
    "mesh3d": "3D Mesh",
    "torus3d": "3D Torus",
    "octree": "Octree",
    "uniform3d": "3D Uniform",
    "normal3d": "3D Normal",
    "exponential3d": "3D Exponential",
}


def pretty(name: str) -> str:
    """Paper-style label for a registry name."""
    return _LABELS.get(name, name)


def format_matrix(
    values: Mapping[str, Mapping[str, float]],
    row_names: Sequence[str],
    col_names: Sequence[str],
    title: str,
    row_axis: str = "Processor Order",
    col_axis: str = "Particle Order",
    precision: int = 3,
) -> str:
    """Render a row/column ACD matrix with min markers.

    ``values[row][col]`` holds the cell value; ``*`` marks the row
    minimum and ``+`` the column minimum, echoing the paper's
    bold/italic convention.
    """
    row_mins = {r: min(values[r][c] for c in col_names) for r in row_names}
    col_mins = {c: min(values[r][c] for r in row_names) for c in col_names}
    width = max(12, precision + 9)
    header_cells = "".join(f"{pretty(c):>{width}}" for c in col_names)
    lines = [title, f"{row_axis} \\ {col_axis}", f"{'':>16}{header_cells}"]
    for r in row_names:
        cells = []
        for c in col_names:
            v = values[r][c]
            marks = ("*" if v == row_mins[r] else "") + ("+" if v == col_mins[c] else "")
            cells.append(f"{f'{v:.{precision}f}{marks}':>{width}}")
        lines.append(f"{pretty(r):>16}" + "".join(cells))
    lines.append("(* = row minimum / paper boldface; + = column minimum / paper italics)")
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    title: str,
    x_label: str,
    precision: int = 3,
    missing: str = "-",
) -> str:
    """Render one column per series against a shared x axis (figures)."""
    names = list(series)
    width = max(14, precision + 9, *(len(pretty(n)) + 1 for n in names))
    lines = [title, f"{x_label:>12}" + "".join(f"{pretty(n):>{width}}" for n in names)]
    for i, x in enumerate(x_values):
        cells = []
        for n in names:
            vals = series[n]
            cell = f"{vals[i]:.{precision}f}" if i < len(vals) and vals[i] is not None else missing
            cells.append(f"{cell:>{width}}")
        lines.append(f"{str(x):>12}" + "".join(cells))
    return "\n".join(lines)


def format_rows(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render dict rows as a fixed-width table (generic fallback)."""
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    body = [
        "  ".join(f"{_fmt(r.get(c)):>{widths[c]}}" for c in columns) for r in rows
    ]
    return "\n".join([header, *body])


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
