"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-experiments fig5                   # ANNS study (Fig. 5)
    repro-experiments tables --scale paper   # Tables I & II, full size
    repro-experiments fig6                   # topology comparison
    repro-experiments fig7                   # processor scaling
    repro-experiments sweeps                 # §VI-C parametric sweeps
    repro-experiments ablations              # DESIGN.md convention ablations
    repro-experiments validate3d             # future-work 3D validation
    repro-experiments metrics                # objective metrics (energy, ...)
    repro-experiments dynamic                # time-evolving repartitioning
    repro-experiments all                    # everything, in paper order

    repro-experiments fig5 --json fig5.json --csv fig5.csv
    repro-experiments all --json out/ --csv out/   # one file per study
    repro-experiments fig7 --store results/        # resumable result store

    repro-experiments precompute --store sqlite://results.db   # warm the grid
    repro-experiments serve --store sqlite://results.db        # /recommend HTTP
    repro-experiments store stats --store sqlite://results.db  # backend profile

The last three delegate to :mod:`repro.service` (also installed as
``repro-service``): the store accepts a directory path or a
``sqlite://`` URL — a WAL-mode database many processes share safely.

Every command resolves to one or more registered studies (see
:mod:`repro.experiments.study`) executed by the shared driver — grouped
campaign lowering, ``--jobs`` fan-out and the persistent result store
apply uniformly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Importing the study modules populates the STUDIES registry.
import repro.experiments  # noqa: F401
from repro.obs import RunManifest, recording, render_trace
from repro.experiments.config import active_scale
from repro.experiments.io import save_result, write_csv
from repro.experiments.runner import set_default_jobs
from repro.experiments.store import ResultStore
from repro.experiments.study import ENV_STORE, StudyContext, get_study, run_study
from repro.runtime import configure, parse_bytes, runtime_config

__all__ = ["main", "COMMANDS", "EXPERIMENTS"]

#: CLI command -> the registered studies it runs, in print order.
COMMANDS: dict[str, tuple[str, ...]] = {
    "fig5": ("fig5",),
    "tables": ("tables",),
    "fig6": ("fig6",),
    "fig7": ("fig7",),
    "sweeps": ("sweep_radius", "sweep_input_size", "sweep_distribution"),
    "ablations": (
        "ablation_quadtree_convention",
        "ablation_ffi_granularity",
        "ablation_interpolation_reading",
        "ablation_hypercube_layout",
        "ablation_continuity",
    ),
    "validate3d": ("validate3d", "anns3d"),
    "clustering": ("clustering",),
    "metrics": ("energy", "data_volume", "surface_to_volume"),
    "dynamic": ("dynamic",),
}

#: ``all`` regenerates every artefact in the paper's order (the metric
#: studies are extensions, so they come last).
ALL_ORDER = (
    "fig5",
    "tables",
    "fig6",
    "fig7",
    "sweeps",
    "ablations",
    "validate3d",
    "clustering",
    "metrics",
    "dynamic",
)

EXPERIMENTS = (*COMMANDS, "all")


def _print(text: str) -> None:
    print(text)
    print()


#: Subcommands handled by the service CLI (:mod:`repro.service`) —
#: dispatched before the experiment parser so ``repro-experiments
#: serve/precompute/store ...`` and ``repro-service ...`` are the same
#: tool with two front doors.
SERVICE_COMMANDS = ("serve", "precompute", "store")


def main(argv: list[str] | None = None) -> int:
    """Run one (or all) of the paper's experiments and print the results."""
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] in SERVICE_COMMANDS:
        from repro.service import main as service_main

        return service_main(list(raw))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of DeFord & Kalyanaraman (ICPP 2013).",
    )
    parser.add_argument(
        "experiment", choices=EXPERIMENTS, help="which paper artefact to regenerate"
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["small", "paper"],
        help="workload scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=2013, help="experiment seed")
    parser.add_argument("--trials", type=int, default=None, help="trials per case")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trial fan-out (default: REPRO_JOBS env var or serial); "
        "results are identical for any value",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help="persistent result store: a directory path or a sqlite://path URL "
        "(default: REPRO_STORE env var); finished cases are reused, "
        "interrupted sweeps resume",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="bypass the result store even if REPRO_STORE is set",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also save results as JSON (a directory when the command runs several studies)",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also save results as CSV (a directory when the command runs several studies)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for a unit that raised or timed out before the run "
        "fails (default: REPRO_MAX_RETRIES env var or 2; 0 disables retries)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget; a hung worker is torn down and the unit "
        "retried (default: REPRO_UNIT_TIMEOUT env var or no limit)",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="peak working-set budget for metric evaluation, e.g. 2GiB or 512MiB; "
        "ACD evaluations switch to memory-bounded tiles when the dense distance "
        "matrix would exceed it (default: REPRO_MEMORY_BUDGET env var or unbounded); "
        "results are identical for any budget",
    )
    tolerance = parser.add_mutually_exclusive_group()
    tolerance.add_argument(
        "--strict",
        dest="strict",
        action="store_true",
        default=None,
        help="fail fast on the first worker fault (no retries, rebuilds or "
        "serial degradation); completed cases still flush to the store",
    )
    tolerance.add_argument(
        "--best-effort",
        dest="strict",
        action="store_false",
        help="survive worker faults: retry transient errors, rebuild a broken "
        "pool, degrade to serial execution if it keeps breaking (default)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record the run and print a span/counter summary to stderr "
        "(also enabled by REPRO_TRACE=1)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="record the run and write a RunManifest JSON to PATH "
        "(a directory receives run_manifest.json; also REPRO_METRICS)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.store and args.no_store:
        parser.error("--store and --no-store are mutually exclusive")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error("--unit-timeout must be > 0")
    memory_budget = None
    if args.memory_budget is not None:
        try:
            memory_budget = parse_bytes(args.memory_budget)
        except ValueError as exc:
            parser.error(str(exc))
        if memory_budget < 1:
            parser.error("--memory-budget must be >= 1 byte")
    # Fault-tolerance knobs install through the runtime config (before
    # the jobs default, which set_default_jobs below must win).
    policy_overrides = {
        name: value
        for name, value in (
            ("max_retries", args.max_retries),
            ("unit_timeout", args.unit_timeout),
            ("strict", args.strict),
            ("memory_budget", memory_budget),
        )
        if value is not None
    }
    if policy_overrides:
        configure(**policy_overrides)
    set_default_jobs(args.jobs)

    if args.no_store:
        store = None
    elif args.store:
        store = ResultStore(args.store)
    else:
        store = ENV_STORE
    ctx = StudyContext(
        scale=None if args.scale is None else active_scale(args.scale),
        seed=args.seed,
        trials=args.trials,
        store=store,
    )

    runtime = runtime_config()
    trace = args.trace or runtime.trace
    metrics_path = args.metrics or runtime.metrics_path

    names = [
        study
        for command in (ALL_ORDER if args.experiment == "all" else (args.experiment,))
        for study in COMMANDS[command]
    ]
    results: dict[str, object] = {}

    def execute() -> None:
        for name in names:
            study = get_study(name)
            result = run_study(study, ctx)
            _print(study.render(result))
            results[name] = result

    if trace or metrics_path:
        with recording() as rec:
            execute()
        # stderr keeps stdout byte-stable across recorded and plain runs
        if metrics_path:
            manifest = RunManifest.from_recorder(
                rec,
                config=runtime.as_dict(),
                scale=ctx.preset().name,
                seed=args.seed,
                command=list(sys.argv[1:] if argv is None else argv),
            )
            target = manifest.write(metrics_path)
            print(f"wrote run manifest to {target}", file=sys.stderr)
        if trace:
            print(render_trace(rec), file=sys.stderr)
    else:
        execute()

    for flag, path, writer, label in (
        ("--json", args.json, save_result, "JSON"),
        ("--csv", args.csv, write_csv, "CSV"),
    ):
        if not path:
            continue
        ext = label.lower()
        if len(results) == 1:
            ((name, result),) = results.items()
            target = Path(path)
            if target.is_dir() or str(path).endswith(("/", "\\")):
                target.mkdir(parents=True, exist_ok=True)
                target = target / f"{name}.{ext}"
            writer(result, target)
            print(f"saved {label} to {target}")
        else:
            out_dir = Path(path)
            out_dir.mkdir(parents=True, exist_ok=True)
            for name, result in results.items():
                writer(result, out_dir / f"{name}.{ext}")
            print(f"saved {label} for {len(results)} studies to {out_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
