"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-experiments fig5                   # ANNS study (Fig. 5)
    repro-experiments tables --scale paper   # Tables I & II, full size
    repro-experiments fig6                   # topology comparison
    repro-experiments fig7                   # processor scaling
    repro-experiments sweeps                 # §VI-C parametric sweeps
    repro-experiments ablations              # DESIGN.md convention ablations
    repro-experiments validate3d             # future-work 3D validation
    repro-experiments all                    # everything, in paper order

    repro-experiments fig5 --json fig5.json --csv fig5.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablation import (
    continuity_ablation,
    ffi_granularity_ablation,
    hypercube_layout_ablation,
    interpolation_reading_ablation,
    quadtree_convention_ablation,
)
from repro.experiments.anns_study import format_anns_study, run_anns_study
from repro.experiments.clustering_study import (
    format_clustering_study,
    run_clustering_study,
)
from repro.experiments.io import save_result, write_csv
from repro.experiments.parametric import (
    format_sweep,
    run_distribution_sweep,
    run_input_size_sweep,
    run_radius_sweep,
)
from repro.experiments.reporting import format_rows
from repro.experiments.runner import set_default_jobs
from repro.experiments.scaling_study import format_scaling_study, run_scaling_study
from repro.experiments.sfc_pairs import format_sfc_pairs, run_sfc_pairs
from repro.experiments.reporting import format_series
from repro.experiments.study3d import format_study3d, run_anns3d_study, run_study3d
from repro.experiments.topology_study import format_topology_study, run_topology_study

__all__ = ["main"]

EXPERIMENTS = (
    "fig5",
    "tables",
    "fig6",
    "fig7",
    "sweeps",
    "ablations",
    "validate3d",
    "clustering",
    "all",
)


def _print(text: str) -> None:
    print(text)
    print()


def main(argv: list[str] | None = None) -> int:
    """Run one (or all) of the paper's experiments and print the results."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of DeFord & Kalyanaraman (ICPP 2013).",
    )
    parser.add_argument(
        "experiment", choices=EXPERIMENTS, help="which paper artefact to regenerate"
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["small", "paper"],
        help="workload scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=2013, help="experiment seed")
    parser.add_argument("--trials", type=int, default=None, help="trials per case")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trial fan-out (default: REPRO_JOBS env var or serial); "
        "results are identical for any value",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="also save the result as JSON"
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH", help="also save the result as CSV"
    )
    args = parser.parse_args(argv)
    if (args.json or args.csv) and args.experiment in ("sweeps", "ablations", "all"):
        parser.error("--json/--csv require a single-result experiment")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    set_default_jobs(args.jobs)

    want = args.experiment
    saved = None
    if want in ("fig5", "all"):
        result = run_anns_study(args.scale)
        _print(format_anns_study(result))
        saved = result
    if want in ("tables", "all"):
        result = run_sfc_pairs(args.scale, seed=args.seed, trials=args.trials)
        _print(format_sfc_pairs(result))
        saved = result
    if want in ("fig6", "all"):
        result = run_topology_study(args.scale, seed=args.seed, trials=args.trials)
        _print(format_topology_study(result))
        saved = result
    if want in ("fig7", "all"):
        result = run_scaling_study(args.scale, seed=args.seed, trials=args.trials)
        _print(format_scaling_study(result))
        saved = result
    if want in ("sweeps", "all"):
        for runner in (run_radius_sweep, run_input_size_sweep, run_distribution_sweep):
            _print(format_sweep(runner(args.scale, seed=args.seed, trials=args.trials)))
    if want in ("ablations", "all"):
        for title, runner in (
            ("quadtree hop convention", quadtree_convention_ablation),
            ("FFI granularity", ffi_granularity_ablation),
            ("far-field upward-pass reading", interpolation_reading_ablation),
            ("hypercube layout", hypercube_layout_ablation),
            ("continuity vs recursion", continuity_ablation),
        ):
            rows = [r.as_dict() for r in runner(seed=args.seed)]
            _print(f"Ablation: {title}\n" + format_rows(rows, ["variant", "nfi_acd", "ffi_acd"]))
    if want in ("validate3d", "all"):
        _print(format_study3d(run_study3d(seed=args.seed)))
        orders = (1, 2, 3, 4)
        _print(
            format_series(
                run_anns3d_study(orders=orders),
                [1 << k for k in orders],
                "3D ANNS (r=1)",
                "cube side",
            )
        )
    if want in ("clustering", "all"):
        _print(format_clustering_study(run_clustering_study(seed=args.seed)))

    if args.json and saved is not None:
        save_result(saved, args.json)
        print(f"saved JSON to {args.json}")
    if args.csv and saved is not None:
        write_csv(saved, args.csv)
        print(f"saved CSV to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
