"""Ablation studies over the reproduction's modelling choices.

DESIGN.md §3 documents the conventions the paper leaves unstated; each
function here measures how much one of those choices matters:

* :func:`quadtree_convention_ablation` — up-and-down vs one-per-level
  switch-tree path costs (decides the paper's Fig. 6(b) quadtree-vs-
  hypercube ranking).
* :func:`ffi_granularity_ablation` — §III cell-walk vs §IV
  per-processor deduplication of the far-field traffic.
* :func:`hypercube_layout_ablation` — identity vs Gray-coded rank
  labels on the hypercube (the paper applies no SFC there; the Gray
  embedding is the classic alternative).
* :func:`continuity_ablation` — snake vs row-major: does geometric
  continuity alone help the ACD, or is the recursive structure doing
  the work?

Each ablation is also a registered study (``ablation_*``) wrapping its
function in a single :class:`~repro.experiments.study.ComputeUnit`, so
the CLI's ``ablations`` command goes through the shared driver and the
result store like every other study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.distributions.registry import get_distribution
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_rows
from repro.experiments.store import register_store_codec
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    register_study,
)
from repro.fmm.model import FmmCommunicationModel
from repro.metrics.acd import acd_breakdown, compute_acd
from repro.topology.hypercube import HypercubeTopology
from repro.topology.quadtree import QuadtreeTopology
from repro.topology.registry import make_topology

__all__ = [
    "AblationRow",
    "AblationResult",
    "ABLATION_STUDIES",
    "quadtree_convention_ablation",
    "ffi_granularity_ablation",
    "interpolation_reading_ablation",
    "hypercube_layout_ablation",
    "continuity_ablation",
    "run_ablation",
    "format_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation with its NFI/FFI ACD."""

    variant: str
    nfi_acd: float
    ffi_acd: float

    def as_dict(self) -> dict[str, object]:
        """Flat mapping for tabular reporting."""
        return {"variant": self.variant, "nfi_acd": self.nfi_acd, "ffi_acd": self.ffi_acd}


def _sample(num_particles: int, order: int, distribution: str, seed: SeedLike):
    return get_distribution(distribution).sample(num_particles, order, rng=seed)


def quadtree_convention_ablation(
    num_particles: int = 15_000,
    order: int = 9,
    num_processors: int = 1_024,
    *,
    curve: str = "hilbert",
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Quadtree path-cost conventions vs the hypercube reference."""
    particles = _sample(num_particles, order, "uniform", seed)
    rows = []
    variants = {
        "quadtree/updown": QuadtreeTopology(num_processors, curve, hop_convention="updown"),
        "quadtree/levels": QuadtreeTopology(num_processors, curve, hop_convention="levels"),
        "hypercube": HypercubeTopology(num_processors),
    }
    for name, net in variants.items():
        model = FmmCommunicationModel(net, particle_curve=curve)
        report = model.evaluate(particles)
        rows.append(AblationRow(name, report.nfi_acd, report.ffi_acd))
    return rows


def ffi_granularity_ablation(
    num_particles: int = 15_000,
    order: int = 9,
    num_processors: int = 1_024,
    *,
    curve: str = "hilbert",
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Cell-granular (§III) vs processor-granular (§IV) far field."""
    particles = _sample(num_particles, order, "uniform", seed)
    net = make_topology("torus", num_processors, processor_curve=curve)
    rows = []
    for granularity in ("cell", "processor"):
        model = FmmCommunicationModel(net, particle_curve=curve, ffi_granularity=granularity)
        assignment = model.assign(particles)
        ffi = acd_breakdown(model.far_field_events(assignment).as_mapping(), net)
        nfi = compute_acd(model.near_field_events(assignment), net)
        rows.append(AblationRow(f"granularity={granularity}", nfi.acd, ffi["combined"].acd))
    return rows


def interpolation_reading_ablation(
    num_particles: int = 15_000,
    order: int = 9,
    num_processors: int = 1_024,
    *,
    curve: str = "hilbert",
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """The three readings of the far-field upward pass.

    §III walks cells (child rep → parent rep), §IV dedups per processor
    pair, and §IV steps 5–6 literally describe per-cell processor
    log-trees.  Each row reports the upward-pass ACD in the ``ffi_acd``
    column (``nfi_acd`` is zero — the near field is unaffected).
    """
    from repro.fmm.ffi import interpolation_events
    from repro.fmm.quadrant_tree import quadrant_tree_events
    from repro.partition.assignment import partition_particles
    from repro.quadtree.pyramid import representative_pyramid

    particles = _sample(num_particles, order, "uniform", seed)
    net = make_topology("torus", num_processors, processor_curve=curve)
    assignment = partition_particles(particles, curve, num_processors)
    pyramid = representative_pyramid(assignment.owner_grid())
    variants = {
        "cell parent-child (§III)": interpolation_events(pyramid),
        "processor dedup (§IV 7)": interpolation_events(pyramid, "processor"),
        "quadrant log-tree (§IV 5-6)": quadrant_tree_events(assignment),
    }
    return [
        AblationRow(name, 0.0, compute_acd(events, net).acd)
        for name, events in variants.items()
    ]


def hypercube_layout_ablation(
    num_particles: int = 15_000,
    order: int = 9,
    num_processors: int = 1_024,
    *,
    curve: str = "hilbert",
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Identity vs Gray-coded hypercube rank labels for FMM traffic."""
    particles = _sample(num_particles, order, "uniform", seed)
    rows = []
    for layout in ("identity", "gray"):
        net = HypercubeTopology(num_processors, layout=layout)
        model = FmmCommunicationModel(net, particle_curve=curve)
        report = model.evaluate(particles)
        rows.append(AblationRow(f"layout={layout}", report.nfi_acd, report.ffi_acd))
    return rows


def continuity_ablation(
    num_particles: int = 15_000,
    order: int = 9,
    num_processors: int = 1_024,
    *,
    seed: SeedLike = 0,
) -> list[AblationRow]:
    """Snake vs row-major vs Hilbert: continuity alone vs recursion.

    The snake scan is exactly the row-major order made geometrically
    continuous; comparing the three separates what continuity buys from
    what the recursive block structure buys.
    """
    particles = _sample(num_particles, order, "uniform", seed)
    rows = []
    for curve in ("rowmajor", "snake", "hilbert"):
        net = make_topology("torus", num_processors, processor_curve=curve)
        model = FmmCommunicationModel(net, particle_curve=curve)
        report = model.evaluate(particles)
        rows.append(AblationRow(curve, report.nfi_acd, report.ffi_acd))
    return rows


# --- study registrations -------------------------------------------------

register_store_codec(
    "AblationRow",
    AblationRow,
    lambda row: row.as_dict(),
    lambda data: AblationRow(**data),
)


@dataclass(frozen=True)
class AblationResult:
    """One ablation's rows, tagged with the ablation's registry name."""

    ablation: str
    title: str
    rows: list[AblationRow]


def format_ablation(result: AblationResult) -> str:
    """Render one ablation as the CLI's fixed-width table."""
    rows = [r.as_dict() for r in result.rows]
    return f"Ablation: {result.title}\n" + format_rows(rows, ["variant", "nfi_acd", "ffi_acd"])


def _flatten_ablation(result: AblationResult) -> list[dict]:
    return [{"ablation": result.ablation, **row.as_dict()} for row in result.rows]


def _restore_ablation(data: dict) -> dict:
    data["rows"] = [
        row if isinstance(row, AblationRow) else AblationRow(**row) for row in data["rows"]
    ]
    return data


_ABLATION_SCHEMA = ResultSchema(
    AblationResult, flatten=_flatten_ablation, restore=_restore_ablation
)

#: registry name -> (display title, ablation function), in CLI print order.
ABLATION_STUDIES: dict[str, tuple[str, object]] = {}


def _register_ablation(name: str, title: str, fn) -> Study:
    def plan(ctx: StudyContext, _name=name, _fn=fn) -> StudyPlan:
        return StudyPlan(
            units=(
                ComputeUnit(key=(_name,), fn=_fn, kwargs=(("seed", ctx.seed),)),
            ),
            seed=ctx.seed,
            meta={"ablation": _name, "title": title},
        )

    def collect(plan: StudyPlan, outputs: list, _name=name, _title=title) -> AblationResult:
        rows = [
            row if isinstance(row, AblationRow) else AblationRow(**row)
            for row in outputs[0]
        ]
        return AblationResult(ablation=_name, title=_title, rows=rows)

    study = register_study(
        Study(
            name=f"ablation_{name}",
            title=f"Ablation — {title}",
            result_type=AblationResult,
            plan=plan,
            collect=collect,
            render=format_ablation,
            schema=_ABLATION_SCHEMA,
        )
    )
    ABLATION_STUDIES[name] = (title, fn)
    return study


_register_ablation(
    "quadtree_convention", "quadtree hop convention", quadtree_convention_ablation
)
_register_ablation("ffi_granularity", "FFI granularity", ffi_granularity_ablation)
_register_ablation(
    "interpolation_reading",
    "far-field upward-pass reading",
    interpolation_reading_ablation,
)
_register_ablation("hypercube_layout", "hypercube layout", hypercube_layout_ablation)
_register_ablation("continuity", "continuity vs recursion", continuity_ablation)


def run_ablation(name: str, *, seed: SeedLike = 0) -> AblationResult:
    """Removed legacy runner; raises with the
    ``run_study("ablation_<name>")`` replacement."""
    _legacy_runner_error("run_ablation", f"ablation_{name}")
    raise AssertionError("unreachable")
