"""Sharded, resumable ACD evaluation: tiles as fault-tolerant units.

:func:`repro.metrics.acd.compute_acd` already evaluates a histogram
under a memory budget by walking its non-empty distance tiles serially.
This module fans the *same* tiles out as compute units through
:func:`repro.experiments.executor.execute_units` — the engine behind
every paper study — so million-rank ACD campaigns inherit the whole
fault-tolerance surface for free:

* ``--jobs`` / ``REPRO_JOBS`` process fan-out (each worker keeps its
  own block cache, so hot tiles amortise within a worker);
* per-unit retries, wall-clock timeouts, pool rebuilds and strict mode
  (:class:`~repro.experiments.executor.ExecutionPolicy`);
* flush-on-failure resume through the
  :class:`~repro.experiments.store.ResultStore`: every finished tile is
  persisted the moment it lands, keyed by a content digest of the
  histogram plus the tile coordinates, so a killed run re-pays only the
  missing tiles.

Because each tile's partial sum is exact ``int64`` arithmetic over a
disjoint slice of the pair set, the merged result is bit-identical to
the dense, streaming and serial-tiled paths — at any job count, with or
without a store, across kill/resume cycles.

The run is traced as an ``acd.sharded`` span with ``acd.tiles`` /
``acd.tiles_resumed`` counters and an ``acd.tile_bytes_peak`` gauge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.experiments.executor import ExecutionPolicy, execute_units
from repro.experiments.runner import resolve_jobs
from repro.experiments.store import MISS, STORE_SCHEMA_VERSION, ResultStore
from repro.experiments.study import ENV_STORE, _resolve_store, StudyContext
from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.metrics.acd import (
    ACDResult,
    EventsLike,
    _check_ranks,
    evaluate_tile,
    iter_histogram_tiles,
    tile_side_for_budget,
)
from repro.errors import UnknownNameError
from repro.runtime import runtime_config
from repro.topology.base import Topology
from repro.topology.cache import get_topology_cache, topology_cache_key
from repro.topology.registry import TOPOLOGIES, make_topology

__all__ = ["ShardedAcdResult", "evaluate_acd_sharded", "acd_tile_key"]

_DEFAULT_BUDGET = "config"  # sentinel: read RuntimeConfig.memory_budget at call time


@dataclass(frozen=True)
class ShardedAcdResult:
    """Outcome of one sharded ACD evaluation.

    ``result`` is the pooled :class:`~repro.metrics.acd.ACDResult`
    (bit-identical to every other evaluation path); ``tiles`` counts
    the non-empty tiles of the run, split into ``resumed`` (served from
    the store) and ``computed`` (evaluated by this run).
    """

    result: ACDResult
    tile_side: int
    tiles: int
    resumed: int
    computed: int


def _histogram_digest(histogram: PairHistogram) -> str:
    """Content digest addressing a histogram in the result store."""
    digest = hashlib.sha256()
    digest.update(f"p={histogram.num_processors};".encode())
    for array in (histogram.src, histogram.dst, histogram.weights):
        digest.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
    return digest.hexdigest()


def acd_tile_key(
    topology: Topology, digest: str, tile_side: int, rows: tuple[int, int], cols: tuple[int, int]
) -> dict:
    """The store key of one tile's partial result.

    Addressed by the topology *parameters*, the histogram content
    digest and the tile geometry — everything that determines the
    partial sum — so resumes survive process restarts and object
    identities, and a changed histogram or budget can never alias a
    stale entry.
    """
    return {
        "kind": "acd_tile",
        "v": STORE_SCHEMA_VERSION,
        "topology": list(topology_cache_key(topology)),
        "digest": digest,
        "tile_side": int(tile_side),
        "row": int(rows[0]),
        "col": int(cols[0]),
    }


@dataclass(frozen=True)
class _TopologySpec:
    """A registry recipe standing in for a topology in unit args.

    A million-rank topology pickles its layout arrays — megabytes *per
    unit* — which dominated sharded runs.  When the topology provably
    round-trips through :func:`make_topology` we ship this tiny spec
    instead and let each worker rebuild (and memoise) the instance once.
    """

    name: str
    num_processors: int
    processor_curve: str | None


def _topology_transport(topology: Topology) -> "Topology | _TopologySpec":
    """The cheapest faithful representation of ``topology`` for units.

    Returns a :class:`_TopologySpec` only when rebuilding from the
    registry yields the same :func:`topology_cache_key` — any custom
    construction (hand-built layouts, non-default conventions, classes
    outside the registry) falls back to pickling the instance itself.
    """
    name = type(topology).__name__.removesuffix("Topology")
    try:
        canonical = TOPOLOGIES.canonical(name)
    except UnknownNameError:
        return topology
    curve = getattr(getattr(topology, "layout", None), "curve_name", None)
    spec = _TopologySpec(canonical, topology.num_processors, curve)
    try:
        rebuilt = make_topology(spec.name, spec.num_processors, spec.processor_curve)
    except Exception:
        return topology
    if topology_cache_key(rebuilt) != topology_cache_key(topology):
        return topology
    return spec


#: Per-worker-process memo of topologies rebuilt from specs.
_worker_topologies: dict[_TopologySpec, Topology] = {}


def _resolve_topology(transport: "Topology | _TopologySpec") -> Topology:
    if not isinstance(transport, _TopologySpec):
        return transport
    topology = _worker_topologies.get(transport)
    if topology is None:
        topology = make_topology(
            transport.name, transport.num_processors, transport.processor_curve
        )
        _worker_topologies[transport] = topology
    return topology


def _evaluate_tile_unit(
    transport: "Topology | _TopologySpec",
    rows: tuple[int, int],
    cols: tuple[int, int],
    src,
    dst,
    weights,
) -> dict:
    """One tile evaluated in a worker; returns a JSON-native partial."""
    total, tile_bytes = evaluate_tile(
        _resolve_topology(transport), get_topology_cache(), rows, cols, src, dst, weights
    )
    return {
        "total": int(total),
        "count": int(np.asarray(weights).sum()),
        "tile_bytes": int(tile_bytes),
    }


def evaluate_acd_sharded(
    events: EventsLike,
    topology: Topology,
    *,
    memory_budget: "int | str" = _DEFAULT_BUDGET,
    jobs: int | None = None,
    store: "ResultStore | None | object" = ENV_STORE,
    policy: ExecutionPolicy | None = None,
) -> ShardedAcdResult:
    """Evaluate an ACD as a resumable fan-out of memory-bounded tiles.

    ``events`` may be raw :class:`CommunicationEvents` (compacted here)
    or a pre-compacted :class:`PairHistogram`.  ``memory_budget``
    (bytes; default :attr:`RuntimeConfig.memory_budget`) sizes the
    tiles and **must** be configured — sharded evaluation exists
    precisely to bound memory, so an unbounded run is a configuration
    error.  ``jobs`` defaults to ``REPRO_JOBS``; ``store`` defaults to
    ``REPRO_STORE`` (pass ``None`` to disable resume); ``policy``
    defaults to the runtime fault-tolerance knobs.

    Tiles already present in the store are not re-evaluated; freshly
    computed tiles are flushed to the store the moment they complete,
    *before* any failure can propagate, so interrupting and re-running
    the same evaluation pays only for the missing tiles.
    """
    if memory_budget == _DEFAULT_BUDGET:
        memory_budget = runtime_config().memory_budget
    if memory_budget is None:
        raise ValueError(
            "sharded ACD evaluation needs a memory budget: pass memory_budget= "
            "or configure REPRO_MEMORY_BUDGET / --memory-budget"
        )
    if isinstance(events, CommunicationEvents):
        histogram = events.compact(topology.num_processors)
    else:
        histogram = events
    if histogram.num_processors > topology.num_processors:
        raise ValueError(
            f"histogram spans {histogram.num_processors} ranks but the "
            f"topology only has {topology.num_processors}"
        )
    _check_ranks(histogram.src, histogram.dst, topology.num_processors)
    p = topology.num_processors
    tile_side = tile_side_for_budget(int(memory_budget), p)
    tiles = list(iter_histogram_tiles(histogram, p, tile_side))
    if store is ENV_STORE:
        store = _resolve_store(StudyContext())
    jobs = resolve_jobs(jobs)

    result = ACDResult(0, 0)
    resumed = 0
    peak = 0
    pending: list[tuple] = []
    keys: list[dict | None] = []
    with obs.span(
        "acd.sharded", processors=p, tile_side=tile_side, tiles=len(tiles), jobs=jobs
    ):
        digest = _histogram_digest(histogram) if store is not None else ""
        transport = _topology_transport(topology)
        for rows, cols, src, dst, weights in tiles:
            key = (
                acd_tile_key(topology, digest, tile_side, rows, cols)
                if store is not None
                else None
            )
            hit = store.get(key) if store is not None else MISS
            if hit is not MISS:
                result = result.merged(ACDResult(int(hit["total"]), int(hit["count"])))
                resumed += 1
                obs.count("acd.tiles_resumed")
                continue
            pending.append((transport, rows, cols, src, dst, weights))
            keys.append(key)
        # Flush-on-failure: execute_units streams completions (any
        # order) and raises only after yielding every finished unit, so
        # each tile is persisted before a failure can propagate.
        for index, value in execute_units(_evaluate_tile_unit, pending, jobs, policy):
            if store is not None and keys[index] is not None:
                store.put(keys[index], {"total": value["total"], "count": value["count"]})
            result = result.merged(ACDResult(int(value["total"]), int(value["count"])))
            peak = max(peak, int(value["tile_bytes"]))
        obs.count("acd.tiles", len(tiles))
        obs.gauge("acd.tile_bytes_peak", peak)
    return ShardedAcdResult(
        result=result,
        tile_side=tile_side,
        tiles=len(tiles),
        resumed=resumed,
        computed=len(pending),
    )
