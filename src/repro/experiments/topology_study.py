"""Fig. 6 — effect of the network topology (§VI-B).

One sub-case per {topology, SFC} pair, using the *same* curve for both
particle and processor ordering, on a fixed uniform input (1 000 000
particles on a 4096-lattice with r = 4 at paper scale).  The paper plots
mesh/torus/quadtree/hypercube and omits bus/ring (and the near-field
row-major entries) as off-scale; we compute everything and let the
formatter annotate the omissions.

All topologies of one curve share a single event-generating instance, so
the grouped campaign engine generates each trial's events once per curve
and evaluates all six networks against them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.config import FmmCase, Scale
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_matrix
from repro.experiments.study import (
    FmmUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
    run_study,
)
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import PAPER_TOPOLOGIES

__all__ = [
    "TopologyStudyResult",
    "TOPOLOGY_STUDY",
    "run_topology_study",
    "format_topology_study",
]

#: The four topologies Fig. 6 actually plots.
FIG6_TOPOLOGIES: tuple[str, ...] = ("mesh", "torus", "quadtree", "hypercube")


@dataclass(frozen=True)
class TopologyStudyResult:
    """ACD per {topology, curve} for both interaction models.

    ``nfi[topology][curve]`` / ``ffi[topology][curve]`` hold the
    trial-averaged ACD values.
    """

    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    nfi: dict[str, dict[str, float]]
    ffi: dict[str, dict[str, float]]


def plan_topology_study(
    ctx: StudyContext,
    topologies: tuple[str, ...] = PAPER_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    distribution: str = "uniform",
) -> StudyPlan:
    """Declare the §VI-B grid: every {topology, curve} pair."""
    preset = ctx.preset()
    units = tuple(
        FmmUnit(
            key=(topo, curve),
            case=FmmCase(
                num_particles=preset.topo_particles,
                order=preset.topo_order,
                num_processors=preset.topo_processors,
                topology=topo,
                particle_curve=curve,
                processor_curve=curve,  # same SFC for both roles (§VI-B)
                distribution=distribution,
                radius=preset.topo_radius,
            ),
        )
        for topo in topologies
        for curve in curves
    )
    return StudyPlan(
        units=units,
        trials=preset.resolve_trials(ctx.trials),
        seed=ctx.seed,
        meta={"topologies": tuple(topologies), "curves": tuple(curves)},
    )


def collect_topology_study(plan: StudyPlan, outputs: list) -> TopologyStudyResult:
    """Assemble the topology x curve matrices from per-pair results."""
    by_key = outputs_by_key(plan, outputs)
    topologies, curves = plan.meta["topologies"], plan.meta["curves"]
    nfi = {t: {c: by_key[(t, c)].nfi_acd for c in curves} for t in topologies}
    ffi = {t: {c: by_key[(t, c)].ffi_acd for c in curves} for t in topologies}
    return TopologyStudyResult(topologies=topologies, curves=curves, nfi=nfi, ffi=ffi)


def format_topology_study(result: TopologyStudyResult) -> str:
    """Render both Fig. 6 panels as topology x curve matrices."""
    blocks = []
    for panel, data in (("Fig. 6(a) NFI ACD", result.nfi), ("Fig. 6(b) FFI ACD", result.ffi)):
        blocks.append(
            format_matrix(
                data,
                result.topologies,
                result.curves,
                title=panel,
                row_axis="Topology",
                col_axis="SFC",
            )
        )
    blocks.append(
        "(the paper's plot omits bus/ring and the NFI row-major entries as off-scale)"
    )
    return "\n\n".join(blocks)


def _flatten(result: TopologyStudyResult) -> list[dict]:
    return [
        {"model": model, "topology": topo, "curve": curve, "acd": table[topo][curve]}
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for topo in result.topologies
        for curve in result.curves
    ]


TOPOLOGY_STUDY = register_study(
    Study(
        name="fig6",
        title="Fig. 6 — network-topology comparison",
        result_type=TopologyStudyResult,
        plan=plan_topology_study,
        collect=collect_topology_study,
        render=format_topology_study,
        schema=ResultSchema(TopologyStudyResult, flatten=_flatten),
    )
)


def run_topology_study(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    topologies: tuple[str, ...] = PAPER_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    distribution: str = "uniform",
) -> TopologyStudyResult:
    """Removed legacy runner for the §VI-B study; raises with the
    ``run_study("fig6")`` replacement."""
    _legacy_runner_error("run_topology_study", "fig6")
    raise AssertionError("unreachable")


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_topology_study(run_study(TOPOLOGY_STUDY)))


if __name__ == "__main__":  # pragma: no cover
    main()
