"""Fig. 6 — effect of the network topology (§VI-B).

One sub-case per {topology, SFC} pair, using the *same* curve for both
particle and processor ordering, on a fixed uniform input (1 000 000
particles on a 4096-lattice with r = 4 at paper scale).  The paper plots
mesh/torus/quadtree/hypercube and omits bus/ring (and the near-field
row-major entries) as off-scale; we compute everything and let the
formatter annotate the omissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.config import FmmCase, Scale, active_scale
from repro.experiments.reporting import format_matrix
from repro.experiments.runner import run_case
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import PAPER_TOPOLOGIES

__all__ = ["TopologyStudyResult", "run_topology_study", "format_topology_study"]

#: The four topologies Fig. 6 actually plots.
FIG6_TOPOLOGIES: tuple[str, ...] = ("mesh", "torus", "quadtree", "hypercube")


@dataclass(frozen=True)
class TopologyStudyResult:
    """ACD per {topology, curve} for both interaction models.

    ``nfi[topology][curve]`` / ``ffi[topology][curve]`` hold the
    trial-averaged ACD values.
    """

    topologies: tuple[str, ...]
    curves: tuple[str, ...]
    nfi: dict[str, dict[str, float]]
    ffi: dict[str, dict[str, float]]


def run_topology_study(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    topologies: tuple[str, ...] = PAPER_TOPOLOGIES,
    curves: tuple[str, ...] = PAPER_CURVES,
    distribution: str = "uniform",
) -> TopologyStudyResult:
    """Run the 24-sub-case study of §VI-B."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)
    n_trials = trials if trials is not None else preset.trials
    nfi: dict[str, dict[str, float]] = {t: {} for t in topologies}
    ffi: dict[str, dict[str, float]] = {t: {} for t in topologies}
    for topo in topologies:
        for curve in curves:
            case = FmmCase(
                num_particles=preset.topo_particles,
                order=preset.topo_order,
                num_processors=preset.topo_processors,
                topology=topo,
                particle_curve=curve,
                processor_curve=curve,  # same SFC for both roles (§VI-B)
                distribution=distribution,
                radius=preset.topo_radius,
            )
            result = run_case(case, trials=n_trials, seed=seed)
            nfi[topo][curve] = result.nfi_acd
            ffi[topo][curve] = result.ffi_acd
    return TopologyStudyResult(
        topologies=tuple(topologies), curves=tuple(curves), nfi=nfi, ffi=ffi
    )


def format_topology_study(result: TopologyStudyResult) -> str:
    """Render both Fig. 6 panels as topology x curve matrices."""
    blocks = []
    for panel, data in (("Fig. 6(a) NFI ACD", result.nfi), ("Fig. 6(b) FFI ACD", result.ffi)):
        blocks.append(
            format_matrix(
                data,
                result.topologies,
                result.curves,
                title=panel,
                row_axis="Topology",
                col_axis="SFC",
            )
        )
    blocks.append(
        "(the paper's plot omits bus/ring and the NFI row-major entries as off-scale)"
    )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_topology_study(run_topology_study()))


if __name__ == "__main__":  # pragma: no cover
    main()
