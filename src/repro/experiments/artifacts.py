"""Trial artifacts: shared event histograms keyed by experiment instance.

The event stream of an :class:`~repro.experiments.config.FmmCase` trial
depends only on the case's *instance* fields (distribution, particle
count, lattice order, particle-order SFC, processor count, radius, NFI
metric) and the trial seed — never on the network being evaluated.  The
paper's own campaign grid (§VI, six topologies x four processor
orderings against a fixed workload) therefore regenerates identical
particles, assignments and NFI/FFI events up to 24 times per trial.

This module makes the generated events a first-class, reusable
**artifact**:

* :func:`build_trial_artifact` runs particles → assignment → events for
  one ``(instance, trial seed)`` and compacts each event stream into a
  :class:`~repro.fmm.events.PairHistogram` (bounded by ``p**2`` entries,
  typically far smaller), so the artifact is cheap to hold and ACD
  evaluation against *any* topology is one gather + dot product.
* :class:`EventArtifactCache` is the process-wide, thread-safe,
  byte-budgeted LRU holding finished artifacts — the event-side sibling
  of :class:`~repro.topology.cache.TopologyCache`.  Workers and repeated
  studies reuse artifacts instead of regenerating events.
* :func:`get_trial_artifact` is the memoised entry point the runners
  use; :func:`evaluate_artifact` turns an artifact into the classic
  ``(nfi, ffi)`` trial result for a concrete network.

Because every ACD sum on a histogram stays in integer arithmetic, the
artifact path is bit-identical to streaming over freshly generated
events.

Knobs
-----
The default cache sizes come from the runtime config
(:func:`repro.runtime.runtime_config`), read once at import time:

* ``event_cache_bytes`` (``REPRO_EVENT_CACHE_BYTES``) — total byte
  budget across resident artifacts (default 256 MiB; ``0`` disables
  artifact caching).
* ``event_cache_entries`` (``REPRO_EVENT_CACHE_ENTRIES``) — max
  resident artifacts (default 256).

Call :func:`set_event_cache` (or :func:`repro.runtime.configure`) to
swap in a differently-sized cache.  Hits, misses, evictions and the
generated-vs-reused event balance are reported to :mod:`repro.obs`
(``event_cache.*`` / ``events.*`` counters).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro import obs
from repro._typing import SeedLike
from repro.distributions.registry import get_distribution
from repro.experiments.config import FmmCase
from repro.fmm.events import PairHistogram
from repro.fmm.ffi import ffi_events
from repro.fmm.nfi import nfi_events
from repro.metrics.acd import ACDResult, acd_breakdown, compute_acd
from repro.partition.assignment import partition_particles
from repro.runtime import runtime_config
from repro.topology.base import Topology

__all__ = [
    "TrialArtifact",
    "EventArtifactCache",
    "build_trial_artifact",
    "get_trial_artifact",
    "evaluate_artifact",
    "artifact_seed_key",
    "get_event_cache",
    "set_event_cache",
]

#: Far-field phase order (fixed so artifacts evaluate deterministically).
FFI_PHASES: tuple[str, ...] = ("interpolation", "anterpolation", "interaction")


@dataclass(frozen=True)
class TrialArtifact:
    """Compacted event histograms of one ``(instance, trial)`` unit.

    ``nfi`` / ``ffi`` are ``None`` when the corresponding part was not
    requested; ``ffi`` maps the three far-field phase names to their
    histograms.
    """

    nfi: PairHistogram | None
    ffi: dict[str, PairHistogram] | None

    @property
    def parts(self) -> frozenset[str]:
        """Which interaction models this artifact covers."""
        have = set()
        if self.nfi is not None:
            have.add("nfi")
        if self.ffi is not None:
            have.add("ffi")
        return frozenset(have)

    @property
    def nbytes(self) -> int:
        """Total footprint of the histogram arrays."""
        total = self.nfi.nbytes if self.nfi is not None else 0
        if self.ffi is not None:
            total += sum(h.nbytes for h in self.ffi.values())
        return total


def build_trial_artifact(
    case: FmmCase,
    child_seed: SeedLike,
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> TrialArtifact:
    """Generate and compact one trial's events (instance fields only).

    Draws the trial's particles from ``child_seed`` exactly as the
    serial runner always has, partitions them along the particle-order
    SFC, and compacts the requested event streams into histograms over
    the case's rank space.  Only :data:`INSTANCE_FIELDS` of ``case`` are
    read — the network fields never influence the result.
    """
    obs.count("events.generated")
    distribution = get_distribution(case.distribution)
    particles = distribution.sample(
        case.num_particles, case.order, rng=np.random.default_rng(child_seed)
    )
    assignment = partition_particles(
        particles, case.particle_curve, case.num_processors
    )
    p = case.num_processors
    nfi = None
    if "nfi" in parts:
        nfi = nfi_events(
            assignment, radius=case.radius, metric=case.nfi_metric
        ).compact(p)
    ffi = None
    if "ffi" in parts:
        phase_events = ffi_events(assignment).as_mapping()
        ffi = {name: phase_events[name].compact(p) for name in FFI_PHASES}
    return TrialArtifact(nfi=nfi, ffi=ffi)


def evaluate_artifact(
    artifact: TrialArtifact,
    topology: Topology,
    parts: tuple[str, ...] = ("nfi", "ffi"),
) -> tuple[ACDResult, dict[str, ACDResult]]:
    """ACD of a shared artifact on one concrete network.

    Returns the classic trial result shape ``(nfi, {phase: acd})``;
    skipped parts report empty :class:`ACDResult` aggregates, matching
    the streaming runner.  Integer arithmetic throughout keeps the
    output bit-identical to evaluating the raw events.
    """
    if "nfi" in parts:
        if artifact.nfi is None:
            raise ValueError("artifact does not carry near-field events")
        nfi = compute_acd(artifact.nfi, topology)
    else:
        nfi = ACDResult(0, 0)
    if "ffi" in parts:
        if artifact.ffi is None:
            raise ValueError("artifact does not carry far-field events")
        ffi = acd_breakdown(artifact.ffi, topology)
    else:
        ffi = {"combined": ACDResult(0, 0)}
    return nfi, ffi


def artifact_seed_key(seed: SeedLike) -> Hashable | None:
    """A stable hashable identity for a trial seed, or ``None``.

    ``SeedSequence`` children spawned from the same root compare equal
    by ``(entropy, spawn_key, pool_size)``; raw ints/None hash as-is.
    ``Generator`` inputs (stateful, unrepeatable) return ``None`` so the
    cache is bypassed rather than serving a stale artifact.
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = tuple(int(e) for e in entropy)
        return ("seedseq", entropy, tuple(seed.spawn_key), seed.pool_size)
    if isinstance(seed, np.random.Generator):
        return None
    try:
        hash(seed)
    except TypeError:
        return None
    return ("raw", seed)


class EventArtifactCache:
    """Thread-safe, byte-budgeted LRU of finished trial artifacts.

    Parameters
    ----------
    max_bytes:
        Total histogram bytes across resident artifacts; least-recently
        used artifacts are evicted beyond this.  ``0`` disables caching
        (every lookup builds).
    max_entries:
        Resident artifact count bound, independent of size.
    """

    def __init__(self, max_bytes: int = 256 << 20, max_entries: int = 256):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._lock = threading.RLock()
        self._data: OrderedDict[Hashable, TrialArtifact] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _evict(self) -> None:
        while self._data and (
            self._bytes > self.max_bytes or len(self._data) > self.max_entries
        ):
            _, evicted = self._data.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1
            obs.count("event_cache.evictions")
            obs.count("event_cache.bytes_evicted", evicted.nbytes)

    def get_or_build(
        self,
        key: Hashable | None,
        parts: tuple[str, ...],
        builder: Callable[[tuple[str, ...]], TrialArtifact],
    ) -> TrialArtifact:
        """Serve ``key`` from the cache, building (and caching) on miss.

        ``builder(parts)`` must produce an artifact covering ``parts``.
        A resident artifact is reused when it covers every requested
        part; a partial hit (e.g. an ``("nfi",)`` artifact when
        ``("nfi", "ffi")`` is now needed) rebuilds the union of parts
        and replaces the entry.  ``key=None`` (unkeyable seed) bypasses
        the cache entirely.  An artifact larger than the whole byte
        budget is returned but never retained.
        """
        want = tuple(sorted(set(parts)))
        if key is None or self.max_bytes == 0:
            return builder(want)
        with self._lock:
            cached = self._data.get(key)
            if cached is not None:
                if set(want) <= cached.parts:
                    self._data.move_to_end(key)
                    self.hits += 1
                    obs.count("event_cache.hits")
                    obs.count("events.reused")
                    return cached
                # partial hit: rebuild the union, replace the stale entry
                want = tuple(sorted(set(want) | cached.parts))
                self._bytes -= cached.nbytes
                del self._data[key]
            self.misses += 1
            obs.count("event_cache.misses")
            artifact = builder(want)
            if artifact.nbytes <= self.max_bytes:
                self._data[key] = artifact
                self._bytes += artifact.nbytes
                self._evict()
                obs.gauge("event_cache.resident_bytes", self._bytes)
            return artifact

    def clear(self) -> None:
        """Drop every artifact and reset the statistics."""
        with self._lock:
            self._data.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/residency counters (for tests and diagnostics)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "artifacts": len(self._data),
                "bytes": self._bytes,
            }


_runtime = runtime_config()
_default_cache = EventArtifactCache(
    max_bytes=_runtime.event_cache_bytes,
    max_entries=_runtime.event_cache_entries,
)
del _runtime
_default_lock = threading.Lock()


def get_event_cache() -> EventArtifactCache:
    """The process-wide shared artifact cache."""
    return _default_cache


def set_event_cache(cache: EventArtifactCache) -> EventArtifactCache:
    """Replace the process-wide artifact cache; returns the previous one."""
    global _default_cache
    if not isinstance(cache, EventArtifactCache):
        raise TypeError(f"expected an EventArtifactCache, got {type(cache).__name__}")
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous


def get_trial_artifact(
    case: FmmCase,
    child_seed: SeedLike,
    parts: tuple[str, ...] = ("nfi", "ffi"),
    cache: EventArtifactCache | None = None,
) -> TrialArtifact:
    """The (possibly cached) artifact of one ``(instance, trial)`` unit.

    A cached artifact is reused when it covers every requested part; a
    partial hit (e.g. an ``("nfi",)`` artifact when ``("nfi", "ffi")``
    is now needed) rebuilds the union and replaces the entry.  The
    evaluation result never depends on cache state.
    """
    cache = get_event_cache() if cache is None else cache
    seed_key = artifact_seed_key(child_seed)
    key = None if seed_key is None else (case.instance_key(), seed_key)
    return cache.get_or_build(
        key, parts, lambda want: build_trial_artifact(case, child_seed, want)
    )
