"""Experiment harness: one registered study per paper table/figure.

Every paper artefact is a :class:`~repro.experiments.study.Study` in the
:data:`~repro.experiments.study.STUDIES` registry.  The stable public
surface is:

* :func:`~repro.experiments.study.run_study` /
  :func:`~repro.experiments.study.list_studies` — execute and discover
  studies by name (``run_study("fig6")``);
* :class:`~repro.runtime.RuntimeConfig` /
  :func:`~repro.runtime.configure` — every runtime knob (scale, jobs,
  store, cache budgets, trace/metrics sinks) in one declarative object;
* :class:`~repro.obs.RunManifest` — the per-run observability document.

The per-study ``run_*`` runners have been removed; calling one raises
with a pointer at ``run_study(name)``.  Custom parameters go through the
exported ``plan_*`` builders: ``run_study("tables", ctx,
plan=plan_sfc_pairs(ctx, parts=("nfi",)))``.
"""

from repro.faults import FaultPlan, InjectedFault, parse_faults
from repro.obs import RunManifest
from repro.runtime import RuntimeConfig, configure, runtime_config

from repro.experiments.ablation import (
    ABLATION_STUDIES,
    AblationResult,
    AblationRow,
    continuity_ablation,
    ffi_granularity_ablation,
    format_ablation,
    hypercube_layout_ablation,
    interpolation_reading_ablation,
    quadtree_convention_ablation,
    run_ablation,
)
from repro.experiments.anns_study import (
    AnnsStudyResult,
    format_anns_study,
    plan_anns_study,
    run_anns_study,
)
from repro.experiments.clustering_study import (
    ClusteringStudyResult,
    format_clustering_study,
    plan_clustering_study,
    run_clustering_study,
)
from repro.experiments.artifacts import (
    EventArtifactCache,
    TrialArtifact,
    build_trial_artifact,
    evaluate_artifact,
    get_event_cache,
    get_trial_artifact,
    set_event_cache,
)
from repro.experiments.campaign import (
    case_groups,
    expand_grid,
    format_campaign,
    iter_campaign,
    run_campaign,
)
from repro.experiments.config import (
    EVALUATION_FIELDS,
    INSTANCE_FIELDS,
    PAPER,
    SCALES,
    SMALL,
    FmmCase,
    Scale,
    active_scale,
)
from repro.experiments.dynamics_study import (
    DYNAMIC_GRID,
    DYNAMIC_OBJECTIVES,
    DYNAMIC_TOPOLOGIES,
    DynamicStudyResult,
    evaluate_dynamic_step,
    format_dynamic_study,
    plan_dynamic_study,
)
from repro.experiments.io import load_result, result_to_csv_rows, save_result, write_csv
from repro.experiments.metric_studies import (
    METRIC_TOPOLOGIES,
    CommunicationMetricResult,
    SurfaceVolumeStudyResult,
    evaluate_communication_metric,
    evaluate_partition_metric,
    format_communication_metric,
    format_surface_volume_study,
    plan_data_volume_study,
    plan_energy_study,
    plan_surface_volume_study,
)
from repro.experiments.parametric import (
    SweepResult,
    format_sweep,
    plan_distribution_sweep,
    plan_input_size_sweep,
    plan_radius_sweep,
    run_distribution_sweep,
    run_input_size_sweep,
    run_radius_sweep,
)
from repro.experiments.reporting import format_matrix, format_rows, format_series
from repro.experiments.runner import (
    CaseResult,
    ExecutionPolicy,
    UnitFailedError,
    UnitTimeoutError,
    execute_units,
    map_units,
    run_case,
)
from repro.experiments.scaling_study import (
    ScalingStudyResult,
    format_scaling_study,
    plan_scaling_study,
    run_scaling_study,
)
from repro.experiments.sfc_pairs import (
    SfcPairsResult,
    format_sfc_pairs,
    plan_sfc_pairs,
    run_sfc_pairs,
)
from repro.experiments.sharded import (
    ShardedAcdResult,
    acd_tile_key,
    evaluate_acd_sharded,
)
from repro.experiments.backends import (
    DirectoryBackend,
    SqliteBackend,
    StoreBackend,
    open_backend,
)
from repro.experiments.store import (
    MISS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    default_store,
    open_store,
    register_store_codec,
)
from repro.experiments.study import (
    STUDIES,
    ComputeUnit,
    FmmUnit,
    Study,
    StudyContext,
    StudyPlan,
    get_study,
    list_studies,
    register_study,
    run_study,
    study_names,
)
from repro.experiments.study3d import (
    PAPER_CURVES_3D,
    Anns3dStudyResult,
    Study3DResult,
    format_anns3d_study,
    format_study3d,
    plan_anns3d_study,
    plan_study3d,
    run_anns3d_study,
    run_study3d,
)
from repro.experiments.topology_study import (
    TopologyStudyResult,
    format_topology_study,
    plan_topology_study,
    run_topology_study,
)
from repro.metrics.registry import METRICS, get_metric, list_metrics, metric_names

__all__ = [
    "RunManifest",
    "RuntimeConfig",
    "configure",
    "runtime_config",
    "list_studies",
    "FmmCase",
    "Scale",
    "SMALL",
    "PAPER",
    "SCALES",
    "active_scale",
    "CaseResult",
    "run_case",
    "ExecutionPolicy",
    "UnitFailedError",
    "UnitTimeoutError",
    "execute_units",
    "map_units",
    "FaultPlan",
    "InjectedFault",
    "parse_faults",
    "AnnsStudyResult",
    "run_anns_study",
    "format_anns_study",
    "SfcPairsResult",
    "run_sfc_pairs",
    "format_sfc_pairs",
    "ShardedAcdResult",
    "evaluate_acd_sharded",
    "acd_tile_key",
    "TopologyStudyResult",
    "run_topology_study",
    "format_topology_study",
    "ScalingStudyResult",
    "run_scaling_study",
    "format_scaling_study",
    "SweepResult",
    "run_radius_sweep",
    "run_input_size_sweep",
    "run_distribution_sweep",
    "format_sweep",
    "format_matrix",
    "format_series",
    "format_rows",
    "AblationRow",
    "quadtree_convention_ablation",
    "ffi_granularity_ablation",
    "interpolation_reading_ablation",
    "hypercube_layout_ablation",
    "continuity_ablation",
    "PAPER_CURVES_3D",
    "Study3DResult",
    "run_study3d",
    "run_anns3d_study",
    "format_study3d",
    "save_result",
    "load_result",
    "result_to_csv_rows",
    "write_csv",
    "ClusteringStudyResult",
    "run_clustering_study",
    "format_clustering_study",
    "METRICS",
    "get_metric",
    "list_metrics",
    "metric_names",
    "METRIC_TOPOLOGIES",
    "DYNAMIC_GRID",
    "DYNAMIC_OBJECTIVES",
    "DYNAMIC_TOPOLOGIES",
    "DynamicStudyResult",
    "evaluate_dynamic_step",
    "format_dynamic_study",
    "plan_dynamic_study",
    "CommunicationMetricResult",
    "SurfaceVolumeStudyResult",
    "evaluate_communication_metric",
    "evaluate_partition_metric",
    "format_communication_metric",
    "format_surface_volume_study",
    "expand_grid",
    "run_campaign",
    "iter_campaign",
    "format_campaign",
    "case_groups",
    "Study",
    "StudyContext",
    "StudyPlan",
    "FmmUnit",
    "ComputeUnit",
    "STUDIES",
    "register_study",
    "get_study",
    "study_names",
    "run_study",
    "plan_anns_study",
    "plan_anns3d_study",
    "plan_clustering_study",
    "plan_data_volume_study",
    "plan_distribution_sweep",
    "plan_energy_study",
    "plan_input_size_sweep",
    "plan_radius_sweep",
    "plan_scaling_study",
    "plan_sfc_pairs",
    "plan_study3d",
    "plan_surface_volume_study",
    "plan_topology_study",
    "ResultStore",
    "StoreBackend",
    "DirectoryBackend",
    "SqliteBackend",
    "open_backend",
    "open_store",
    "default_store",
    "register_store_codec",
    "MISS",
    "STORE_SCHEMA_VERSION",
    "AblationResult",
    "ABLATION_STUDIES",
    "run_ablation",
    "format_ablation",
    "Anns3dStudyResult",
    "format_anns3d_study",
    "INSTANCE_FIELDS",
    "EVALUATION_FIELDS",
    "TrialArtifact",
    "EventArtifactCache",
    "build_trial_artifact",
    "get_trial_artifact",
    "evaluate_artifact",
    "get_event_cache",
    "set_event_cache",
]
