"""Range-query clustering study (related-work reproduction).

The paper's §I/§II position the ACD and ANNS against "the most commonly
used metric ... the number of clusters accessed" (Jagadish 1990, Moon et
al. 2001).  Its surprising §V result — Hilbert *loses* the ANNS — is
surprising exactly because Hilbert *wins* clustering.  This study
regenerates that contrast inside one framework: average cluster counts
over random square range queries, swept over query sizes, for every
curve.  Each ``(query size, curve)`` cell is one declared
:class:`~repro.experiments.study.ComputeUnit`, so the sweep fans out
over ``--jobs`` and persists per-cell in the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_series
from repro.experiments.study import (
    ComputeUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
)
from repro.metrics.clustering import average_clusters
from repro.sfc.registry import PAPER_CURVES

__all__ = [
    "ClusteringStudyResult",
    "CLUSTERING_STUDY",
    "run_clustering_study",
    "format_clustering_study",
]

#: Default sweep (lattice 2^7, query sides 2..16, snake as extra curve).
DEFAULT_ORDER = 7
DEFAULT_QUERY_SIZES: tuple[int, ...] = (2, 4, 8, 16)
CLUSTERING_CURVES: tuple[str, ...] = PAPER_CURVES + ("snake",)
DEFAULT_SAMPLES = 400


@dataclass(frozen=True)
class ClusteringStudyResult:
    """Average cluster counts per curve over a query-size sweep."""

    order: int
    query_sizes: tuple[int, ...]
    curves: tuple[str, ...]
    #: ``values[curve][i]`` = mean clusters for ``query_sizes[i]``.
    values: dict[str, list[float]]


def clustering_point(curve: str, order: int, query_size: int, samples: int, seed) -> float:
    """One sweep cell: mean clusters for a curve at one query size."""
    return average_clusters(curve, order, query_size=query_size, rng=seed, samples=samples)


def plan_clustering_study(
    ctx: StudyContext,
    order: int = DEFAULT_ORDER,
    query_sizes: tuple[int, ...] = DEFAULT_QUERY_SIZES,
    curves: tuple[str, ...] = CLUSTERING_CURVES,
    samples: int = DEFAULT_SAMPLES,
) -> StudyPlan:
    """Declare the clustering sweep: every (query size, curve) cell."""
    side = 1 << order
    if max(query_sizes) > side:
        raise ValueError(f"query size {max(query_sizes)} exceeds lattice side {side}")
    units = tuple(
        ComputeUnit(
            key=(q, curve),
            fn=clustering_point,
            args=(curve, order, q, samples, ctx.seed),
        )
        for q in query_sizes
        for curve in curves
    )
    return StudyPlan(
        units=units,
        seed=ctx.seed,
        meta={"order": order, "query_sizes": tuple(query_sizes), "curves": tuple(curves)},
    )


def collect_clustering_study(plan: StudyPlan, outputs: list) -> ClusteringStudyResult:
    """Assemble the per-curve series in sweep order."""
    by_key = outputs_by_key(plan, outputs)
    order, query_sizes, curves = (
        plan.meta[k] for k in ("order", "query_sizes", "curves")
    )
    values = {c: [by_key[(q, c)] for q in query_sizes] for c in curves}
    return ClusteringStudyResult(
        order=order, query_sizes=query_sizes, curves=curves, values=values
    )


def format_clustering_study(result: ClusteringStudyResult) -> str:
    """Render the sweep plus the ANNS-vs-clustering contrast note."""
    table = format_series(
        result.values,
        result.query_sizes,
        f"Average clusters per square range query (lattice 2^{result.order})",
        "query side",
    )
    return table + (
        "\n(Hilbert minimises clustering — the literature's classic result — "
        "while §V shows it *loses* the ANNS: the two proximity notions disagree.)"
    )


def _flatten(result: ClusteringStudyResult) -> list[dict]:
    return [
        {"curve": curve, "query_size": q, "clusters": val}
        for curve in result.curves
        for q, val in zip(result.query_sizes, result.values[curve])
    ]


CLUSTERING_STUDY = register_study(
    Study(
        name="clustering",
        title="Range-query clustering vs ANNS contrast",
        result_type=ClusteringStudyResult,
        plan=plan_clustering_study,
        collect=collect_clustering_study,
        render=format_clustering_study,
        schema=ResultSchema(ClusteringStudyResult, flatten=_flatten),
    )
)


def run_clustering_study(
    order: int = DEFAULT_ORDER,
    query_sizes: tuple[int, ...] = DEFAULT_QUERY_SIZES,
    *,
    curves: tuple[str, ...] = CLUSTERING_CURVES,
    samples: int = DEFAULT_SAMPLES,
    seed: SeedLike = 2013,
) -> ClusteringStudyResult:
    """Removed legacy runner; raises with the ``run_study("clustering")``
    replacement."""
    _legacy_runner_error("run_clustering_study", "clustering")
    raise AssertionError("unreachable")
