"""Range-query clustering study (related-work reproduction).

The paper's §I/§II position the ACD and ANNS against "the most commonly
used metric ... the number of clusters accessed" (Jagadish 1990, Moon et
al. 2001).  Its surprising §V result — Hilbert *loses* the ANNS — is
surprising exactly because Hilbert *wins* clustering.  This study
regenerates that contrast inside one framework: average cluster counts
over random square range queries, swept over query sizes, for every
curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.reporting import format_series
from repro.metrics.clustering import average_clusters
from repro.sfc.registry import PAPER_CURVES

__all__ = ["ClusteringStudyResult", "run_clustering_study", "format_clustering_study"]


@dataclass(frozen=True)
class ClusteringStudyResult:
    """Average cluster counts per curve over a query-size sweep."""

    order: int
    query_sizes: tuple[int, ...]
    curves: tuple[str, ...]
    #: ``values[curve][i]`` = mean clusters for ``query_sizes[i]``.
    values: dict[str, list[float]]


def run_clustering_study(
    order: int = 7,
    query_sizes: tuple[int, ...] = (2, 4, 8, 16),
    *,
    curves: tuple[str, ...] = PAPER_CURVES + ("snake",),
    samples: int = 400,
    seed: SeedLike = 2013,
) -> ClusteringStudyResult:
    """Sweep query sizes and average cluster counts per curve."""
    side = 1 << order
    if max(query_sizes) > side:
        raise ValueError(f"query size {max(query_sizes)} exceeds lattice side {side}")
    values: dict[str, list[float]] = {c: [] for c in curves}
    for q in query_sizes:
        for curve in curves:
            values[curve].append(
                average_clusters(curve, order, query_size=q, rng=seed, samples=samples)
            )
    return ClusteringStudyResult(
        order=order, query_sizes=tuple(query_sizes), curves=tuple(curves), values=values
    )


def format_clustering_study(result: ClusteringStudyResult) -> str:
    """Render the sweep plus the ANNS-vs-clustering contrast note."""
    table = format_series(
        result.values,
        result.query_sizes,
        f"Average clusters per square range query (lattice 2^{result.order})",
        "query side",
    )
    return table + (
        "\n(Hilbert minimises clustering — the literature's classic result — "
        "while §V shows it *loses* the ANNS: the two proximity notions disagree.)"
    )
