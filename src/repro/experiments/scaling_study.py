"""Fig. 7 — ACD as a function of the processor count (§VI-C).

Fixed uniform input, torus network, same SFC for particle and processor
ordering; the processor count sweeps over powers of four.  Each
``(processor count, curve)`` point is one declared unit; the campaign
engine shares event generation between points with equal instance keys
and fans the sweep out over ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.config import FmmCase, Scale
from repro.experiments.io import ResultSchema
from repro.experiments.reporting import format_series
from repro.experiments.study import (
    FmmUnit,
    Study,
    StudyContext,
    StudyPlan,
    _legacy_runner_error,
    outputs_by_key,
    register_study,
    run_study,
)
from repro.sfc.registry import PAPER_CURVES

__all__ = [
    "ScalingStudyResult",
    "SCALING_STUDY",
    "run_scaling_study",
    "format_scaling_study",
]


@dataclass(frozen=True)
class ScalingStudyResult:
    """ACD series per curve across the processor sweep."""

    processor_counts: tuple[int, ...]
    curves: tuple[str, ...]
    #: ``nfi[curve][i]`` = ACD at ``processor_counts[i]`` (``ffi`` alike).
    nfi: dict[str, list[float]]
    ffi: dict[str, list[float]]


def plan_scaling_study(
    ctx: StudyContext,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    distribution: str = "uniform",
) -> StudyPlan:
    """Declare the Fig. 7 grid: every (processor count, curve) point."""
    preset = ctx.preset()
    counts = tuple(preset.scaling_processors)
    units = tuple(
        FmmUnit(
            key=(p, curve),
            case=FmmCase(
                num_particles=preset.scaling_particles,
                order=preset.scaling_order,
                num_processors=p,
                topology=topology,
                particle_curve=curve,
                processor_curve=curve,
                distribution=distribution,
                radius=1,
            ),
        )
        for p in counts
        for curve in curves
    )
    return StudyPlan(
        units=units,
        trials=preset.resolve_trials(ctx.trials),
        seed=ctx.seed,
        meta={"processor_counts": counts, "curves": tuple(curves)},
    )


def collect_scaling_study(plan: StudyPlan, outputs: list) -> ScalingStudyResult:
    """Assemble the per-curve series in sweep order."""
    by_key = outputs_by_key(plan, outputs)
    counts, curves = plan.meta["processor_counts"], plan.meta["curves"]
    nfi = {c: [by_key[(p, c)].nfi_acd for p in counts] for c in curves}
    ffi = {c: [by_key[(p, c)].ffi_acd for p in counts] for c in curves}
    return ScalingStudyResult(
        processor_counts=counts, curves=curves, nfi=nfi, ffi=ffi
    )


def format_scaling_study(result: ScalingStudyResult) -> str:
    """Render both Fig. 7 panels as processor-count series."""
    blocks = [
        format_series(result.nfi, result.processor_counts, "Fig. 7(a) NFI ACD vs processors", "processors"),
        format_series(result.ffi, result.processor_counts, "Fig. 7(b) FFI ACD vs processors", "processors"),
    ]
    return "\n\n".join(blocks)


def _flatten(result: ScalingStudyResult) -> list[dict]:
    return [
        {"model": model, "curve": curve, "processors": p, "acd": val}
        for model, table in (("nfi", result.nfi), ("ffi", result.ffi))
        for curve in result.curves
        for p, val in zip(result.processor_counts, table[curve])
    ]


SCALING_STUDY = register_study(
    Study(
        name="fig7",
        title="Fig. 7 — ACD vs processor count",
        result_type=ScalingStudyResult,
        plan=plan_scaling_study,
        collect=collect_scaling_study,
        render=format_scaling_study,
        schema=ResultSchema(ScalingStudyResult, flatten=_flatten),
    )
)


def run_scaling_study(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    distribution: str = "uniform",
) -> ScalingStudyResult:
    """Removed legacy runner for the Fig. 7 sweep; raises with the
    ``run_study("fig7")`` replacement."""
    _legacy_runner_error("run_scaling_study", "fig7")
    raise AssertionError("unreachable")


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_scaling_study(run_study(SCALING_STUDY)))


if __name__ == "__main__":  # pragma: no cover
    main()
