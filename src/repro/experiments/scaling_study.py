"""Fig. 7 — ACD as a function of the processor count (§VI-C).

Fixed uniform input, torus network, same SFC for particle and processor
ordering; the processor count sweeps over powers of four.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._typing import SeedLike
from repro.experiments.config import FmmCase, Scale, active_scale
from repro.experiments.reporting import format_series
from repro.experiments.runner import run_case
from repro.sfc.registry import PAPER_CURVES

__all__ = ["ScalingStudyResult", "run_scaling_study", "format_scaling_study"]


@dataclass(frozen=True)
class ScalingStudyResult:
    """ACD series per curve across the processor sweep."""

    processor_counts: tuple[int, ...]
    curves: tuple[str, ...]
    #: ``nfi[curve][i]`` = ACD at ``processor_counts[i]`` (``ffi`` alike).
    nfi: dict[str, list[float]]
    ffi: dict[str, list[float]]


def run_scaling_study(
    scale: Scale | str | None = None,
    *,
    seed: SeedLike = 2013,
    trials: int | None = None,
    curves: tuple[str, ...] = PAPER_CURVES,
    topology: str = "torus",
    distribution: str = "uniform",
) -> ScalingStudyResult:
    """Run the Fig. 7 processor sweep."""
    preset = scale if isinstance(scale, Scale) else active_scale(scale)
    n_trials = trials if trials is not None else preset.trials
    nfi: dict[str, list[float]] = {c: [] for c in curves}
    ffi: dict[str, list[float]] = {c: [] for c in curves}
    for p in preset.scaling_processors:
        for curve in curves:
            case = FmmCase(
                num_particles=preset.scaling_particles,
                order=preset.scaling_order,
                num_processors=p,
                topology=topology,
                particle_curve=curve,
                processor_curve=curve,
                distribution=distribution,
                radius=1,
            )
            result = run_case(case, trials=n_trials, seed=seed)
            nfi[curve].append(result.nfi_acd)
            ffi[curve].append(result.ffi_acd)
    return ScalingStudyResult(
        processor_counts=tuple(preset.scaling_processors),
        curves=tuple(curves),
        nfi=nfi,
        ffi=ffi,
    )


def format_scaling_study(result: ScalingStudyResult) -> str:
    """Render both Fig. 7 panels as processor-count series."""
    blocks = [
        format_series(result.nfi, result.processor_counts, "Fig. 7(a) NFI ACD vs processors", "processors"),
        format_series(result.ffi, result.processor_counts, "Fig. 7(b) FFI ACD vs processors", "processors"),
    ]
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(format_scaling_study(run_scaling_study()))


if __name__ == "__main__":  # pragma: no cover
    main()
