"""Particle → processor assignment in 3D (extension)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import IntArray
from repro.distributions.three_d import Particles3D
from repro.partition.chunking import chunk_assignment
from repro.sfc.curves3d import Curve3D, get_curve3d
from repro.util.validation import check_positive

__all__ = ["Assignment3D", "partition_particles3d"]


@dataclass(frozen=True)
class Assignment3D:
    """Particles ordered along a 3D SFC and chunked onto ranks."""

    particles: Particles3D
    keys: IntArray
    processor: IntArray
    num_processors: int
    _owner_cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def order(self) -> int:
        """Lattice order of the underlying particle set."""
        return self.particles.order

    @property
    def side(self) -> int:
        """Lattice side length."""
        return self.particles.side

    def owner_volume(self) -> IntArray:
        """Dense ``(side,)*3`` volume of owning ranks; ``-1`` marks empties."""
        if not self._owner_cache:
            vol = np.full((self.side,) * 3, -1, dtype=np.int64)
            vol[self.particles.x, self.particles.y, self.particles.z] = self.processor
            self._owner_cache.append(vol)
        return self._owner_cache[0]

    def particles_per_processor(self) -> IntArray:
        """Histogram of particle counts per rank."""
        return np.bincount(self.processor, minlength=self.num_processors).astype(np.int64)


def partition_particles3d(
    particles: Particles3D,
    particle_curve: Curve3D | str,
    num_processors: int,
) -> Assignment3D:
    """Order ``particles`` by a 3D SFC and chunk them onto ranks."""
    p = check_positive(num_processors, "num_processors")
    curve = (
        get_curve3d(particle_curve, particles.order)
        if isinstance(particle_curve, str)
        else particle_curve
    )
    if curve.order != particles.order:
        raise ValueError(
            f"curve order {curve.order} does not match particle lattice order {particles.order}"
        )
    keys = curve.encode(particles.x, particles.y, particles.z)
    perm = np.argsort(keys, kind="stable")
    ordered = Particles3D(
        particles.x[perm], particles.y[perm], particles.z[perm], particles.order
    )
    procs = chunk_assignment(len(ordered), p)
    return Assignment3D(ordered, keys[perm], procs, p)
