"""Contiguous chunking of an ordered particle set onto processors.

§IV steps 2 and 4: "Partition the particles into p consecutive chunks of
size n/p each; distribute chunk i to processor i."  When ``p`` does not
divide ``n`` the first ``n mod p`` chunks receive one extra particle, so
chunk sizes never differ by more than one.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["chunk_assignment", "chunk_bounds"]


def chunk_bounds(n: int, p: int) -> IntArray:
    """Start offsets of each chunk, as a ``(p + 1,)`` array of positions.

    Chunk ``i`` spans positions ``[bounds[i], bounds[i+1])`` of the
    SFC-ordered particle sequence.
    """
    n = check_nonnegative(n, "n")
    p = check_positive(p, "p")
    base, extra = divmod(n, p)
    sizes = np.full(p, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def chunk_assignment(n: int, p: int) -> IntArray:
    """Processor id of each position in the ordered particle sequence."""
    bounds = chunk_bounds(n, p)
    return np.repeat(np.arange(p, dtype=np.int64), np.diff(bounds))
