"""Particle-order SFCs: linearly ordering a particle set (§IV step 1)."""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve

__all__ = ["curve_keys", "order_particles"]


def curve_keys(particles: Particles, curve: SpaceFillingCurve | str) -> IntArray:
    """Curve index of each particle's cell under the particle-order SFC."""
    sfc = get_curve(curve, particles.order) if isinstance(curve, str) else curve
    if sfc.order != particles.order:
        raise ValueError(
            f"curve order {sfc.order} does not match particle lattice order {particles.order}"
        )
    return sfc.encode(particles.x, particles.y)


def order_particles(
    particles: Particles, curve: SpaceFillingCurve | str
) -> tuple[Particles, IntArray]:
    """Sort particles along the particle-order SFC.

    Returns the reordered :class:`Particles` and the curve keys aligned
    with it (strictly increasing, since cells are distinct).
    """
    keys = curve_keys(particles, curve)
    perm = np.argsort(keys, kind="stable")
    sorted_particles = Particles(particles.x[perm], particles.y[perm], particles.order)
    return sorted_particles, keys[perm]
