"""Particle-order SFCs: linearly ordering a particle set (§IV step 1)."""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve

__all__ = ["curve_keys", "order_particles"]


def curve_keys(particles: Particles, curve: SpaceFillingCurve | str) -> IntArray:
    """Curve index of each particle's cell under the particle-order SFC."""
    sfc = get_curve(curve, particles.order) if isinstance(curve, str) else curve
    if sfc.order != particles.order:
        raise ValueError(
            f"curve order {sfc.order} does not match particle lattice order {particles.order}"
        )
    return sfc.encode(particles.x, particles.y)


def order_particles(
    particles: Particles,
    curve: SpaceFillingCurve | str,
    *,
    duplicates: str = "raise",
) -> tuple[Particles, IntArray]:
    """Sort particles along the particle-order SFC.

    Returns the reordered :class:`Particles` and the curve keys aligned
    with it.  The keys are strictly increasing **only if** all particles
    occupy distinct cells — a property freshly sampled distributions
    guarantee but time-evolved sets may violate.  The quadtree occupancy
    pyramid and :meth:`Assignment.owner_grid` both assume at most one
    particle per cell, so duplicate keys are never passed through
    silently; the ``duplicates`` policy decides what happens instead:

    ``"raise"`` (default)
        Raise :class:`ValueError` naming the first colliding cell.
    ``"merge"``
        Collapse co-located particles to a single representative (the
        first in the stable sort order), restoring strictly increasing
        keys.  Event generation then sees each occupied cell once, which
        matches the FMM model's one-particle-per-finest-cell abstraction.
    """
    if duplicates not in ("raise", "merge"):
        raise ValueError(
            f"duplicates must be 'raise' or 'merge', got {duplicates!r}"
        )
    keys = curve_keys(particles, curve)
    perm = np.argsort(keys, kind="stable")
    sorted_keys = keys[perm]
    distinct = np.ones(sorted_keys.size, dtype=bool)
    distinct[1:] = sorted_keys[1:] != sorted_keys[:-1]
    if not distinct.all():
        if duplicates == "raise":
            clash = int(np.flatnonzero(~distinct)[0])
            i = perm[clash]
            raise ValueError(
                f"particles collide at cell ({int(particles.x[i])}, {int(particles.y[i])}) "
                f"(curve key {int(sorted_keys[clash])}): curve keys must be distinct; "
                "merge co-located particles (duplicates='merge') or resolve collisions "
                "during evolution (repro.dynamics.evolution.evolve_step)"
            )
        perm = perm[distinct]
        sorted_keys = sorted_keys[distinct]
    sorted_particles = Particles(particles.x[perm], particles.y[perm], particles.order)
    return sorted_particles, sorted_keys
