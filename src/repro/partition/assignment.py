"""End-to-end particle → processor assignment (§IV steps 1–4)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.partition.chunking import chunk_assignment
from repro.partition.ordering import order_particles
from repro.sfc.base import SpaceFillingCurve
from repro.util.validation import check_positive

__all__ = ["Assignment", "partition_particles"]


@dataclass(frozen=True)
class Assignment:
    """Particles ordered along a particle-order SFC and chunked onto ranks.

    Attributes
    ----------
    particles:
        The particle set sorted in curve order.
    keys:
        Curve index of each (sorted) particle; strictly increasing.
    processor:
        Owning processor rank of each (sorted) particle; non-decreasing.
    num_processors:
        Total rank count ``p`` (some ranks may own zero particles when
        ``p > n``).
    """

    particles: Particles
    keys: IntArray
    processor: IntArray
    num_processors: int
    _owner_cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def order(self) -> int:
        """Lattice order of the underlying particle set."""
        return self.particles.order

    @property
    def side(self) -> int:
        """Lattice side length."""
        return self.particles.side

    def owner_grid(self) -> IntArray:
        """Dense ``(side, side)`` grid of owning ranks; ``-1`` marks empty cells.

        The grid is computed once and cached (it is read by both the NFI
        and FFI models).
        """
        if not self._owner_cache:
            grid = np.full((self.side, self.side), -1, dtype=np.int64)
            grid[self.particles.x, self.particles.y] = self.processor
            self._owner_cache.append(grid)
        return self._owner_cache[0]

    def particles_per_processor(self) -> IntArray:
        """Histogram of particle counts per rank (length ``num_processors``)."""
        return np.bincount(self.processor, minlength=self.num_processors).astype(np.int64)


def partition_particles(
    particles: Particles,
    particle_curve: SpaceFillingCurve | str,
    num_processors: int,
    *,
    duplicates: str = "raise",
) -> Assignment:
    """Order ``particles`` by ``particle_curve`` and chunk them onto ranks.

    ``duplicates`` is forwarded to :func:`order_particles`: co-located
    particles (possible in time-evolved sets) either raise or are merged
    before chunking.  ``p > n`` is legal — trailing ranks simply own
    zero particles and generate no communication events.
    """
    p = check_positive(num_processors, "num_processors")
    ordered, keys = order_particles(particles, particle_curve, duplicates=duplicates)
    procs = chunk_assignment(len(ordered), p)
    return Assignment(ordered, keys, procs, p)
