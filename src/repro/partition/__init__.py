"""Particle ordering and chunk distribution onto processors."""

from repro.partition.assignment import Assignment, partition_particles
from repro.partition.assignment3d import Assignment3D, partition_particles3d
from repro.partition.chunking import chunk_assignment, chunk_bounds
from repro.partition.ordering import curve_keys, order_particles

__all__ = [
    "Assignment",
    "partition_particles",
    "Assignment3D",
    "partition_particles3d",
    "chunk_assignment",
    "chunk_bounds",
    "curve_keys",
    "order_particles",
]
