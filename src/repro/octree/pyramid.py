"""Representative pyramids over an owner volume (3D sibling of
:mod:`repro.quadtree.pyramid`)."""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.quadtree.pyramid import EMPTY
from repro.util.bits import is_power_of_two

__all__ = ["EMPTY", "representative_pyramid3d", "occupancy_pyramid3d"]


def _check_volume(owner: IntArray) -> IntArray:
    vol = np.asarray(owner)
    if vol.ndim != 3 or len({*vol.shape}) != 1:
        raise ValueError(f"owner volume must be a cube, got shape {vol.shape}")
    if not is_power_of_two(vol.shape[0]):
        raise ValueError(f"owner volume side must be a power of two, got {vol.shape[0]}")
    return vol


def representative_pyramid3d(owner_volume: IntArray) -> list[IntArray]:
    """Min-rank reduction pyramid: ``levels[l]`` has shape ``(2**l,)*3``.

    ``-1`` entries of the owner volume mark empty cells and become
    :data:`EMPTY`; entry ``(cx, cy, cz)`` of ``levels[l]`` is the minimum
    rank owning a particle in that level-``l`` octree cell.
    """
    vol = _check_volume(owner_volume).astype(np.int64, copy=True)
    vol[vol < 0] = EMPTY
    levels = [vol]
    while levels[-1].shape[0] > 1:
        g = levels[-1]
        half = g.shape[0] // 2
        levels.append(
            g.reshape(half, 2, half, 2, half, 2).min(axis=(1, 3, 5))
        )
    levels.reverse()
    return levels


def occupancy_pyramid3d(owner_volume: IntArray) -> list[IntArray]:
    """Particle-count pyramid over the octree cells."""
    vol = _check_volume(owner_volume)
    counts = (vol >= 0).astype(np.int64)
    levels = [counts]
    while levels[-1].shape[0] > 1:
        g = levels[-1]
        half = g.shape[0] // 2
        levels.append(g.reshape(half, 2, half, 2, half, 2).sum(axis=(1, 3, 5)))
    levels.reverse()
    return levels
