"""Spatial octree substrate for the 3D FMM communication model (extension)."""

from repro.octree.cells import children_of3d, neighbor_offsets3d, parent_of3d
from repro.octree.interaction import interaction_list_cells3d, interaction_offsets3d
from repro.octree.pyramid import EMPTY, occupancy_pyramid3d, representative_pyramid3d

__all__ = [
    "parent_of3d",
    "children_of3d",
    "neighbor_offsets3d",
    "interaction_offsets3d",
    "interaction_list_cells3d",
    "EMPTY",
    "representative_pyramid3d",
    "occupancy_pyramid3d",
]
