"""3D FMM interaction lists (octree sibling of
:mod:`repro.quadtree.interaction`).

In 3D a cell has at most 189 interaction-list peers: the 26 parent
neighbours contribute 8 children each (208 candidates) of which 19 are
adjacent to the cell.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray

__all__ = ["interaction_offsets3d", "interaction_list_cells3d"]


def interaction_offsets3d(parity_x: int, parity_y: int, parity_z: int) -> IntArray:
    """Offsets from a cell with the given parity to its interaction list."""
    px, py, pz = int(parity_x) & 1, int(parity_y) & 1, int(parity_z) & 1
    offsets = []
    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            for oz in (-1, 0, 1):
                if ox == oy == oz == 0:
                    continue  # the parent's own children are all adjacent
                for ix in (0, 1):
                    for iy in (0, 1):
                        for iz in (0, 1):
                            dx = 2 * ox + ix - px
                            dy = 2 * oy + iy - py
                            dz = 2 * oz + iz - pz
                            if max(abs(dx), abs(dy), abs(dz)) > 1:
                                offsets.append((dx, dy, dz))
    return np.asarray(offsets, dtype=np.int64)


def interaction_list_cells3d(cx: int, cy: int, cz: int, level: int) -> IntArray:
    """Explicit interaction list of one octree cell (reference path)."""
    side = 1 << level
    if not (0 <= cx < side and 0 <= cy < side and 0 <= cz < side):
        raise ValueError(f"cell ({cx}, {cy}, {cz}) outside level-{level} grid")
    out = []
    px, py, pz = cx >> 1, cy >> 1, cz >> 1
    parent_side = side >> 1
    for nx in (px - 1, px, px + 1):
        for ny in (py - 1, py, py + 1):
            for nz in (pz - 1, pz, pz + 1):
                if not (
                    0 <= nx < parent_side
                    and 0 <= ny < parent_side
                    and 0 <= nz < parent_side
                ):
                    continue
                for ix in (0, 1):
                    for iy in (0, 1):
                        for iz in (0, 1):
                            tx, ty, tz = 2 * nx + ix, 2 * ny + iy, 2 * nz + iz
                            if max(abs(tx - cx), abs(ty - cy), abs(tz - cz)) > 1:
                                out.append((tx, ty, tz))
    return np.asarray(out, dtype=np.int64).reshape(-1, 3)
