"""Cell arithmetic for the spatial octree over a ``2**k`` cube lattice.

3D sibling of :mod:`repro.quadtree.cells` (future-work item ii).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray

__all__ = ["parent_of3d", "children_of3d", "neighbor_offsets3d"]


def parent_of3d(cx, cy, cz) -> tuple[IntArray, IntArray, IntArray]:
    """Coordinates of the parent cell one level coarser."""
    cx = np.asarray(cx, dtype=np.int64)
    cy = np.asarray(cy, dtype=np.int64)
    cz = np.asarray(cz, dtype=np.int64)
    return cx >> 1, cy >> 1, cz >> 1


def children_of3d(cx: int, cy: int, cz: int) -> IntArray:
    """The eight child cells one level finer, as an ``(8, 3)`` array."""
    bits = np.array(
        [[i >> 2 & 1, i >> 1 & 1, i & 1] for i in range(8)], dtype=np.int64
    )
    return bits + np.array([2 * cx, 2 * cy, 2 * cz], dtype=np.int64)


def neighbor_offsets3d(radius: int = 1, metric: str = "chebyshev") -> IntArray:
    """All non-zero 3D offsets within ``radius`` under the given metric.

    ``"chebyshev"`` gives the face/edge/corner neighbourhood (26 cells
    for ``radius=1``); ``"manhattan"`` the 6-cell cross for ``radius=1``.
    """
    r = int(radius)
    if r < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    span = np.arange(-r, r + 1, dtype=np.int64)
    dx, dy, dz = np.meshgrid(span, span, span, indexing="ij")
    offs = np.stack([dx.ravel(), dy.ravel(), dz.ravel()], axis=1)
    if metric == "chebyshev":
        keep = np.abs(offs).max(axis=1) >= 1
    elif metric == "manhattan":
        dist = np.abs(offs).sum(axis=1)
        keep = (dist >= 1) & (dist <= r)
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'chebyshev' or 'manhattan'")
    return offs[keep]
