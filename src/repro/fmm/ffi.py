"""Far-field interaction (FFI) communication events (§III, §IV).

The far field decomposes into three communication phases over the
spatial quadtree:

* **Interpolation** — upward accumulation: each non-empty cell's
  representative sends to its parent cell's representative.
* **Anterpolation** — downward accumulation: the same parent → child
  transfers in the opposite direction.
* **Interaction list** — at every level, each non-empty cell's
  representative exchanges with the representative of every non-empty
  cell in its interaction list (children of the parent's neighbours that
  are not adjacent; ≤ 27 peers in 2D).

Cell representatives are the lowest owning ranks
(:mod:`repro.quadtree.pyramid`).  Interaction-list pairs are counted
once per *ordered* pair — each cell walks its own list, exactly as §IV
step 9 describes — so every unordered pair appears twice, which leaves
the average unchanged.

Granularity
-----------
The paper describes the far field twice: §III walks quadtree *cells*
(every non-empty cell communicates with its parent and its interaction
list), while §IV steps 8–9 phrase the same traffic per *processor*
("construct the interaction list for each processor at each level").
``granularity="cell"`` (default) counts one event per cell pair;
``granularity="processor"`` deduplicates to one event per distinct
(source rank, destination rank) pair per level — the same messages, but
coarse levels carry relatively more weight.  The ablation study
(:mod:`repro.experiments.ablation`) quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.partition.assignment import Assignment
from repro.quadtree.interaction import interaction_offsets
from repro.quadtree.pyramid import EMPTY, representative_pyramid

__all__ = ["FfiEvents", "ffi_events", "interpolation_events", "interaction_events"]


@dataclass(frozen=True)
class FfiEvents:
    """The three far-field phases, kept separate for per-phase analysis."""

    interpolation: CommunicationEvents
    anterpolation: CommunicationEvents
    interaction: CommunicationEvents

    def combined(self) -> CommunicationEvents:
        """All far-field events merged into one container."""
        out = CommunicationEvents(component="ffi")
        out.extend(self.interpolation)
        out.extend(self.anterpolation)
        out.extend(self.interaction)
        return out

    def as_mapping(self) -> dict[str, CommunicationEvents]:
        """Phase-name → events mapping (for breakdown reporting)."""
        return {
            "interpolation": self.interpolation,
            "anterpolation": self.anterpolation,
            "interaction": self.interaction,
        }


def _check_granularity(granularity: str) -> bool:
    if granularity not in ("cell", "processor"):
        raise ValueError(
            f"unknown granularity {granularity!r}; use 'cell' or 'processor'"
        )
    return granularity == "processor"


def _dedup(src: IntArray, dst: IntArray) -> tuple[IntArray, IntArray]:
    """Collapse to distinct (src, dst) pairs."""
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


def interpolation_events(
    pyramid: list[IntArray], granularity: str = "cell"
) -> CommunicationEvents:
    """Child-representative → parent-representative transfers, all levels."""
    per_processor = _check_granularity(granularity)
    events = CommunicationEvents(component="interpolation")
    for level in range(len(pyramid) - 1, 0, -1):
        child, parent = pyramid[level], pyramid[level - 1]
        cx, cy = np.nonzero(child != EMPTY)
        if cx.size == 0:
            continue
        src, dst = child[cx, cy], parent[cx >> 1, cy >> 1]
        if per_processor:
            src, dst = _dedup(src, dst)
        events.add(src, dst)
    return events


def interaction_events(
    pyramid: list[IntArray], granularity: str = "cell"
) -> CommunicationEvents:
    """Interaction-list exchanges at every level (ordered pairs).

    Levels 0 and 1 contribute nothing: the root has no parent and the
    level-1 cells' parent (the root) has no neighbours.
    """
    per_processor = _check_granularity(granularity)
    events = CommunicationEvents(component="interaction")
    for level in range(2, len(pyramid)):
        grid = pyramid[level]
        side = grid.shape[0]
        occ_x, occ_y = np.nonzero(grid != EMPTY)
        if occ_x.size == 0:
            continue
        src_all = grid[occ_x, occ_y]
        level_chunks: list[IntArray] = []
        for px in (0, 1):
            for py in (0, 1):
                sel = ((occ_x & 1) == px) & ((occ_y & 1) == py)
                if not np.any(sel):
                    continue
                xs, ys, srcs = occ_x[sel], occ_y[sel], src_all[sel]
                for dx, dy in interaction_offsets(px, py):
                    tx, ty = xs + dx, ys + dy
                    inb = (tx >= 0) & (tx < side) & (ty >= 0) & (ty < side)
                    if not np.any(inb):
                        continue
                    dsts = grid[tx[inb], ty[inb]]
                    occupied = dsts != EMPTY
                    src, dst = srcs[inb][occupied], dsts[occupied]
                    if per_processor:
                        level_chunks.append(np.stack([src, dst], axis=1))
                    else:
                        events.add(src, dst)
        if per_processor and level_chunks:
            pairs = np.unique(np.concatenate(level_chunks), axis=0)
            events.add(pairs[:, 0], pairs[:, 1])
    return events


def ffi_events(assignment: Assignment, granularity: str = "cell") -> FfiEvents:
    """All far-field communications for a partitioned input (§IV steps 5–10)."""
    pyramid = representative_pyramid(assignment.owner_grid())
    interp = interpolation_events(pyramid, granularity)
    anterp = interp.reversed()
    anterp.component = "anterpolation"
    inter = interaction_events(pyramid, granularity)
    return FfiEvents(interpolation=interp, anterpolation=anterp, interaction=inter)
