"""Quadrant log-tree accumulation — the third reading of §IV's far field.

§IV steps 5–6 describe the upward pass as: "For each quadrant containing
at least one particle, compute an ordered list of all of the processors
that contain at least one particle in that quadrant; construct a
log-tree (quadtree in 2D) connecting the processors in each quadrant."
Taken literally, the gather at every resolution level runs over
*processor lists*, not over cells: the processors owning particles in a
cell form an ordered list, a 4-ary tree is built over that list, and
each tree edge is one communication (rooted at the lowest rank, which
matches §III's "the lowest ranked processor in a quadrant will collect
the data").

This module implements that reading; together with the cell-granular
(§III) and processor-deduplicated interpolations of
:mod:`repro.fmm.ffi` it completes the three defensible interpretations,
which the ablation study compares.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.partition.assignment import Assignment

__all__ = ["quadrant_tree_events", "arity_tree_edges"]


def arity_tree_edges(ordered: IntArray, arity: int = 4) -> tuple[IntArray, IntArray]:
    """Edges of a complete ``arity``-ary tree over an ordered value list.

    Element ``j > 0`` is the child of element ``(j - 1) // arity``; the
    root is element 0 (for an ascending rank list: the lowest rank).
    Returns ``(children, parents)`` value arrays with ``len - 1`` edges.
    """
    if arity < 2:
        raise ValueError(f"arity must be >= 2, got {arity}")
    m = ordered.shape[0]
    if m <= 1:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    j = np.arange(1, m, dtype=np.int64)
    return ordered[j], ordered[(j - 1) // arity]


def quadrant_tree_events(
    assignment: Assignment, arity: int = 4
) -> CommunicationEvents:
    """Upward accumulation via per-cell processor log-trees, all levels.

    For every quadtree level and every non-empty cell at that level, the
    distinct processors owning particles in the cell are listed in rank
    order and connected by an ``arity``-ary tree; each tree edge
    contributes one child → parent event.  The per-level event total is
    therefore ``sum_cells (processors_in_cell - 1)``.
    """
    particles = assignment.particles
    procs = assignment.processor
    k = assignment.order
    events = CommunicationEvents(component="quadrant-tree")
    for level in range(k, -1, -1):
        shift = k - level
        cells = ((particles.x >> shift).astype(np.int64) << level) | (
            particles.y >> shift
        )
        # distinct (cell, processor) pairs, sorted by cell then rank
        pairs = np.unique(np.stack([cells, procs], axis=1), axis=0)
        cell_ids, starts = np.unique(pairs[:, 0], return_index=True)
        bounds = np.append(starts, pairs.shape[0])
        j = np.arange(pairs.shape[0], dtype=np.int64)
        group = np.searchsorted(bounds, j, side="right") - 1
        local = j - starts[group]
        has_parent = local > 0
        children = pairs[has_parent, 1]
        parent_pos = starts[group[has_parent]] + (local[has_parent] - 1) // arity
        parents = pairs[parent_pos, 1]
        events.add(children, parents)
    return events
