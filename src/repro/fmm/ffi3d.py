"""Far-field interaction events in 3D (extension).

The octree analogue of :mod:`repro.fmm.ffi`: interpolation and
anterpolation walk the representative pyramid, and every non-empty cell
exchanges with its (up to 189-member) 3D interaction list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.octree.interaction import interaction_offsets3d
from repro.octree.pyramid import EMPTY, representative_pyramid3d
from repro.partition.assignment3d import Assignment3D

__all__ = ["FfiEvents3D", "ffi_events3d", "interpolation_events3d", "interaction_events3d"]


@dataclass(frozen=True)
class FfiEvents3D:
    """The three far-field phases of the 3D model."""

    interpolation: CommunicationEvents
    anterpolation: CommunicationEvents
    interaction: CommunicationEvents

    def as_mapping(self) -> dict[str, CommunicationEvents]:
        """Phase-name → events mapping (for breakdown reporting)."""
        return {
            "interpolation": self.interpolation,
            "anterpolation": self.anterpolation,
            "interaction": self.interaction,
        }


def interpolation_events3d(pyramid: list[IntArray]) -> CommunicationEvents:
    """Child-representative → parent-representative transfers, all levels."""
    events = CommunicationEvents(component="interpolation")
    for level in range(len(pyramid) - 1, 0, -1):
        child, parent = pyramid[level], pyramid[level - 1]
        cx, cy, cz = np.nonzero(child != EMPTY)
        if cx.size == 0:
            continue
        events.add(child[cx, cy, cz], parent[cx >> 1, cy >> 1, cz >> 1])
    return events


def interaction_events3d(pyramid: list[IntArray]) -> CommunicationEvents:
    """Interaction-list exchanges at every octree level (ordered pairs)."""
    events = CommunicationEvents(component="interaction")
    for level in range(2, len(pyramid)):
        grid = pyramid[level]
        side = grid.shape[0]
        ox, oy, oz = np.nonzero(grid != EMPTY)
        if ox.size == 0:
            continue
        src_all = grid[ox, oy, oz]
        for px in (0, 1):
            for py in (0, 1):
                for pz in (0, 1):
                    sel = ((ox & 1) == px) & ((oy & 1) == py) & ((oz & 1) == pz)
                    if not np.any(sel):
                        continue
                    xs, ys, zs = ox[sel], oy[sel], oz[sel]
                    srcs = src_all[sel]
                    for dx, dy, dz in interaction_offsets3d(px, py, pz):
                        tx, ty, tz = xs + dx, ys + dy, zs + dz
                        inb = (
                            (tx >= 0)
                            & (tx < side)
                            & (ty >= 0)
                            & (ty < side)
                            & (tz >= 0)
                            & (tz < side)
                        )
                        if not np.any(inb):
                            continue
                        dsts = grid[tx[inb], ty[inb], tz[inb]]
                        occupied = dsts != EMPTY
                        events.add(srcs[inb][occupied], dsts[occupied])
    return events


def ffi_events3d(assignment: Assignment3D) -> FfiEvents3D:
    """All 3D far-field communications for a partitioned input."""
    pyramid = representative_pyramid3d(assignment.owner_volume())
    interp = interpolation_events3d(pyramid)
    anterp = interp.reversed()
    anterp.component = "anterpolation"
    inter = interaction_events3d(pyramid)
    return FfiEvents3D(interpolation=interp, anterpolation=anterp, interaction=inter)
