"""Near-field interaction events in 3D (extension).

Identical structure to :mod:`repro.fmm.nfi`, with the stencil shifts
running over a dense 3D owner volume.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.octree.cells import neighbor_offsets3d
from repro.partition.assignment3d import Assignment3D

__all__ = ["nfi_events3d", "shifted_occupied_pairs3d"]


def shifted_occupied_pairs3d(
    owner_volume: IntArray, dx: int, dy: int, dz: int
) -> tuple[IntArray, IntArray]:
    """Owner pairs ``(vol[c], vol[c + offset])`` over occupied cells."""
    side = owner_volume.shape[0]
    if max(abs(dx), abs(dy), abs(dz)) >= side:
        empty = np.empty(0, dtype=owner_volume.dtype)
        return empty, empty.copy()
    lo = [max(0, -d) for d in (dx, dy, dz)]
    hi = [side - max(0, d) for d in (dx, dy, dz)]
    a = owner_volume[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]]
    b = owner_volume[
        lo[0] + dx : hi[0] + dx, lo[1] + dy : hi[1] + dy, lo[2] + dz : hi[2] + dz
    ]
    both = (a >= 0) & (b >= 0)
    return a[both], b[both]


def nfi_events3d(
    assignment: Assignment3D,
    radius: int = 1,
    metric: str = "chebyshev",
) -> CommunicationEvents:
    """All 3D near-field neighbour communications (one per unordered pair)."""
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    vol = assignment.owner_volume()
    events = CommunicationEvents(component="nfi3d")
    for dx, dy, dz in neighbor_offsets3d(radius, metric):
        if not (dx > 0 or (dx == 0 and (dy > 0 or (dy == 0 and dz > 0)))):
            continue  # count each unordered pair once
        src, dst = shifted_occupied_pairs3d(vol, int(dx), int(dy), int(dz))
        events.add(src, dst)
    return events
