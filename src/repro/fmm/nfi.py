"""Near-field interaction (NFI) communication events (§III, §IV).

Every particle must read all particles within radius ``r`` of its cell;
each such pair induces one communication between the owning processors
(distance possibly zero when both particles share a processor).  §III
uses the edge/corner (Chebyshev) neighbourhood — "the number of nearest
neighbors which share an edge/corner with a cell is bounded by 8
(corresponding to r = 1)".

The generator works entirely on the dense owner grid: for each offset of
the neighbourhood stencil it aligns the grid with a shifted copy of
itself and keeps positions where both cells are occupied, so the cost is
``O(|stencil| * side**2)`` NumPy work with no Python-level per-particle
loop.  Each unordered neighbour pair is counted exactly once (the
stencil is restricted to a half-plane); the ACD is invariant to this
choice and the companion ordered-pair count is simply twice ours.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.partition.assignment import Assignment
from repro.quadtree.cells import neighbor_offsets

__all__ = ["nfi_events", "shifted_occupied_pairs"]


def shifted_occupied_pairs(
    owner_grid: IntArray, dx: int, dy: int
) -> tuple[IntArray, IntArray]:
    """Owner pairs ``(grid[c], grid[c + (dx, dy)])`` over occupied cells.

    Alignment is done with array views, so no index arrays are built for
    the (usually dominant) unoccupied portion of the lattice.
    """
    side = owner_grid.shape[0]
    if abs(dx) >= side or abs(dy) >= side:
        empty = np.empty(0, dtype=owner_grid.dtype)
        return empty, empty.copy()
    ax0, ax1 = max(0, -dx), side - max(0, dx)
    ay0, ay1 = max(0, -dy), side - max(0, dy)
    a = owner_grid[ax0:ax1, ay0:ay1]
    b = owner_grid[ax0 + dx : ax1 + dx, ay0 + dy : ay1 + dy]
    both = (a >= 0) & (b >= 0)
    return a[both], b[both]


def nfi_events(
    assignment: Assignment,
    radius: int = 1,
    metric: str = "chebyshev",
) -> CommunicationEvents:
    """All near-field neighbour communications for a partitioned input.

    Parameters
    ----------
    assignment:
        The SFC-ordered, chunked particle set
        (:func:`repro.partition.partition_particles`).
    radius:
        Neighbourhood radius ``r`` (default 1, the paper's standard).
    metric:
        ``"chebyshev"`` (paper's NFI neighbourhood) or ``"manhattan"``.

    Returns
    -------
    :class:`~repro.fmm.events.CommunicationEvents` with one event per
    unordered pair of neighbouring particles.
    """
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    grid = assignment.owner_grid()
    events = CommunicationEvents(component="nfi")
    for dx, dy in neighbor_offsets(radius, metric):
        if not (dx > 0 or (dx == 0 and dy > 0)):
            continue  # count each unordered pair once
        src, dst = shifted_occupied_pairs(grid, int(dx), int(dy))
        events.add(src, dst)
    return events
