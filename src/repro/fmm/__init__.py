"""Fast Multipole Method communication model (near field + far field)."""

from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.fmm.ffi import FfiEvents, ffi_events, interaction_events, interpolation_events
from repro.fmm.ffi3d import FfiEvents3D, ffi_events3d
from repro.fmm.model import FmmCommunicationModel, FmmReport
from repro.fmm.model3d import FmmCommunicationModel3D
from repro.fmm.nfi3d import nfi_events3d, shifted_occupied_pairs3d
from repro.fmm.nfi import nfi_events, shifted_occupied_pairs
from repro.fmm.quadrant_tree import arity_tree_edges, quadrant_tree_events
from repro.fmm.volume import weighted_ffi_events

__all__ = [
    "CommunicationEvents",
    "PairHistogram",
    "nfi_events",
    "shifted_occupied_pairs",
    "FfiEvents",
    "ffi_events",
    "interpolation_events",
    "interaction_events",
    "FmmCommunicationModel",
    "FmmReport",
    "FfiEvents3D",
    "ffi_events3d",
    "nfi_events3d",
    "shifted_occupied_pairs3d",
    "FmmCommunicationModel3D",
    "quadrant_tree_events",
    "arity_tree_edges",
    "weighted_ffi_events",
]
