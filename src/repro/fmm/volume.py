"""Data-volume-weighted FMM communication (future-work item i).

§VIII of the paper lists "the impact of data volume ... on communication
efficiency, and ... the modeling of the ACD metric" as future work.  The
plain ACD counts every message equally; this module attaches volumes so
the metric becomes *average distance per unit of data moved*.

Two far-field volume models are provided:

* ``"multipole"`` — every far-field transfer carries a fixed-size
  multipole expansion (``expansion_size`` units).  This is how a real
  FMM behaves: the expansion order, not the particle count, fixes the
  message size, so the weighted ACD equals the unweighted one.
* ``"aggregate"`` — a transfer out of a cell carries one unit per
  particle the cell contains (a tree-code-like upper bound where source
  data is shipped verbatim).  Coarse-level messages become heavy, which
  shifts weight onto exactly the long-distance transfers and stresses
  the topology far more than the unweighted metric.

Near-field messages always weigh 1 per particle pair (each pair
exchanges one particle record), matching the unweighted NFI.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.fmm.events import CommunicationEvents
from repro.fmm.ffi import FfiEvents
from repro.partition.assignment import Assignment
from repro.quadtree.interaction import interaction_offsets
from repro.quadtree.pyramid import EMPTY, occupancy_pyramid, representative_pyramid

__all__ = ["weighted_ffi_events"]


def weighted_ffi_events(
    assignment: Assignment,
    volume_model: str = "aggregate",
    expansion_size: int = 1,
) -> FfiEvents:
    """Far-field events with per-message data volumes attached.

    Parameters
    ----------
    volume_model:
        ``"multipole"`` (fixed ``expansion_size`` per transfer) or
        ``"aggregate"`` (volume = particle count of the sending cell).
    expansion_size:
        Units carried by one multipole transfer (``"multipole"`` only).
    """
    if volume_model not in ("multipole", "aggregate"):
        raise ValueError(
            f"unknown volume_model {volume_model!r}; use 'multipole' or 'aggregate'"
        )
    owner = assignment.owner_grid()
    pyramid = representative_pyramid(owner)
    occupancy = occupancy_pyramid(owner)

    def cell_volume(level: int, cx: IntArray, cy: IntArray) -> IntArray:
        if volume_model == "multipole":
            return np.full(cx.shape, expansion_size, dtype=np.int64)
        return occupancy[level][cx, cy]

    interp = CommunicationEvents(component="interpolation")
    for level in range(len(pyramid) - 1, 0, -1):
        child, parent = pyramid[level], pyramid[level - 1]
        cx, cy = np.nonzero(child != EMPTY)
        if cx.size == 0:
            continue
        interp.add(child[cx, cy], parent[cx >> 1, cy >> 1], cell_volume(level, cx, cy))

    anterp = interp.reversed()
    anterp.component = "anterpolation"

    inter = CommunicationEvents(component="interaction")
    for level in range(2, len(pyramid)):
        grid = pyramid[level]
        side = grid.shape[0]
        occ_x, occ_y = np.nonzero(grid != EMPTY)
        if occ_x.size == 0:
            continue
        src_all = grid[occ_x, occ_y]
        vol_all = cell_volume(level, occ_x, occ_y)
        for px in (0, 1):
            for py in (0, 1):
                sel = ((occ_x & 1) == px) & ((occ_y & 1) == py)
                if not np.any(sel):
                    continue
                xs, ys = occ_x[sel], occ_y[sel]
                srcs, vols = src_all[sel], vol_all[sel]
                for dx, dy in interaction_offsets(px, py):
                    tx, ty = xs + dx, ys + dy
                    inb = (tx >= 0) & (tx < side) & (ty >= 0) & (ty < side)
                    if not np.any(inb):
                        continue
                    dsts = grid[tx[inb], ty[inb]]
                    occupied = dsts != EMPTY
                    inter.add(
                        srcs[inb][occupied], dsts[occupied], vols[inb][occupied]
                    )
    return FfiEvents(interpolation=interp, anterpolation=anterp, interaction=inter)
