"""High-level 3D FMM communication model (extension)."""

from __future__ import annotations

from repro.distributions.three_d import Particles3D
from repro.fmm.events import CommunicationEvents
from repro.fmm.ffi3d import FfiEvents3D, ffi_events3d
from repro.fmm.model import FmmReport
from repro.fmm.nfi3d import nfi_events3d
from repro.metrics.acd import acd_breakdown, compute_acd
from repro.partition.assignment3d import Assignment3D, partition_particles3d
from repro.topology.base import Topology

__all__ = ["FmmCommunicationModel3D"]


class FmmCommunicationModel3D:
    """The paper's FMM communication abstraction lifted to 3D.

    API-compatible with :class:`repro.fmm.FmmCommunicationModel`, but
    consumes :class:`~repro.distributions.three_d.Particles3D` and a 3D
    particle-order curve, and reports octree-based far-field traffic.
    """

    def __init__(
        self,
        topology: Topology,
        particle_curve: str = "hilbert3d",
        radius: int = 1,
        nfi_metric: str = "chebyshev",
    ):
        self.topology = topology
        self.particle_curve = particle_curve
        self.radius = int(radius)
        self.nfi_metric = nfi_metric

    def assign(self, particles: Particles3D) -> Assignment3D:
        """Order and chunk the particles onto the network's ranks."""
        return partition_particles3d(
            particles, self.particle_curve, self.topology.num_processors
        )

    def near_field_events(self, assignment: Assignment3D) -> CommunicationEvents:
        """Neighbour-pair communications within the 3D radius."""
        return nfi_events3d(assignment, radius=self.radius, metric=self.nfi_metric)

    def far_field_events(self, assignment: Assignment3D) -> FfiEvents3D:
        """Octree accumulations + 3D interaction-list exchanges."""
        return ffi_events3d(assignment)

    def evaluate(self, particles: Particles3D) -> FmmReport:
        """Run the full 3D pipeline and report per-phase ACD values."""
        assignment = self.assign(particles)
        nfi = compute_acd(self.near_field_events(assignment), self.topology)
        ffi = acd_breakdown(self.far_field_events(assignment).as_mapping(), self.topology)
        return FmmReport(nfi=nfi, ffi=ffi)
