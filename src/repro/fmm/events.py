"""Communication-event containers.

A :class:`CommunicationEvents` instance is a multiset of point-to-point
communications — ``(source rank, destination rank)`` pairs — produced by
a model (FMM near/far field, a collective primitive, ...).  Events are
stored as a list of array chunks so million-event models never pay for a
monolithic reallocation, and metric evaluation can stream chunk by
chunk.

Events may optionally carry integer *weights* (message sizes in
arbitrary volume units); a weighted event counts ``w`` times toward the
ACD, which turns the metric into "average distance per unit of data
moved" — the data-volume refinement §VIII lists as future work.
Unweighted chunks behave as weight 1 throughout.

:meth:`CommunicationEvents.compact` collapses the multiset into a
:class:`PairHistogram` — the aggregated weight of every distinct
``(src, dst)`` rank pair.  The histogram determines every metric that
only looks at endpoints (the ACD in particular) and is bounded by
``p**2`` entries regardless of how many million events produced it,
which makes it the natural artifact to cache and share when the same
event stream is evaluated against many networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._typing import IntArray
from repro.runtime import runtime_config
from repro.util.validation import as_index_array

__all__ = ["CommunicationEvents", "PairHistogram"]

#: Largest dense ``p**2`` scratch table ``compact`` will allocate (elements)
#: when no memory budget is configured; beyond this the sort-based sparse
#: path is used.  Both paths produce the identical histogram.
_DENSE_COMPACT_CELLS = 1 << 22


def _dense_compact_cells() -> int:
    """The dense-scratch cutoff in effect for this ``compact`` call.

    With :attr:`repro.runtime.RuntimeConfig.memory_budget` configured the
    cutoff is derived from it — the dense path's scratch is one float64
    ``np.bincount`` table, 8 bytes per ``p**2`` cell — so a
    memory-bounded run never allocates a rank-squared table beyond its
    budget.  Unconfigured runs keep the historical default.  Either way
    the two compaction paths stay bit-identical; only the crossover
    moves.
    """
    budget = runtime_config().memory_budget
    if budget is None:
        return _DENSE_COMPACT_CELLS
    return max(1, budget // 8)


@dataclass(frozen=True)
class PairHistogram:
    """Aggregated event weight per distinct ``(src, dst)`` rank pair.

    Entries are sorted by the flattened key ``src * p + dst`` and carry
    strictly positive integer weights, so two histograms built from the
    same multiset — in any chunk order, by either compaction path — are
    bit-identical.  All ACD arithmetic on a histogram stays in integers,
    which keeps it exactly equivalent to streaming over the raw events.

    Attributes
    ----------
    src, dst:
        The distinct communicating rank pairs (``int64``, equal length).
    weights:
        Total event weight per pair (``int64``, all ``> 0``).
    num_processors:
        The rank space ``p`` the pairs live in (flattening base).
    num_events:
        Number of raw events the histogram was compacted from.
    """

    src: IntArray
    dst: IntArray
    weights: IntArray
    num_processors: int
    num_events: int

    @property
    def total_weight(self) -> int:
        """Sum of all pair weights (= raw event count when unweighted)."""
        return int(self.weights.sum()) if self.weights.size else 0

    @property
    def num_pairs(self) -> int:
        """Number of distinct communicating rank pairs."""
        return int(self.src.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the three entry arrays."""
        return int(self.src.nbytes + self.dst.nbytes + self.weights.nbytes)

    def flat_keys(self) -> IntArray:
        """The flattened ``src * p + dst`` keys (row-major ``p x p`` index)."""
        return self.src * self.num_processors + self.dst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PairHistogram(pairs={self.num_pairs}, events={self.num_events}, "
            f"p={self.num_processors})"
        )


class CommunicationEvents:
    """A multiset of point-to-point communications between ranks.

    Parameters
    ----------
    component:
        Optional label naming which phase of an algorithm produced these
        events (e.g. ``"interpolation"``).
    """

    def __init__(self, component: str = ""):
        self.component = component
        self._chunks: list[tuple[IntArray, IntArray, IntArray | None]] = []
        self._count = 0
        self._weight = 0

    # ------------------------------------------------------------------
    def add(self, src, dst, weights=None) -> None:
        """Append a chunk of events (equal-length rank arrays or scalars).

        ``weights`` optionally assigns a non-negative integer volume to
        each event; omitted weights count as 1.
        """
        s = np.atleast_1d(as_index_array(src, "src"))
        d = np.atleast_1d(as_index_array(dst, "dst"))
        if s.shape != d.shape or s.ndim != 1:
            raise ValueError(
                f"src and dst must be equal-length 1D arrays, got {s.shape} vs {d.shape}"
            )
        w: IntArray | None = None
        if weights is not None:
            w = np.atleast_1d(as_index_array(weights, "weights"))
            if w.shape != s.shape:
                raise ValueError(
                    f"weights must match src length, got {w.shape} vs {s.shape}"
                )
            if w.size and w.min() < 0:
                raise ValueError("weights must be non-negative")
        if s.size:
            self._chunks.append((s, d, w))
            self._count += int(s.size)
            self._weight += int(w.sum()) if w is not None else int(s.size)

    def extend(self, other: "CommunicationEvents") -> None:
        """Append every chunk of ``other`` (labels are not merged)."""
        for s, d, w in other.iter_weighted_chunks():
            self.add(s, d, w)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def total_weight(self) -> int:
        """Sum of event weights (equals ``len(self)`` when unweighted)."""
        return self._weight

    def iter_chunks(self) -> Iterator[tuple[IntArray, IntArray]]:
        """Yield the stored ``(src, dst)`` chunks without copying."""
        for s, d, _ in self._chunks:
            yield s, d

    def iter_weighted_chunks(self) -> Iterator[tuple[IntArray, IntArray, IntArray | None]]:
        """Yield ``(src, dst, weights_or_None)`` chunks without copying."""
        yield from self._chunks

    def pairs(self) -> tuple[IntArray, IntArray]:
        """Concatenate all chunks into two flat arrays (copies)."""
        if not self._chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        src = np.concatenate([s for s, _, _ in self._chunks])
        dst = np.concatenate([d for _, d, _ in self._chunks])
        return src, dst

    def reversed(self) -> "CommunicationEvents":
        """A new container with every event's direction flipped.

        The anterpolation phase of the FMM is exactly the interpolation
        phase reversed (§IV step 7), so this is cheap by construction.
        """
        out = CommunicationEvents(component=self.component)
        for s, d, w in self._chunks:
            out.add(d, s, w)
        return out

    def compact(self, num_processors: int | None = None) -> PairHistogram:
        """Collapse the multiset into a :class:`PairHistogram`.

        Parameters
        ----------
        num_processors:
            The rank space ``p``; defaults to ``max_rank() + 1``.  Every
            referenced rank must satisfy ``0 <= rank < p``.

        For small rank spaces the aggregation is one dense
        ``np.bincount`` over the flattened ``src * p + dst`` keys; large
        rank spaces (``p**2`` beyond the dense scratch budget) use a
        sort-based sparse path.  The result is identical either way and
        independent of chunk boundaries and chunk order.
        """
        p = self.max_rank() + 1 if num_processors is None else int(num_processors)
        if p < 1:
            p = 1
        if self.max_rank() >= p:
            raise ValueError(
                f"events reference rank {self.max_rank()} outside the "
                f"{p}-processor rank space"
            )
        empty = np.empty(0, dtype=np.int64)
        if not self._chunks:
            return PairHistogram(empty, empty.copy(), empty.copy(), p, 0)
        keys = np.concatenate(
            [s.astype(np.int64) * p + d for s, d, _ in self._chunks]
        )
        unweighted = all(w is None for _, _, w in self._chunks)
        if unweighted:
            weights = None
        else:
            weights = np.concatenate(
                [
                    w.astype(np.int64) if w is not None else np.ones(s.size, np.int64)
                    for s, d, w in self._chunks
                ]
            )
        if p * p <= _dense_compact_cells():
            if weights is None:
                dense = np.bincount(keys, minlength=p * p)
            else:
                # float64 bincount sums of int weights are exact below 2**53
                dense = np.bincount(keys, weights=weights, minlength=p * p)
            flat = np.nonzero(dense)[0]
            agg = np.rint(dense[flat]).astype(np.int64)
        else:
            flat, inverse = np.unique(keys, return_inverse=True)
            if weights is None:
                agg = np.bincount(inverse, minlength=flat.size).astype(np.int64)
            else:
                agg = np.rint(
                    np.bincount(inverse, weights=weights, minlength=flat.size)
                ).astype(np.int64)
            keep = agg > 0  # zero-weight events contribute no histogram mass
            flat, agg = flat[keep], agg[keep]
        return PairHistogram(flat // p, flat % p, agg, p, self._count)

    def max_rank(self) -> int:
        """Largest rank referenced by any event (-1 when empty)."""
        best = -1
        for s, d, _ in self._chunks:
            best = max(best, int(s.max()), int(d.max()))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" component={self.component!r}" if self.component else ""
        return f"CommunicationEvents(n={self._count}{label})"
