"""Communication-event containers.

A :class:`CommunicationEvents` instance is a multiset of point-to-point
communications — ``(source rank, destination rank)`` pairs — produced by
a model (FMM near/far field, a collective primitive, ...).  Events are
stored as a list of array chunks so million-event models never pay for a
monolithic reallocation, and metric evaluation can stream chunk by
chunk.

Events may optionally carry integer *weights* (message sizes in
arbitrary volume units); a weighted event counts ``w`` times toward the
ACD, which turns the metric into "average distance per unit of data
moved" — the data-volume refinement §VIII lists as future work.
Unweighted chunks behave as weight 1 throughout.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro._typing import IntArray
from repro.util.validation import as_index_array

__all__ = ["CommunicationEvents"]


class CommunicationEvents:
    """A multiset of point-to-point communications between ranks.

    Parameters
    ----------
    component:
        Optional label naming which phase of an algorithm produced these
        events (e.g. ``"interpolation"``).
    """

    def __init__(self, component: str = ""):
        self.component = component
        self._chunks: list[tuple[IntArray, IntArray, IntArray | None]] = []
        self._count = 0
        self._weight = 0

    # ------------------------------------------------------------------
    def add(self, src, dst, weights=None) -> None:
        """Append a chunk of events (equal-length rank arrays or scalars).

        ``weights`` optionally assigns a non-negative integer volume to
        each event; omitted weights count as 1.
        """
        s = np.atleast_1d(as_index_array(src, "src"))
        d = np.atleast_1d(as_index_array(dst, "dst"))
        if s.shape != d.shape or s.ndim != 1:
            raise ValueError(
                f"src and dst must be equal-length 1D arrays, got {s.shape} vs {d.shape}"
            )
        w: IntArray | None = None
        if weights is not None:
            w = np.atleast_1d(as_index_array(weights, "weights"))
            if w.shape != s.shape:
                raise ValueError(
                    f"weights must match src length, got {w.shape} vs {s.shape}"
                )
            if w.size and w.min() < 0:
                raise ValueError("weights must be non-negative")
        if s.size:
            self._chunks.append((s, d, w))
            self._count += int(s.size)
            self._weight += int(w.sum()) if w is not None else int(s.size)

    def extend(self, other: "CommunicationEvents") -> None:
        """Append every chunk of ``other`` (labels are not merged)."""
        for s, d, w in other.iter_weighted_chunks():
            self.add(s, d, w)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def total_weight(self) -> int:
        """Sum of event weights (equals ``len(self)`` when unweighted)."""
        return self._weight

    def iter_chunks(self) -> Iterator[tuple[IntArray, IntArray]]:
        """Yield the stored ``(src, dst)`` chunks without copying."""
        for s, d, _ in self._chunks:
            yield s, d

    def iter_weighted_chunks(self) -> Iterator[tuple[IntArray, IntArray, IntArray | None]]:
        """Yield ``(src, dst, weights_or_None)`` chunks without copying."""
        yield from self._chunks

    def pairs(self) -> tuple[IntArray, IntArray]:
        """Concatenate all chunks into two flat arrays (copies)."""
        if not self._chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        src = np.concatenate([s for s, _, _ in self._chunks])
        dst = np.concatenate([d for _, d, _ in self._chunks])
        return src, dst

    def reversed(self) -> "CommunicationEvents":
        """A new container with every event's direction flipped.

        The anterpolation phase of the FMM is exactly the interpolation
        phase reversed (§IV step 7), so this is cheap by construction.
        """
        out = CommunicationEvents(component=self.component)
        for s, d, w in self._chunks:
            out.add(d, s, w)
        return out

    def max_rank(self) -> int:
        """Largest rank referenced by any event (-1 when empty)."""
        best = -1
        for s, d, _ in self._chunks:
            best = max(best, int(s.max()), int(d.max()))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" component={self.component!r}" if self.component else ""
        return f"CommunicationEvents(n={self._count}{label})"
