"""High-level FMM communication model: particles in, ACD report out.

This orchestrates the full §IV pipeline:

1. order the particles with the particle-order SFC,
2. chunk them onto ``p`` processors,
3. (the topology already encodes the processor-order SFC),
4. generate near-field and far-field communication events,
5. evaluate the ACD of each phase on the network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributions.base import Particles
from repro.fmm.events import CommunicationEvents
from repro.fmm.ffi import FfiEvents, ffi_events
from repro.fmm.nfi import nfi_events
from repro.metrics.acd import ACDResult, acd_breakdown, compute_acd
from repro.partition.assignment import Assignment, partition_particles
from repro.topology.base import Topology

__all__ = ["FmmReport", "FmmCommunicationModel"]


@dataclass(frozen=True)
class FmmReport:
    """ACD evaluation of one FMM problem instance.

    Attributes
    ----------
    nfi:
        Near-field result (one event per neighbouring particle pair).
    ffi:
        Per-phase far-field results with keys ``"interpolation"``,
        ``"anterpolation"``, ``"interaction"`` and ``"combined"``.
    """

    nfi: ACDResult
    ffi: dict[str, ACDResult]

    @property
    def nfi_acd(self) -> float:
        """Near-field Average Communicated Distance."""
        return self.nfi.acd

    @property
    def ffi_acd(self) -> float:
        """Far-field ACD pooled over all three phases (§IV step 10)."""
        return self.ffi["combined"].acd


class FmmCommunicationModel:
    """The paper's FMM communication abstraction on a fixed network.

    Parameters
    ----------
    topology:
        The processor network (its layout already realises the
        processor-order SFC for grid networks).
    particle_curve:
        Name of the particle-order SFC.
    radius:
        Near-field neighbourhood radius ``r``.
    nfi_metric:
        Neighbourhood shape for the near field (``"chebyshev"`` default).
    ffi_granularity:
        ``"cell"`` (§III reading, default) or ``"processor"`` (§IV
        reading, deduplicated per level); see :mod:`repro.fmm.ffi`.
    """

    def __init__(
        self,
        topology: Topology,
        particle_curve: str = "hilbert",
        radius: int = 1,
        nfi_metric: str = "chebyshev",
        ffi_granularity: str = "cell",
    ):
        self.topology = topology
        self.particle_curve = particle_curve
        self.radius = int(radius)
        self.nfi_metric = nfi_metric
        self.ffi_granularity = ffi_granularity

    def assign(self, particles: Particles) -> Assignment:
        """Steps 1–4: order and chunk the particles onto the network."""
        return partition_particles(
            particles, self.particle_curve, self.topology.num_processors
        )

    def near_field_events(self, assignment: Assignment) -> CommunicationEvents:
        """Step 5–7 (near field): neighbour-pair communications."""
        return nfi_events(assignment, radius=self.radius, metric=self.nfi_metric)

    def far_field_events(self, assignment: Assignment) -> FfiEvents:
        """Step 5–10 (far field): tree accumulations + interaction lists."""
        return ffi_events(assignment, granularity=self.ffi_granularity)

    def evaluate(self, particles: Particles) -> FmmReport:
        """Run the full pipeline and report per-phase ACD values."""
        assignment = self.assign(particles)
        nfi = compute_acd(self.near_field_events(assignment), self.topology)
        ffi = acd_breakdown(self.far_field_events(assignment).as_mapping(), self.topology)
        return FmmReport(nfi=nfi, ffi=ffi)
