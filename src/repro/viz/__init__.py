"""Text rendering of the paper's illustrative figures (Figs. 1-4)."""

from repro.viz.render import (
    render_curve,
    render_interaction_list,
    render_particle_order,
    render_particles,
)

__all__ = [
    "render_curve",
    "render_particles",
    "render_particle_order",
    "render_interaction_list",
]
