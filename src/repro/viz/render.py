"""Text rendering of the paper's illustrative figures.

Figures 1–4 of the paper are illustrations rather than measurements:
the four curve shapes (Fig. 1), the three input distributions (Fig. 2),
a particle ordering (Fig. 3) and an interaction-list example (Fig. 4).
This module regenerates all of them as terminal text so the whole paper
— not only the evaluation — can be reproduced without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.distributions.base import Particles
from repro.partition.ordering import order_particles
from repro.quadtree.interaction import interaction_list_cells
from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve

__all__ = [
    "render_curve",
    "render_particles",
    "render_particle_order",
    "render_interaction_list",
]

# box-drawing segments keyed by the pair of unit directions a cell connects;
# directions: 0=+x (down the printed rows), 1=-x, 2=+y (right), 3=-y
_SEGMENTS = {
    frozenset({0, 1}): "│",
    frozenset({2, 3}): "─",
    frozenset({0, 2}): "┌",
    frozenset({0, 3}): "┐",
    frozenset({1, 2}): "└",
    frozenset({1, 3}): "┘",
    frozenset({0}): "╷",
    frozenset({1}): "╵",
    frozenset({2}): "╶",
    frozenset({3}): "╴",
    frozenset(): "·",
}


def _direction(from_pt: IntArray, to_pt: IntArray) -> int | None:
    dx, dy = int(to_pt[0] - from_pt[0]), int(to_pt[1] - from_pt[1])
    return {(1, 0): 0, (-1, 0): 1, (0, 1): 2, (0, -1): 3}.get((dx, dy))


def render_curve(curve: SpaceFillingCurve | str, order: int | None = None) -> str:
    """Draw a curve's path with box-drawing characters (paper Fig. 1).

    Cells are joined where consecutive curve indices are lattice
    neighbours; jumps (Z, Gray, row-major seams) appear as open ends, so
    the discontinuities the paper discusses are directly visible.
    """
    if isinstance(curve, str):
        if order is None:
            raise ValueError("order is required when passing a curve name")
        curve = get_curve(curve, order)
    pts = curve.ordering()
    side = curve.side
    dirs: list[set[int]] = [set() for _ in range(side * side)]
    for i in range(len(pts) - 1):
        d = _direction(pts[i], pts[i + 1])
        if d is not None:
            dirs[int(pts[i, 0]) * side + int(pts[i, 1])].add(d)
            dirs[int(pts[i + 1, 0]) * side + int(pts[i + 1, 1])].add(d ^ 1)
    rows = []
    for x in range(side):
        row = [
            _SEGMENTS.get(frozenset(dirs[x * side + y]), "?") for y in range(side)
        ]
        rows.append("".join(row))
    return "\n".join(rows)


def render_particles(particles: Particles, width: int = 32) -> str:
    """Density plot of a particle set (paper Fig. 2).

    The lattice is binned to ``width`` columns; darker characters mean
    more particles per bin.
    """
    shades = " .:-=+*#%@"
    width = min(width, particles.side)
    bins = np.linspace(0, particles.side, width + 1)
    hist, _, _ = np.histogram2d(particles.x, particles.y, bins=(bins, bins))
    top = hist.max() if hist.max() else 1.0
    lines = []
    for x in range(width):
        line = "".join(
            shades[min(int(9 * hist[x, y] / top), 9)] for y in range(width)
        )
        lines.append(line)
    return "\n".join(lines)


def render_particle_order(
    particles: Particles, curve: SpaceFillingCurve | str, max_labels: int = 100
) -> str:
    """Label each particle's cell with its rank in the SFC order (Fig. 3).

    Only usable for small lattices/particle counts; raises otherwise.
    """
    if len(particles) > max_labels:
        raise ValueError(
            f"render_particle_order labels at most {max_labels} particles, got {len(particles)}"
        )
    ordered, _ = order_particles(particles, curve)
    side = particles.side
    width = len(str(max(len(ordered) - 1, 1)))
    grid = [["·" * width for _ in range(side)] for _ in range(side)]
    for rank in range(len(ordered)):
        grid[int(ordered.x[rank])][int(ordered.y[rank])] = f"{rank:>{width}}"
    return "\n".join(" ".join(row) for row in grid)


def render_interaction_list(cx: int, cy: int, level: int) -> str:
    """Mark one cell (``a``) and its interaction list (``b``) — Fig. 4."""
    side = 1 << level
    grid = [["." for _ in range(side)] for _ in range(side)]
    for tx, ty in interaction_list_cells(cx, cy, level):
        grid[int(tx)][int(ty)] = "b"
    grid[cx][cy] = "a"
    return "\n".join(" ".join(row) for row in grid)
