"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = ["IntArray", "FloatArray", "BoolArray", "IntLike", "SeedLike"]

#: Integer ndarray (indices, coordinates, ranks).
IntArray = npt.NDArray[np.int64]

#: Floating-point ndarray (distances, metric values).
FloatArray = npt.NDArray[np.float64]

#: Boolean mask ndarray.
BoolArray = npt.NDArray[np.bool_]

#: Anything accepted where a scalar integer is expected.
IntLike = Union[int, np.integer]

#: Anything accepted as a random seed (``None`` means nondeterministic).
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]
