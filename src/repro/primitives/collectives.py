"""All-to-all, allreduce, allgather, scatter/gather and prefix-scan patterns.

Each generator returns the point-to-point event multiset of a textbook
algorithm for the collective, so the ACD of a full application can be
assembled phase by phase (§VII: "the ACD value can be calculated for
each type of communication ... and these can be combined to predict the
performance of the implementation").
"""

from __future__ import annotations

import numpy as np

from repro.fmm.events import CommunicationEvents
from repro.primitives.base import as_participants

__all__ = [
    "alltoall",
    "allreduce",
    "allgather_ring",
    "scan",
    "gather_linear",
    "scatter_linear",
]


def alltoall(participants) -> CommunicationEvents:
    """Every participant sends one message to every other participant."""
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="alltoall")
    if m <= 1:
        return events
    src = np.repeat(ranks, m - 1)
    dst_matrix = np.broadcast_to(ranks, (m, m))
    mask = ~np.eye(m, dtype=bool)
    events.add(src, dst_matrix[mask])
    return events


def allreduce(participants) -> CommunicationEvents:
    """Recursive-doubling allreduce.

    In round ``i`` every participant exchanges with the partner whose
    position differs in bit ``i``; for non-power-of-two counts the
    excess ranks fold into the nearest power of two first and unfold
    afterwards (the standard pre/post step).
    """
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="allreduce")
    if m <= 1:
        return events
    pow2 = 1 << ((m - 1).bit_length() - 1) if m & (m - 1) else m
    excess = m - pow2
    if excess:
        extras = np.arange(pow2, m, dtype=np.int64)
        partners = extras - pow2
        events.add(ranks[extras], ranks[partners])  # fold in
    core = np.arange(pow2, dtype=np.int64)
    bit = 1
    while bit < pow2:
        partner = core ^ bit
        events.add(ranks[core], ranks[partner])
        bit <<= 1
    if excess:
        extras = np.arange(pow2, m, dtype=np.int64)
        partners = extras - pow2
        events.add(ranks[partners], ranks[extras])  # unfold
    return events


def allgather_ring(participants) -> CommunicationEvents:
    """Ring allgather: ``m - 1`` rounds of neighbour forwarding."""
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="allgather")
    if m <= 1:
        return events
    src = ranks
    dst = np.roll(ranks, -1)
    for _ in range(m - 1):
        events.add(src, dst)
    return events


def scan(participants) -> CommunicationEvents:
    """Hillis–Steele inclusive prefix scan.

    Round ``i``: participant at position ``j`` sends to position
    ``j + 2**i`` (§VII names parallel prefix among the archetypes the
    far-field accumulation resembles).
    """
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="scan")
    span = 1
    while span < m:
        senders = np.arange(0, m - span, dtype=np.int64)
        events.add(ranks[senders], ranks[senders + span])
        span <<= 1
    return events


def gather_linear(participants, root_position: int = 0) -> CommunicationEvents:
    """Naive gather: every participant sends directly to the root."""
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="gather")
    if m <= 1:
        return events
    if not 0 <= root_position < m:
        raise ValueError(f"root_position {root_position} outside [0, {m})")
    root = ranks[root_position]
    others = np.delete(ranks, root_position)
    events.add(others, np.full(others.size, root, dtype=np.int64))
    return events


def scatter_linear(participants, root_position: int = 0) -> CommunicationEvents:
    """Naive scatter: the root sends directly to every participant."""
    out = gather_linear(participants, root_position).reversed()
    out.component = "scatter"
    return out
