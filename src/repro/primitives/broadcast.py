"""Binomial-tree broadcast and reduction.

The classic ``log p`` broadcast: in round ``i`` every rank that already
holds the datum forwards it to the participant ``2**i`` positions away
in the participant ordering.  This is the "log-tree broadcast
communication, which is frequently used in parallel implementations"
that §VII equates with the paper's per-level far-field accumulation.

A reduction is the same tree with every edge reversed.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.events import CommunicationEvents
from repro.primitives.base import as_participants

__all__ = ["broadcast", "reduce"]


def broadcast(participants, root_position: int = 0) -> CommunicationEvents:
    """Binomial-tree broadcast from one participant to all others.

    Parameters
    ----------
    participants:
        Ranks taking part, in algorithmic order.
    root_position:
        Position of the broadcast root within the participant list (the
        list is rotated so the tree is rooted there).
    """
    ranks = as_participants(participants)
    m = ranks.size
    events = CommunicationEvents(component="broadcast")
    if m <= 1:
        return events
    if not 0 <= root_position < m:
        raise ValueError(f"root_position {root_position} outside [0, {m})")
    order = np.roll(ranks, -root_position)
    span = 1
    while span < m:
        senders = np.arange(0, min(span, m - span), dtype=np.int64)
        receivers = senders + span
        receivers = receivers[receivers < m]
        senders = senders[: receivers.size]
        events.add(order[senders], order[receivers])
        span <<= 1
    return events


def reduce(participants, root_position: int = 0) -> CommunicationEvents:
    """Binomial-tree reduction: the broadcast tree with edges reversed."""
    out = broadcast(participants, root_position).reversed()
    out.component = "reduce"
    return out
