"""Point-to-point communication pattern."""

from __future__ import annotations

from repro.fmm.events import CommunicationEvents
from repro.util.validation import as_index_array

__all__ = ["point_to_point"]


def point_to_point(src, dst) -> CommunicationEvents:
    """Explicit pairwise messages: one event per ``(src[i], dst[i])``."""
    events = CommunicationEvents(component="point-to-point")
    events.add(as_index_array(src, "src"), as_index_array(dst, "dst"))
    return events
