"""Communication primitives for the generalised ACD metric (§VII)."""

from repro.primitives.base import as_participants
from repro.primitives.broadcast import broadcast, reduce
from repro.primitives.collectives import (
    allgather_ring,
    allreduce,
    alltoall,
    gather_linear,
    scan,
    scatter_linear,
)
from repro.primitives.ptp import point_to_point

__all__ = [
    "as_participants",
    "point_to_point",
    "broadcast",
    "reduce",
    "alltoall",
    "allreduce",
    "allgather_ring",
    "scan",
    "gather_linear",
    "scatter_linear",
]
