"""Shared plumbing for communication-primitive event generators.

§VII of the paper argues the ACD metric generalises beyond the FMM: "the
ACD for most common types of parallel communication such as all-to-all
and broadcast can be computed in advance ... to allow algorithm
designers to select the appropriate SFCs for data separation and
processor ranking".  Each module in this package abstracts one classic
communication archetype into a :class:`~repro.fmm.events.CommunicationEvents`
multiset which :func:`repro.metrics.compute_acd` can evaluate on any
topology.

Primitives operate on a *participant list* — the ranks taking part, in
algorithmic order (e.g. the processors holding a quadrant's particles,
ordered by the processor-order SFC, as in the paper's far-field
log-tree).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.util.validation import as_index_array

__all__ = ["as_participants"]


def as_participants(ranks) -> IntArray:
    """Validate and normalise a participant list (1D, non-negative, unique)."""
    arr = np.atleast_1d(as_index_array(ranks, "participants"))
    if arr.ndim != 1:
        raise ValueError("participants must be a 1D sequence of ranks")
    if arr.size and arr.min() < 0:
        raise ValueError("ranks must be non-negative")
    if np.unique(arr).size != arr.size:
        raise ValueError("participants must be distinct ranks")
    return arr
