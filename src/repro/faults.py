"""Deterministic fault injection for the execution layer.

Long paper-scale sweeps must survive worker crashes, hung workers and
transient exceptions — but those failures are useless to test against
unless they can be *reproduced on demand*.  This module is the harness:
a fault plan is a semicolon-separated list of specs, e.g. ::

    REPRO_FAULTS="crash:unit=3; raise:rate=0.1:seed=7; hang:unit=5"

parsed once (:func:`parse_faults`) and threaded through
:func:`repro.obs.record_unit` into every execution unit, so the same
plan injects the same faults at the same units on every run.

Three fault kinds model the three production failure modes:

``crash``
    The worker process dies abruptly (``os._exit``), poisoning its
    ``ProcessPoolExecutor`` — the ``BrokenProcessPool`` path.
``raise``
    A transient exception (:class:`InjectedFault`) propagates out of
    the unit — the retryable-error path.
``hang``
    The unit blocks (``time.sleep``) — the per-unit-timeout path.

Each spec targets either explicit units (``unit=3`` or ``unit=0,2,5``)
or a deterministic Bernoulli draw (``rate=0.1:seed=7``; the draw hashes
``(seed, unit, attempt)``, so it is identical across processes and
runs).  ``attempts=N`` bounds firing to attempts ``< N`` — unit-
targeted specs default to ``attempts=1`` (fire once, succeed on retry),
rate-based specs redraw on every attempt.  ``crash`` and ``hang`` model
*worker* failures and only fire inside pool workers; ``raise`` fires
everywhere, including serial and degraded-serial execution.

Stdlib-only (like :mod:`repro.runtime`) so any layer can import it
without cycles, and fully picklable so plans travel to pool workers
inside the ordinary call arguments.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "parse_faults",
    "inject",
    "FAULT_KINDS",
]

FAULT_KINDS = ("crash", "raise", "hang")

#: Default sleep of a ``hang`` fault — far beyond any sane unit timeout,
#: so an un-rescued hang is unmistakable rather than flaky.
DEFAULT_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """A transient, injected unit exception (retryable by design)."""


def _draw(seed: int, unit: int, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (unit, attempt)."""
    digest = hashlib.sha256(f"{seed}:{unit}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause: what to inject, where, and how often."""

    kind: str
    units: tuple[int, ...] | None = None
    rate: float = 0.0
    seed: int = 0
    attempts: int | None = None
    seconds: float = DEFAULT_HANG_SECONDS

    def fires(self, unit: int, attempt: int) -> bool:
        """Whether this spec injects at ``(unit, attempt)``."""
        limit = self.attempts
        if limit is None and self.units is not None:
            limit = 1  # unit-targeted: fire once, let the retry succeed
        if limit is not None and attempt >= limit:
            return False
        if self.units is not None:
            return unit in self.units
        return _draw(self.seed, unit, attempt) < self.rate


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of :class:`FaultSpec` clauses."""

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)


def _parse_spec(chunk: str) -> FaultSpec:
    fields = chunk.split(":")
    kind = fields[0].strip()
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} in {chunk!r}; expected one of {', '.join(FAULT_KINDS)}"
        )
    kwargs: dict[str, object] = {}
    for fragment in fields[1:]:
        name, sep, raw = fragment.partition("=")
        name, raw = name.strip(), raw.strip()
        if not sep or not raw:
            raise ValueError(f"malformed fault option {fragment!r} in {chunk!r}")
        try:
            if name == "unit":
                kwargs["units"] = tuple(int(u) for u in raw.split(","))
            elif name == "rate":
                kwargs["rate"] = float(raw)
            elif name == "seed":
                kwargs["seed"] = int(raw)
            elif name == "attempts":
                kwargs["attempts"] = int(raw)
            elif name == "seconds":
                kwargs["seconds"] = float(raw)
            else:
                raise ValueError(f"unknown fault option {name!r} in {chunk!r}")
        except ValueError as exc:
            if "fault option" in str(exc):
                raise
            raise ValueError(f"bad value for {name!r} in {chunk!r}: {raw!r}") from None
    if "units" not in kwargs and "rate" not in kwargs:
        raise ValueError(f"fault spec {chunk!r} needs unit=... or rate=...")
    rate = kwargs.get("rate", 0.0)
    if not isinstance(rate, float) or not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate!r} in {chunk!r}")
    attempts = kwargs.get("attempts")
    if attempts is not None and attempts < 1:  # type: ignore[operator]
        raise ValueError(f"attempts must be >= 1, got {attempts!r} in {chunk!r}")
    return FaultSpec(kind=kind, **kwargs)  # type: ignore[arg-type]


def parse_faults(text: str | FaultPlan | None) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` string into a :class:`FaultPlan`.

    Specs are separated by ``;``; options within a spec by ``:``.
    ``None``, an empty string and an existing plan pass through.
    """
    if text is None:
        return FaultPlan()
    if isinstance(text, FaultPlan):
        return text
    specs = tuple(
        _parse_spec(chunk) for chunk in (part.strip() for part in text.split(";")) if chunk
    )
    return FaultPlan(specs)


def inject(plan: FaultPlan, unit: int, attempt: int, in_worker: bool) -> None:
    """Fire whatever the plan schedules for ``(unit, attempt)``.

    ``raise`` faults raise :class:`InjectedFault` anywhere; ``crash``
    and ``hang`` model worker-process failures and are skipped unless
    ``in_worker`` (a crash of the in-process path would kill the run
    itself, and a serial hang has no timeout to rescue it).
    """
    for spec in plan.specs:
        if not spec.fires(unit, attempt):
            continue
        if spec.kind == "raise":
            raise InjectedFault(f"injected transient fault (unit {unit}, attempt {attempt})")
        if not in_worker:
            continue
        if spec.kind == "crash":
            os._exit(70)
        elif spec.kind == "hang":
            time.sleep(spec.seconds)
