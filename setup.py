"""Build script: metadata lives in pyproject.toml.

The only job left here is the *optional* native kernel extension
(``repro.kernels._native``).  It is strictly a fast path — the package
is fully functional without it — so every way the build can fail
(no compiler, no NumPy headers, exotic platform) downgrades to a
warning instead of failing the install.  See ``repro/kernels`` for the
backend-selection logic and ``REPRO_KERNEL_BACKEND`` for the knob.
"""

from __future__ import annotations

import warnings

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """``build_ext`` that treats any failure as 'skip the fast path'."""

    def run(self):  # noqa: D102 - inherited
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain dependent
            warnings.warn(f"skipping optional native kernels: {exc}", stacklevel=1)

    def build_extension(self, ext):  # noqa: D102 - inherited
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain dependent
            warnings.warn(
                f"skipping optional native kernel {ext.name}: {exc}", stacklevel=1
            )


def _native_extensions() -> list[Extension]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard runtime dep anyway
        return []
    return [
        Extension(
            "repro.kernels._native",
            sources=["src/repro/kernels/_native.c"],
            include_dirs=[numpy.get_include()],
            optional=True,
        )
    ]


setup(ext_modules=_native_extensions(), cmdclass={"build_ext": OptionalBuildExt})
