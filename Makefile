# Convenience targets for the SFC-ACD reproduction.

PYTHON ?= python

.PHONY: install test bench bench-paper experiments experiments-paper examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli all

experiments-paper:
	REPRO_SCALE=paper $(PYTHON) -m repro.experiments.cli all

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
