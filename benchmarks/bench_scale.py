"""Memory-bounded scale tier: tiled ACD wall time and peak RSS.

The dense ACD path needs a ``p x p`` int32 distance matrix — 64 MiB at
the paper's 4096-rank tier, 16 GiB at ``p = 2**16`` and 4 TiB at
``p = 2**20`` — so rank counts beyond the paper were simply impossible
allocations.  The tiled path (``REPRO_MEMORY_BUDGET``) evaluates the
same histograms in budget-sized distance tiles, so this benchmark walks
the rank ladder ``p ∈ {4096, 2**16, 2**18}`` (plus the ``2**20``
acceptance tier at full size) recording wall time and the process
high-water RSS, and cross-checks bit-identity against the tractable
references at every tier:

* at ``p = 4096`` the tiled result must equal the *dense* matrix path;
* at every tier it must equal the matrix-free streaming evaluation
  (vectorised per-pair distances — exact at any ``p``).

Each run appends one record to ``benchmarks/BENCH_scale.json`` so the
trajectory across commits stays visible.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.fmm.events import CommunicationEvents
from repro.metrics.acd import compute_acd, dense_matrix_bytes, tile_side_for_budget
from repro.topology.registry import make_topology

TRAJECTORY = Path(__file__).parent / "BENCH_scale.json"

_TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
#: Rank ladder: the paper's largest tier plus the out-of-core tiers.
TIERS = (4_096, 1 << 16) if _TINY else (4_096, 1 << 16, 1 << 18, 1 << 20)
N_EVENTS = 30_000 if _TINY else 400_000
#: The acceptance budget: 2 GiB, under which even p=2**20 must complete.
BUDGET = 2 << 30


def _peak_rss_kib() -> int:
    """Process high-water RSS in KiB (monotonic; ru_maxrss is KiB on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(record)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _random_histogram(p: int, n_events: int, seed: int):
    rng = np.random.default_rng(seed)
    events = CommunicationEvents()
    events.add(
        rng.integers(0, p, n_events),
        rng.integers(0, p, n_events),
        rng.integers(1, 9, n_events),
    )
    return events, events.compact(p)


def test_scale_ladder(report):
    rows = []
    for tier, p in enumerate(TIERS):
        # Tiling only engages once the dense matrix exceeds the budget;
        # at small tiers shrink the budget so the tiled path is always
        # the one being measured (and compared against dense).
        budget = min(BUDGET, dense_matrix_bytes(p) // 2)
        topology = make_topology("torus", p, processor_curve="hilbert")
        events, histogram = _random_histogram(p, N_EVENTS, seed=tier)
        with obs.recording() as rec:
            tiled, tiled_s = _timed(
                lambda: compute_acd(histogram, topology, memory_budget=budget)
            )
        streamed, stream_s = _timed(
            lambda: compute_acd(events, topology, cache=None, memory_budget=budget)
        )
        assert tiled == streamed  # exact at every rank count
        dense_s = None
        if dense_matrix_bytes(p) <= BUDGET:  # tractable reference tier
            dense, dense_s = _timed(
                lambda: compute_acd(histogram, topology, memory_budget=None)
            )
            assert tiled == dense  # bit-identical to the dense matrix path
        rows.append(
            {
                "p": p,
                "events": N_EVENTS,
                "pairs": histogram.num_pairs,
                "budget_bytes": budget,
                "dense_matrix_bytes": dense_matrix_bytes(p),
                "tile_side": tile_side_for_budget(budget, p),
                "tiles": rec.counters.get("acd.tiles"),
                "tiled_s": round(tiled_s, 4),
                "streaming_s": round(stream_s, 4),
                "dense_s": None if dense_s is None else round(dense_s, 4),
                "acd": tiled.acd,
                "peak_rss_kib": _peak_rss_kib(),
            }
        )
    record = {"bench": "scale", "tiny": _TINY, "tiers": rows}
    append_trajectory(record)
    report("Memory-bounded ACD scale ladder (torus/hilbert)", json.dumps(record, indent=2))
    # The acceptance envelope: the million-rank tier completed with the
    # whole process staying under the 2 GiB budget (the dense matrix it
    # replaced would have been 4 TiB).
    if not _TINY:
        assert rows[-1]["p"] == 1 << 20
        assert rows[-1]["peak_rss_kib"] * 1024 < BUDGET


def test_scale_smoke_2e16(report):
    """The CI scale-smoke scenario: 2**16 ranks under a deliberately tiny
    budget (thousands of tiles) must match the matrix-free reference."""
    p = 1 << 16
    budget = 8 << 20  # 8 MiB: dense would need 16 GiB, forces ~512-rank tiles
    topology = make_topology("torus", p, processor_curve="hilbert")
    events, histogram = _random_histogram(p, 20_000, seed=99)
    with obs.recording() as rec:
        tiled, tiled_s = _timed(
            lambda: compute_acd(histogram, topology, memory_budget=budget)
        )
    reference = compute_acd(events, topology, cache=None, memory_budget=budget)
    assert tiled == reference
    assert rec.counters["acd.tiles"] > 100  # genuinely tiled, not one block
    report(
        "scale-smoke: 2**16 ranks under an 8 MiB budget",
        json.dumps(
            {
                "p": p,
                "budget_bytes": budget,
                "tile_side": tile_side_for_budget(budget, p),
                "tiles": rec.counters["acd.tiles"],
                "tiled_s": round(tiled_s, 4),
                "acd": tiled.acd,
                "peak_rss_kib": _peak_rss_kib(),
            },
            indent=2,
        ),
    )
