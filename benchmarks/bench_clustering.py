"""Related-work reproduction: the clustering metric ranking (§I/§II).

Regenerates the classic Jagadish/Moon-et-al. finding the paper contrasts
its ANNS results against: the Hilbert curve minimises range-query
clustering while losing the nearest-neighbour stretch.
"""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, plan_clustering_study, run_study
from repro.experiments.clustering_study import format_clustering_study
from repro.metrics import anns


@pytest.mark.paper_artifact("related-clustering")
def test_clustering_ranking(benchmark, scale, report):
    kwargs = (
        {"order": 8, "query_sizes": (2, 4, 8, 16, 32), "samples": 500}
        if scale.name == "paper"
        else {"order": 7, "query_sizes": (2, 4, 8, 16), "samples": 300}
    )
    ctx = StudyContext(scale=scale)
    plan = plan_clustering_study(ctx, **kwargs)
    result = benchmark.pedantic(
        run_study, args=("clustering", ctx), kwargs={"plan": plan}, rounds=1, iterations=1
    )
    report(f"Clustering metric (scale={scale.name})", format_clustering_study(result))
    for i, q in enumerate(result.query_sizes):
        snapshot = {c: result.values[c][i] for c in result.curves}
        # Jagadish (1990): Hilbert beats the Gray order and the Z-curve
        assert snapshot["hilbert"] < snapshot["zcurve"], q
        assert snapshot["hilbert"] < snapshot["gray"], q
        # Xu & Tirthapura (PODS'12): *all* continuous curves are near-
        # optimal — the snake scan matches Hilbert to within a few percent
        assert snapshot["snake"] < 1.05 * snapshot["hilbert"] + 0.2, q
        # a q x q window always crosses exactly q row-major columns
        assert snapshot["rowmajor"] == pytest.approx(q), q
    # ...while Hilbert loses the ANNS on the same lattice (§V's contrast)
    assert anns("hilbert", result.order) > anns("zcurve", result.order)
