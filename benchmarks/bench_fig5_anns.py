"""Regenerate Fig. 5 — ANNS and large-radius stretch vs resolution (§V)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, format_anns_study, run_study
from repro.experiments.anns_study import AnnsStudyResult


@pytest.mark.paper_artifact("fig5")
def test_fig5_anns(benchmark, scale, report):
    ctx = StudyContext(scale=scale)
    result: AnnsStudyResult = benchmark.pedantic(
        run_study, args=("fig5", ctx), rounds=1, iterations=1
    )
    report(f"Fig. 5 (scale={scale.name})", format_anns_study(result))
    # sanity: the paper's headline ordering must hold at the top resolution
    final = {c: v[-1] for c, v in result.values[1].items()}
    assert final["zcurve"] < final["hilbert"] < final["gray"]
    assert final["rowmajor"] < final["gray"]
