"""Contention-extension ablation: link loads under XY routing.

Future-work item (i) of §VIII asks how network contention interacts with
the SFC choice; this bench routes the near-field traffic of every
same-SFC pairing on a torus and reports maximum and mean link load next
to the (contention-unaware) ACD, showing that the ACD ranking survives
when congestion is taken into account.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.contention import link_loads, simulate_exchange
from repro.distributions import get_distribution
from repro.experiments.reporting import format_rows
from repro.fmm import nfi_events
from repro.metrics import compute_acd
from repro.partition import partition_particles
from repro.sfc.registry import PAPER_CURVES
from repro.topology import make_topology


def bench_args(scale, tiny: tuple, small: tuple, paper: tuple) -> tuple:
    """Workload size for the active scale.

    ``REPRO_BENCH_TINY=1`` overrides everything with a seconds-not-minutes
    configuration so CI can smoke-test the bench scripts.
    """
    if os.environ.get("REPRO_BENCH_TINY"):
        return tiny
    return paper if scale.name == "paper" else small


def contention_table(num_particles: int, order: int, num_processors: int):
    particles = get_distribution("uniform").sample(num_particles, order, rng=5)
    rows = []
    for curve in PAPER_CURVES:
        net = make_topology("torus", num_processors, processor_curve=curve)
        assignment = partition_particles(particles, curve, num_processors)
        events = nfi_events(assignment)
        loads = link_loads(events, net)
        rows.append(
            {
                "curve": curve,
                "acd": compute_acd(events, net).acd,
                "max_link_load": loads.max_load,
                "mean_link_load": loads.mean_load,
                "total_traffic": loads.total_traffic,
            }
        )
    return rows


@pytest.mark.paper_artifact("ext-contention")
def test_contention_ablation(benchmark, scale, report):
    args = bench_args(
        scale, tiny=(2_000, 6, 256), small=(20_000, 8, 1_024), paper=(250_000, 10, 65_536)
    )
    rows = benchmark.pedantic(contention_table, args=args, rounds=1, iterations=1)
    report(
        f"Contention extension — NFI link loads on a torus (scale={scale.name})",
        format_rows(rows, ["curve", "acd", "max_link_load", "mean_link_load", "total_traffic"]),
    )
    by_curve = {r["curve"]: r for r in rows}
    # the ACD winner also carries the least total traffic
    assert by_curve["hilbert"]["total_traffic"] == min(r["total_traffic"] for r in rows)
    assert by_curve["hilbert"]["max_link_load"] <= by_curve["rowmajor"]["max_link_load"]


@pytest.mark.paper_artifact("ext-engine-speedup")
def test_batched_engine_speedup(benchmark, scale, report):
    """Batched NumPy simulator vs the pure-Python reference oracle.

    Stresses the engines with the paper's "all of the processors are
    trying to communicate at the same time" scenario — every processor
    sends to ``k`` random peers — rather than the (sparse) NFI boundary
    traffic.  Both engines must agree exactly; the batched engine is the
    one the experiments actually run.
    """
    import numpy as np

    from repro.fmm import CommunicationEvents

    k, p = bench_args(scale, tiny=(4, 256), small=(25, 1_024), paper=(50, 4_096))
    rng = np.random.default_rng(23)
    src = np.repeat(np.arange(p, dtype=np.int64), k)
    dst = rng.integers(0, p, src.size)
    events = CommunicationEvents(component="stress")
    events.add(src, dst)
    net = make_topology("torus", p, processor_curve="hilbert")

    fast = benchmark.pedantic(
        simulate_exchange, args=(events, net), kwargs={"engine": "batched"},
        rounds=1, iterations=1,
    )
    t0 = time.perf_counter()
    rebatched = simulate_exchange(events, net, engine="batched")
    t1 = time.perf_counter()
    slow = simulate_exchange(events, net, engine="reference")
    t2 = time.perf_counter()
    assert fast == slow == rebatched
    batched_s, reference_s = t1 - t0, t2 - t1
    speedup = reference_s / batched_s if batched_s else float("inf")
    report(
        f"Batched vs reference simulator engine (scale={scale.name})",
        format_rows(
            [
                {
                    "messages": fast.num_messages,
                    "makespan": fast.makespan,
                    "batched_s": round(batched_s, 3),
                    "reference_s": round(reference_s, 3),
                    "speedup": round(speedup, 1),
                }
            ],
            ["messages", "makespan", "batched_s", "reference_s", "speedup"],
        ),
    )
