"""Contention-extension ablation: link loads under XY routing.

Future-work item (i) of §VIII asks how network contention interacts with
the SFC choice; this bench routes the near-field traffic of every
same-SFC pairing on a torus and reports maximum and mean link load next
to the (contention-unaware) ACD, showing that the ACD ranking survives
when congestion is taken into account.
"""

from __future__ import annotations

import pytest

from repro.contention import link_loads
from repro.distributions import get_distribution
from repro.experiments.reporting import format_rows
from repro.fmm import nfi_events
from repro.metrics import compute_acd
from repro.partition import partition_particles
from repro.sfc.registry import PAPER_CURVES
from repro.topology import make_topology


def contention_table(num_particles: int, order: int, num_processors: int):
    particles = get_distribution("uniform").sample(num_particles, order, rng=5)
    rows = []
    for curve in PAPER_CURVES:
        net = make_topology("torus", num_processors, processor_curve=curve)
        assignment = partition_particles(particles, curve, num_processors)
        events = nfi_events(assignment)
        loads = link_loads(events, net)
        rows.append(
            {
                "curve": curve,
                "acd": compute_acd(events, net).acd,
                "max_link_load": loads.max_load,
                "mean_link_load": loads.mean_load,
                "total_traffic": loads.total_traffic,
            }
        )
    return rows


@pytest.mark.paper_artifact("ext-contention")
def test_contention_ablation(benchmark, scale, report):
    if scale.name == "paper":
        args = (250_000, 10, 65_536)
    else:
        args = (20_000, 8, 1_024)
    rows = benchmark.pedantic(contention_table, args=args, rounds=1, iterations=1)
    report(
        f"Contention extension — NFI link loads on a torus (scale={scale.name})",
        format_rows(rows, ["curve", "acd", "max_link_load", "mean_link_load", "total_traffic"]),
    )
    by_curve = {r["curve"]: r for r in rows}
    # the ACD winner also carries the least total traffic
    assert by_curve["hilbert"]["total_traffic"] == min(r["total_traffic"] for r in rows)
    assert by_curve["hilbert"]["max_link_load"] <= by_curve["rowmajor"]["max_link_load"]
