"""Contention-simulation ablation: does the ACD ranking survive queueing?

§IV's note — "this manner of calculating the distance renders our model
contention-unaware" — leaves open whether the SFC recommendations hold
once messages queue on real links.  This bench replays the near-field
exchange through the store-and-forward simulator for every same-SFC
pairing on a torus and compares makespans with the ACD.

Regime note: at very light loads the exchange is latency-dominated
(makespan ≈ the longest single routed path) and the worst *single* seam
message decides the outcome, which can briefly favour row-major; the
bench uses a load where per-link congestion dominates — the regime the
paper's "all processors communicate at the same time" framing implies —
and there the ACD ranking carries over to wall-clock makespan.
"""

from __future__ import annotations

import os

import pytest

from repro.contention import simulate_exchange
from repro.distributions import get_distribution
from repro.experiments.reporting import format_rows
from repro.fmm import nfi_events
from repro.metrics import compute_acd
from repro.partition import partition_particles
from repro.sfc.registry import PAPER_CURVES
from repro.topology import make_topology


def simulation_table(num_particles: int, order: int, num_processors: int):
    particles = get_distribution("uniform").sample(num_particles, order, rng=17)
    rows = []
    for curve in PAPER_CURVES:
        net = make_topology("torus", num_processors, processor_curve=curve)
        events = nfi_events(partition_particles(particles, curve, num_processors))
        sim = simulate_exchange(events, net)
        rows.append(
            {
                "curve": curve,
                "acd": compute_acd(events, net).acd,
                "makespan": sim.makespan,
                "mean_latency": sim.mean_latency,
                "congestion": sim.congestion,
                "schedule_stretch": sim.stretch_over_bounds,
            }
        )
    return rows


@pytest.mark.paper_artifact("ext-simulation")
def test_contention_simulation(benchmark, scale, report):
    if os.environ.get("REPRO_BENCH_TINY"):
        args = (2_000, 6, 256)
    elif scale.name == "paper":
        args = (50_000, 9, 4_096)
    else:
        args = (20_000, 8, 1_024)
    rows = benchmark.pedantic(simulation_table, args=args, rounds=1, iterations=1)
    report(
        f"Store-and-forward simulation of the NFI exchange (scale={scale.name})",
        format_rows(
            rows,
            ["curve", "acd", "makespan", "mean_latency", "congestion", "schedule_stretch"],
        ),
    )
    if os.environ.get("REPRO_BENCH_TINY"):
        return  # latency-dominated regime (see docstring): ranking not meaningful
    by = {r["curve"]: r for r in rows}
    # the ACD winner also finishes the contended exchange first
    assert by["hilbert"]["makespan"] == min(r["makespan"] for r in rows)
    assert by["rowmajor"]["makespan"] == max(r["makespan"] for r in rows)
