"""Kernel-tier speedups: table-driven Hilbert and the compiled backend.

Two before/after comparisons, both bit-identical by construction:

* the retained per-level rotation kernels (``loop_encode`` /
  ``skilling_encode``) vs the table-driven state machines that replaced
  them inside :class:`~repro.sfc.hilbert.HilbertCurve` / ``Hilbert3D``,
  at the paper's 4096-side (order 12) 2D tier and the order-7 3D tier;
* the pure-NumPy vs compiled ``repro.kernels`` backends for the CSR
  expansion and the histogram-ACD gather+dot at the 4096-rank tier
  (skipped gracefully when the optional extension was not built).

Each run appends one record to ``benchmarks/BENCH_kernels.json`` so the
trajectory across commits stays visible.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.kernels import numpy_impl
from repro.runtime import configure
from repro.sfc.curves3d import Hilbert3D, skilling_decode, skilling_encode
from repro.sfc.hilbert import HilbertCurve, loop_decode, loop_encode

TRAJECTORY = Path(__file__).parent / "BENCH_kernels.json"

_TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
N_POINTS = 20_000 if _TINY else 1_000_000
N_EVENTS = 20_000 if _TINY else 2_000_000
ORDER_2D = 12  # side 4096, the paper's largest 2D lattice
ORDER_3D = 7
RANKS = 4_096
# Throughput gates (tiny CI sizes are dominated by fixed overheads).
FLOOR_2D = 1.0 if _TINY else 3.0
FLOOR_3D = 1.0 if _TINY else 3.0


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(record)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def test_hilbert2d_table_vs_loop(report):
    side = 1 << ORDER_2D
    rng = np.random.default_rng(0)
    x = rng.integers(0, side, N_POINTS)
    y = rng.integers(0, side, N_POINTS)
    curve = HilbertCurve(order=ORDER_2D)
    idx = curve.encode(x, y)  # warm-up builds the chunk tables

    assert np.array_equal(idx, loop_encode(side, x, y))
    dx, dy = curve.decode(idx)
    lx, ly = loop_decode(side, idx)
    assert np.array_equal(dx, lx) and np.array_equal(dy, ly)

    loop_enc_s = _best_of(lambda: loop_encode(side, x, y))
    table_enc_s = _best_of(lambda: curve.encode(x, y))
    loop_dec_s = _best_of(lambda: loop_decode(side, idx))
    table_dec_s = _best_of(lambda: curve.decode(idx))

    record = {
        "bench": "hilbert2d",
        "tiny": _TINY,
        "order": ORDER_2D,
        "points": N_POINTS,
        "loop_encode_s": round(loop_enc_s, 4),
        "table_encode_s": round(table_enc_s, 4),
        "loop_decode_s": round(loop_dec_s, 4),
        "table_decode_s": round(table_dec_s, 4),
        "encode_speedup": round(loop_enc_s / table_enc_s, 2),
        "decode_speedup": round(loop_dec_s / table_dec_s, 2),
    }
    append_trajectory(record)
    report("Hilbert 2D: table-driven vs rotation loop", json.dumps(record, indent=2))
    assert record["encode_speedup"] >= FLOOR_2D
    assert record["decode_speedup"] >= FLOOR_2D


def test_hilbert3d_table_vs_loop(report):
    side = 1 << ORDER_3D
    rng = np.random.default_rng(1)
    x = rng.integers(0, side, N_POINTS)
    y = rng.integers(0, side, N_POINTS)
    z = rng.integers(0, side, N_POINTS)
    curve = Hilbert3D(order=ORDER_3D)
    idx = curve.encode(x, y, z)

    assert np.array_equal(idx, skilling_encode(ORDER_3D, x, y, z))
    assert all(
        np.array_equal(a, b)
        for a, b in zip(curve.decode(idx), skilling_decode(ORDER_3D, idx))
    )

    loop_enc_s = _best_of(lambda: skilling_encode(ORDER_3D, x, y, z))
    table_enc_s = _best_of(lambda: curve.encode(x, y, z))
    loop_dec_s = _best_of(lambda: skilling_decode(ORDER_3D, idx))
    table_dec_s = _best_of(lambda: curve.decode(idx))

    record = {
        "bench": "hilbert3d",
        "tiny": _TINY,
        "order": ORDER_3D,
        "points": N_POINTS,
        "loop_encode_s": round(loop_enc_s, 4),
        "table_encode_s": round(table_enc_s, 4),
        "loop_decode_s": round(loop_dec_s, 4),
        "table_decode_s": round(table_dec_s, 4),
        "encode_speedup": round(loop_enc_s / table_enc_s, 2),
        "decode_speedup": round(loop_dec_s / table_dec_s, 2),
    }
    append_trajectory(record)
    report("Hilbert 3D: table-driven vs Skilling loop", json.dumps(record, indent=2))
    assert record["encode_speedup"] >= FLOOR_3D
    assert record["decode_speedup"] >= FLOOR_3D


def test_backend_kernels_numpy_vs_native(report):
    rng = np.random.default_rng(2)
    lengths = rng.integers(0, 24, N_EVENTS // 8).astype(np.int64)
    matrix = rng.integers(0, 64, (RANKS, RANKS)).astype(np.int32)
    src = rng.integers(0, RANKS, N_EVENTS).astype(np.int64)
    dst = rng.integers(0, RANKS, N_EVENTS).astype(np.int64)
    weights = rng.integers(1, 9, N_EVENTS).astype(np.int64)

    numpy_csr_s = _best_of(lambda: numpy_impl.csr_expand(lengths))
    numpy_dot_s = _best_of(lambda: numpy_impl.histogram_dot(matrix, src, dst, weights))
    record = {
        "bench": "backend_kernels",
        "tiny": _TINY,
        "native_available": kernels.native_available(),
        "rows": int(lengths.size),
        "events": N_EVENTS,
        "ranks": RANKS,
        "numpy_csr_s": round(numpy_csr_s, 4),
        "numpy_histogram_dot_s": round(numpy_dot_s, 4),
    }

    if kernels.native_available():
        with configure(kernel_backend="native"):
            assert kernels.active_backend() == "native"
            native_csr = kernels._native.csr_expand(lengths)
            assert all(
                np.array_equal(a, b)
                for a, b in zip(native_csr, numpy_impl.csr_expand(lengths))
            )
            assert kernels._native.histogram_dot(
                matrix, src, dst, weights
            ) == numpy_impl.histogram_dot(matrix, src, dst, weights)
            native_csr_s = _best_of(lambda: kernels._native.csr_expand(lengths))
            native_dot_s = _best_of(
                lambda: kernels._native.histogram_dot(matrix, src, dst, weights)
            )
        record.update(
            {
                "native_csr_s": round(native_csr_s, 4),
                "native_histogram_dot_s": round(native_dot_s, 4),
                "csr_speedup": round(numpy_csr_s / native_csr_s, 2),
                "histogram_dot_speedup": round(numpy_dot_s / native_dot_s, 2),
            }
        )

    append_trajectory(record)
    report("Backend kernels: NumPy vs compiled", json.dumps(record, indent=2))
