"""Micro-benchmarks of the computational kernels.

These are conventional multi-round timing benchmarks (unlike the
``rounds=1`` artefact regenerations): curve encoding throughput,
topology distance throughput and FMM event generation, which together
dominate every experiment's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import get_distribution
from repro.fmm import ffi_events, nfi_events
from repro.metrics import compute_acd
from repro.partition import partition_particles
from repro.sfc import get_curve
from repro.sfc.registry import PAPER_CURVES
from repro.topology import make_topology

N_POINTS = 1_000_000
ORDER = 10


@pytest.fixture(scope="module")
def coords():
    rng = np.random.default_rng(0)
    side = 1 << ORDER
    return rng.integers(0, side, N_POINTS), rng.integers(0, side, N_POINTS)


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_encode_throughput(benchmark, name, coords):
    curve = get_curve(name, ORDER)
    x, y = coords
    benchmark(curve.encode, x, y)


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_decode_throughput(benchmark, name):
    curve = get_curve(name, ORDER)
    idx = np.arange(N_POINTS, dtype=np.int64)
    benchmark(curve.decode, idx)


@pytest.mark.parametrize("topo", ["torus", "mesh", "hypercube", "quadtree", "ring"])
def test_distance_throughput(benchmark, topo):
    net = make_topology(topo, 4096, processor_curve="hilbert")
    rng = np.random.default_rng(1)
    a = rng.integers(0, 4096, N_POINTS)
    b = rng.integers(0, 4096, N_POINTS)
    benchmark(net.distance, a, b)


@pytest.fixture(scope="module")
def assignment():
    particles = get_distribution("uniform").sample(250_000, 10, rng=2)
    return partition_particles(particles, "hilbert", 4096)


def test_nfi_event_generation(benchmark, assignment):
    benchmark(nfi_events, assignment, 1, "chebyshev")


def test_ffi_event_generation(benchmark, assignment):
    benchmark(ffi_events, assignment)


def test_acd_evaluation(benchmark, assignment):
    net = make_topology("torus", 4096, processor_curve="hilbert")
    events = nfi_events(assignment)
    benchmark(compute_acd, events, net)
