"""Ablation benches for the reproduction's modelling choices (DESIGN.md §3)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    continuity_ablation,
    ffi_granularity_ablation,
    hypercube_layout_ablation,
    interpolation_reading_ablation,
    quadtree_convention_ablation,
)
from repro.experiments.reporting import format_rows


def _args(scale):
    if scale.name == "paper":
        return {"num_particles": 250_000, "order": 10, "num_processors": 65_536}
    return {"num_particles": 15_000, "order": 9, "num_processors": 1_024}


@pytest.mark.paper_artifact("ablation-quadtree")
def test_quadtree_convention(benchmark, scale, report):
    rows = benchmark.pedantic(
        quadtree_convention_ablation, kwargs=_args(scale), rounds=1, iterations=1
    )
    report(
        "Ablation: quadtree path-cost convention",
        format_rows([r.as_dict() for r in rows], ["variant", "nfi_acd", "ffi_acd"]),
    )
    by = {r.variant: r for r in rows}
    assert by["quadtree/levels"].ffi_acd == pytest.approx(by["quadtree/updown"].ffi_acd / 2)
    # the convention decides the Fig. 6(b) quadtree-vs-hypercube ranking
    assert by["quadtree/levels"].ffi_acd < by["hypercube"].ffi_acd < by["quadtree/updown"].ffi_acd


@pytest.mark.paper_artifact("ablation-granularity")
def test_ffi_granularity(benchmark, scale, report):
    rows = benchmark.pedantic(
        ffi_granularity_ablation, kwargs=_args(scale), rounds=1, iterations=1
    )
    report(
        "Ablation: far-field event granularity (§III cells vs §IV processors)",
        format_rows([r.as_dict() for r in rows], ["variant", "nfi_acd", "ffi_acd"]),
    )
    by = {r.variant: r for r in rows}
    # deduplication removes short repeated transfers first, raising the mean
    assert by["granularity=processor"].ffi_acd > by["granularity=cell"].ffi_acd


@pytest.mark.paper_artifact("ablation-interpolation")
def test_interpolation_readings(benchmark, scale, report):
    rows = benchmark.pedantic(
        interpolation_reading_ablation, kwargs=_args(scale), rounds=1, iterations=1
    )
    report(
        "Ablation: three readings of the far-field upward pass "
        "(ffi_acd column = upward-pass ACD)",
        format_rows([r.as_dict() for r in rows], ["variant", "ffi_acd"]),
    )
    by = {r.variant: r.ffi_acd for r in rows}
    # each literal reading moves the traffic further up the tree
    assert (
        by["cell parent-child (§III)"]
        < by["processor dedup (§IV 7)"]
        < by["quadrant log-tree (§IV 5-6)"]
    )


@pytest.mark.paper_artifact("ablation-hypercube")
def test_hypercube_layout(benchmark, scale, report):
    rows = benchmark.pedantic(
        hypercube_layout_ablation, kwargs=_args(scale), rounds=1, iterations=1
    )
    report(
        "Ablation: hypercube rank labelling (identity vs Gray embedding)",
        format_rows([r.as_dict() for r in rows], ["variant", "nfi_acd", "ffi_acd"]),
    )
    by = {r.variant: r for r in rows}
    # Gray labels make consecutive ranks adjacent: NFI traffic gets cheaper
    assert by["layout=gray"].nfi_acd < by["layout=identity"].nfi_acd


@pytest.mark.paper_artifact("ablation-continuity")
def test_continuity(benchmark, scale, report):
    rows = benchmark.pedantic(
        continuity_ablation, kwargs=_args(scale), rounds=1, iterations=1
    )
    report(
        "Ablation: continuity (snake) vs recursion (Hilbert) vs neither (row-major)",
        format_rows([r.as_dict() for r in rows], ["variant", "nfi_acd", "ffi_acd"]),
    )
    by = {r.variant: r for r in rows}
    assert by["snake"].nfi_acd < by["rowmajor"].nfi_acd  # continuity helps...
    assert by["hilbert"].nfi_acd < by["snake"].nfi_acd  # ...recursion helps more
