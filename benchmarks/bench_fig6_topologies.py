"""Regenerate Fig. 6 — NFI/FFI ACD across network topologies (§VI-B)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, format_topology_study, run_study


@pytest.mark.paper_artifact("fig6")
def test_fig6_topologies(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    result = benchmark.pedantic(run_study, args=("fig6", ctx), rounds=1, iterations=1)
    report(f"Fig. 6 (scale={scale.name})", format_topology_study(result))
    # shape checks (paper's text, §VI-B)
    for curve in ("zcurve", "gray"):
        plotted = {t: result.nfi[t][curve] for t in ("mesh", "torus", "quadtree", "hypercube")}
        assert min(plotted, key=plotted.get) == "hypercube"
    for curve in ("hilbert", "zcurve", "gray"):
        assert result.nfi["bus"][curve] > result.nfi["torus"][curve]
        assert result.nfi["ring"][curve] > result.nfi["torus"][curve]
