"""Regenerate the §VI-C parametric sweeps (radius, input size, distribution)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, format_sweep, run_study


@pytest.mark.paper_artifact("sec6c-radius")
def test_radius_sweep(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    result = benchmark.pedantic(run_study, args=("sweep_radius", ctx), rounds=1, iterations=1)
    report(f"§VI-C radius sweep (scale={scale.name})", format_sweep(result))
    # 'larger radii ... result in higher ACD values' but never reorder
    for curve in result.curves:
        series = result.nfi[curve]
        assert series[-1] >= series[0]
    for i in range(len(result.values)):
        snapshot = {c: result.nfi[c][i] for c in result.curves}
        assert min(snapshot, key=snapshot.get) == "hilbert"


@pytest.mark.paper_artifact("sec6c-size")
def test_input_size_sweep(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    result = benchmark.pedantic(run_study, args=("sweep_input_size", ctx), rounds=1, iterations=1)
    report(f"§VI-C input-size sweep (scale={scale.name})", format_sweep(result))
    for i in range(len(result.values)):
        snapshot = {c: result.nfi[c][i] for c in result.curves}
        assert min(snapshot, key=snapshot.get) == "hilbert"


@pytest.mark.paper_artifact("sec6c-distribution")
def test_distribution_sweep(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    result = benchmark.pedantic(run_study, args=("sweep_distribution", ctx), rounds=1, iterations=1)
    report(f"§VI-C distribution sweep (scale={scale.name})", format_sweep(result))
    # 'NFI best for uniform, followed by exponential and normal'
    idx = {v: i for i, v in enumerate(result.values)}
    hil = result.nfi["hilbert"]
    assert hil[idx["uniform"]] < hil[idx["exponential"]] < hil[idx["normal"]]
