"""3D validation bench (future-work item ii): does 2D hold in 3D?"""

from __future__ import annotations

import pytest

from repro.experiments import (
    StudyContext,
    plan_anns3d_study,
    plan_study3d,
    run_study,
)
from repro.experiments.reporting import format_series
from repro.experiments.study3d import format_study3d


def _plan(ctx, scale):
    if scale.name == "paper":
        return plan_study3d(ctx, num_particles=250_000, order=7, num_processors=32_768)
    return plan_study3d(ctx, num_particles=20_000, order=6, num_processors=4_096)


@pytest.mark.paper_artifact("ext-3d-acd")
def test_3d_acd_validation(benchmark, scale, report):
    ctx = StudyContext(scale=scale, trials=3 if scale.name == "paper" else 2)
    plan = _plan(ctx, scale)
    result = benchmark.pedantic(
        run_study, args=("validate3d", ctx), kwargs={"plan": plan}, rounds=1, iterations=1
    )
    report(f"3D ACD validation (scale={scale.name})", format_study3d(result))
    # the 2D conclusions that must carry over:
    for topo in result.topologies:
        row = result.nfi[topo]
        assert row["hilbert3d"] < row["rowmajor3d"], topo  # Hilbert >> row-major
    torus = result.nfi["torus3d"]
    assert min(torus, key=torus.get) == "hilbert3d"


@pytest.mark.paper_artifact("ext-3d-anns")
def test_3d_anns(benchmark, scale, report):
    orders = (1, 2, 3, 4, 5) if scale.name == "paper" else (1, 2, 3, 4)
    ctx = StudyContext(scale=scale)
    plan = plan_anns3d_study(ctx, orders=orders)
    result = benchmark.pedantic(
        run_study, args=("anns3d", ctx), kwargs={"plan": plan}, rounds=1, iterations=1
    )
    series = result.values
    report(
        f"3D ANNS sweep (scale={scale.name})",
        format_series(series, [1 << k for k in orders], "3D ANNS (r=1)", "cube side"),
    )
    # the 'surprising' Fig. 5 ordering also holds in 3D
    final = {c: v[-1] for c, v in series.items()}
    assert final["morton3d"] < final["hilbert3d"] < final["gray3d"]
    assert final["rowmajor3d"] < final["hilbert3d"]
