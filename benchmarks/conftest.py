"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one paper artefact (table or
figure) and prints the rows/series the paper reports, while
pytest-benchmark records how long the regeneration takes.  Benchmarks
run at ``small`` scale by default; ``REPRO_SCALE=paper`` switches to the
exact published workload sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import active_scale


def pytest_configure(config):
    # benchmarks live outside tests/; make pytest pick them up by name
    config.addinivalue_line("markers", "paper_artifact(name): paper table/figure id")


@pytest.fixture(scope="session")
def scale():
    """The active workload scale (small unless REPRO_SCALE=paper)."""
    return active_scale()


@pytest.fixture(scope="session")
def report(request):
    """Print a regenerated artefact under a clear banner."""

    def _report(title: str, body: str) -> None:
        capman = request.config.pluginmanager.getplugin("capturemanager")
        with capman.global_and_fixture_disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

    return _report
