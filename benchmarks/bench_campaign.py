"""Campaign-grid speedup: shared event artifacts vs per-case generation.

The paper's §VI grid evaluates six topologies x four processor-order
SFCs against a fixed particle workload.  Event generation (particles →
assignment → NFI/FFI events) depends only on the instance fields, so
the grouped campaign runner generates each trial's events once per
particle curve and broadcasts the compacted pair histograms across all
six networks; the per-case path regenerates them for every network,
exactly as the pre-artifact runner did.

Both paths must produce bit-identical ``CaseResult`` rows; the measured
speedup is appended to ``benchmarks/BENCH_campaign.json`` so the
trajectory across commits stays visible.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.artifacts import EventArtifactCache, set_event_cache
from repro.experiments.campaign import case_groups, format_campaign, run_campaign
from repro.experiments.config import FmmCase
from repro.experiments.runner import run_case
from repro.sfc.registry import PAPER_CURVES
from repro.topology.registry import PAPER_TOPOLOGIES

TRAJECTORY = Path(__file__).parent / "BENCH_campaign.json"


def bench_args(scale, tiny: tuple, small: tuple, paper: tuple) -> tuple:
    """Workload size for the active scale (see bench_contention)."""
    if os.environ.get("REPRO_BENCH_TINY"):
        return tiny
    return paper if scale.name == "paper" else small


def paper_grid(num_particles: int, order: int, num_processors: int, radius: int):
    """The §VI campaign grid: 6 topologies x 4 same-SFC pairings."""
    return [
        FmmCase(
            num_particles=num_particles,
            order=order,
            num_processors=num_processors,
            topology=topology,
            particle_curve=curve,
            processor_curve=curve,
            distribution="uniform",
            radius=radius,
        )
        for curve in PAPER_CURVES
        for topology in PAPER_TOPOLOGIES
    ]


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(record)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


@pytest.mark.paper_artifact("ext-campaign-sharing")
def test_shared_artifact_campaign_speedup(benchmark, scale, report):
    n, order, p, radius, trials = bench_args(
        scale,
        tiny=(2_000, 6, 256, 2, 2),
        small=(60_000, 9, 1_024, 4, 3),
        paper=(250_000, 10, 4_096, 4, 3),
    )
    cases = paper_grid(n, order, p, radius)
    groups = case_groups(cases)

    previous = set_event_cache(EventArtifactCache())
    try:
        # Warm-up pass: pays the lazy distance-matrix builds so every
        # timed pass below runs against the same warm topology cache.
        shared = benchmark.pedantic(
            run_campaign, args=(cases,), kwargs={"trials": trials, "seed": 2013},
            rounds=1, iterations=1,
        )

        # Cold shared pass (the headline number): a fresh artifact cache
        # forces each instance's events to be generated once per trial,
        # then broadcast across its six networks.
        set_event_cache(EventArtifactCache())
        t0 = time.perf_counter()
        cold = run_campaign(cases, trials=trials, seed=2013)
        t1 = time.perf_counter()

        # Warm shared pass: a repeated study served from the cache.
        warm = run_campaign(cases, trials=trials, seed=2013)
        t2 = time.perf_counter()

        # Per-case baseline: disable the artifact cache so every case
        # regenerates its events per trial, as the pre-artifact runner did.
        set_event_cache(EventArtifactCache(max_bytes=0))
        t3 = time.perf_counter()
        per_case = [run_case(c, trials=trials, seed=2013, jobs=1) for c in cases]
        t4 = time.perf_counter()
    finally:
        set_event_cache(previous)

    assert shared == cold == warm == per_case  # bit-identical CaseResult rows
    shared_s, warm_s, per_case_s = t1 - t0, t2 - t1, t4 - t3
    speedup = per_case_s / shared_s if shared_s else float("inf")
    record = {
        "scale": scale.name,
        "tiny": bool(os.environ.get("REPRO_BENCH_TINY")),
        "num_cases": len(cases),
        "instance_groups": len(groups),
        "trials": trials,
        "num_particles": n,
        "order": order,
        "num_processors": p,
        "radius": radius,
        "per_case_s": round(per_case_s, 3),
        "shared_s": round(shared_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "warm_speedup": round(per_case_s / warm_s if warm_s else float("inf"), 2),
    }
    append_trajectory(record)
    report(
        f"Campaign grid: shared artifacts vs per-case generation (scale={scale.name})",
        json.dumps(record, indent=2) + "\n\n" + format_campaign(shared),
    )
    # 6 networks share each instance's events; generation dominates, so
    # the end-to-end win must stay >= 5x (relaxed under tiny CI sizes).
    floor = 2.0 if record["tiny"] else 5.0
    assert speedup >= floor, f"speedup {speedup:.2f}x below the {floor}x floor"
