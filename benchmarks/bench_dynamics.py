"""Dynamic repartitioning: cold step loop vs warm per-step store replay.

The ``dynamic`` study keys every (motion, topology, curve, step) point
individually in the result store, so a warm rerun must replay the whole
time series from disk without evolving a single step.  This benchmark
times the cold loop (trajectory evolution + per-step event generation +
metric evaluation) against the warm replay and asserts the replay is
computation-free (the step evaluator is patched to forbid execution) and
bit-identical.  Timings are appended to ``benchmarks/BENCH_dynamics.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.dynamics import clear_trajectory_cache
from repro.experiments.dynamics_study import DYNAMIC_STUDY, plan_dynamic_study
from repro.experiments.store import ResultStore
from repro.experiments.study import StudyContext, run_study

TRAJECTORY = Path(__file__).parent / "BENCH_dynamics.json"

SEED = 2013

#: Per-tier workloads: steps x particles are the cold loop's cost axes.
TIERS = {
    "tiny": dict(
        grid=(("drift", "uniform"), ("orbit", "clustered")),
        topologies=("mesh",),
        curves=("hilbert", "rowmajor"),
        steps=3,
        num_particles=300,
        order=6,
        num_processors=16,
    ),
    "small": dict(
        steps=8,
        num_particles=4_000,
        order=7,
        num_processors=64,
    ),
    "paper": dict(
        steps=16,
        num_particles=20_000,
        order=8,
        num_processors=256,
    ),
}


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(record)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


@pytest.mark.paper_artifact("ext-dynamic-repartitioning")
def test_dynamic_step_loop_cold_vs_warm(benchmark, scale, report, tmp_path, monkeypatch):
    if os.environ.get("REPRO_BENCH_TINY"):
        tier = "tiny"
    else:
        tier = "paper" if scale.name == "paper" else "small"
    params = TIERS[tier]
    store = ResultStore(tmp_path / "store")
    ctx = StudyContext(seed=SEED, store=store)
    plan = plan_dynamic_study(ctx, **params)

    def run():
        return run_study(DYNAMIC_STUDY, ctx, plan=plan)

    clear_trajectory_cache()
    t0 = time.perf_counter()
    cold = run()
    t1 = time.perf_counter()

    # Warm replay: every step loads from disk; computing any step at all
    # is a failure, so the evaluator is replaced with a tripwire.
    import repro.experiments.study as study_mod

    def forbidden(unit):
        raise AssertionError("step computed despite warm store")

    monkeypatch.setattr(study_mod, "execute_compute_unit", forbidden)
    clear_trajectory_cache()
    t2 = time.perf_counter()
    warm = benchmark.pedantic(run, rounds=1, iterations=1)
    t3 = time.perf_counter()

    assert warm == cold
    assert len(store) == len(plan.units)

    cold_s, warm_s = t1 - t0, t3 - t2
    record = {
        "tier": tier,
        "units": len(plan.units),
        "steps": params["steps"],
        "num_particles": params["num_particles"],
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "replay_speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
    }
    append_trajectory(record)
    report(
        f"Dynamic step loop: cold evolution vs warm store replay (tier={tier})",
        json.dumps(record, indent=2),
    )
