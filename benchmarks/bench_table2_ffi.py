"""Regenerate Table II — FFI ACD for 16 SFC pairings x 3 distributions (§VI-A)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, plan_sfc_pairs, run_study
from repro.experiments.reporting import format_matrix, pretty


@pytest.mark.paper_artifact("table2")
def test_table2_ffi(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    plan = plan_sfc_pairs(ctx, parts=("ffi",))
    result = benchmark.pedantic(
        run_study,
        args=("tables", ctx),
        kwargs={"plan": plan},
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_matrix(
            result.ffi[dist],
            result.processor_curves,
            result.particle_curves,
            title=f"Table II — {pretty(dist)} distribution, FFI ACD",
        )
        for dist in result.distributions
    ]
    report(f"Table II (scale={scale.name})", "\n\n".join(blocks))
    # shape check: recursive curves dominate the row-major pairing
    for dist in result.distributions:
        diag = {c: result.ffi[dist][c][c] for c in result.particle_curves}
        assert diag["hilbert"] < diag["rowmajor"]
        assert diag["zcurve"] < diag["rowmajor"]
