"""Regenerate Fig. 7 — ACD as a function of processor count (§VI-C)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, format_scaling_study, run_study


@pytest.mark.paper_artifact("fig7")
def test_fig7_scaling(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    result = benchmark.pedantic(run_study, args=("fig7", ctx), rounds=1, iterations=1)
    report(f"Fig. 7 (scale={scale.name})", format_scaling_study(result))
    # shape checks: Hilbert best throughout, row-major far worse at the
    # largest processor count (the paper drops those points as off-scale)
    last = len(result.processor_counts) - 1
    finals = {c: result.nfi[c][last] for c in result.curves}
    assert min(finals, key=finals.get) == "hilbert"
    assert finals["rowmajor"] > 2 * finals["hilbert"]
