"""Regenerate Table I — NFI ACD for 16 SFC pairings x 3 distributions (§VI-A)."""

from __future__ import annotations

import pytest

from repro.experiments import StudyContext, plan_sfc_pairs, run_study
from repro.experiments.reporting import format_matrix, pretty


@pytest.mark.paper_artifact("table1")
def test_table1_nfi(benchmark, scale, report):
    ctx = StudyContext(scale=scale, seed=2013)
    plan = plan_sfc_pairs(ctx, parts=("nfi",))
    result = benchmark.pedantic(
        run_study,
        args=("tables", ctx),
        kwargs={"plan": plan},
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_matrix(
            result.nfi[dist],
            result.processor_curves,
            result.particle_curves,
            title=f"Table I — {pretty(dist)} distribution, NFI ACD",
        )
        for dist in result.distributions
    ]
    report(f"Table I (scale={scale.name})", "\n\n".join(blocks))
    # shape check: Hilbert/Hilbert is the best cell, RM/RM the worst diagonal
    for dist in result.distributions:
        cells = result.nfi[dist]
        assert min(cells["hilbert"], key=cells["hilbert"].get) == "hilbert"
        diag = {c: cells[c][c] for c in result.particle_curves}
        assert max(diag, key=diag.get) == "rowmajor"
