"""Study-driver speedup: shared campaign lowering and the result store.

PR 3 routes every paper study through one driver
(:func:`repro.experiments.study.run_study`) that lowers the declared
case grid through the grouped campaign engine and persists per-case
results in the :class:`~repro.experiments.store.ResultStore`.  This
benchmark measures the fig6+fig7 pair — the two studies whose grids the
old hand-rolled loops executed case by case — three ways:

* **per-case baseline** — serial ``run_case`` per grid point with the
  event-artifact cache disabled, exactly what the pre-framework study
  loops did;
* **cold shared engine** — ``run_study`` into an empty store: instances
  share event generation (all six fig6 topologies of a curve reuse each
  trial's events) and every finished case is persisted;
* **warm store** — the same ``run_study`` calls again: every case loads
  from disk and zero trial computations run (asserted by patching the
  instance-trial entry point).

All three must agree bit-for-bit.  Timings are appended to
``benchmarks/BENCH_studies.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.artifacts import EventArtifactCache, set_event_cache
from repro.experiments.config import SMALL
from repro.experiments.runner import run_case
from repro.experiments.scaling_study import SCALING_STUDY, plan_scaling_study
from repro.experiments.store import ResultStore
from repro.experiments.study import StudyContext, run_study
from repro.experiments.topology_study import TOPOLOGY_STUDY, plan_topology_study

TRAJECTORY = Path(__file__).parent / "BENCH_studies.json"

# Per-tier workloads (cf. bench_campaign.bench_args): fig6 carries all
# of the pair's instance sharing (six topologies per curve), while fig7
# sweeps the processor count — an *instance* field, so its points share
# nothing and only ride the engine's fan-out.  The bench keeps fig7's
# axis modest so the measured speedup reflects the sharing the grouped
# engine exists to exploit.
TINY = dataclasses.replace(
    SMALL,
    name="bench-tiny",
    topo_particles=2_000,
    topo_order=6,
    topo_processors=256,
    topo_radius=2,
    scaling_particles=2_000,
    scaling_order=6,
    scaling_processors=(16, 64),
    trials=2,
)

SMALL_BENCH = dataclasses.replace(
    SMALL,
    name="bench-small",
    topo_particles=60_000,
    topo_order=9,
    topo_processors=1_024,
    topo_radius=4,
    scaling_particles=20_000,
    scaling_order=8,
    scaling_processors=(16, 64, 256),
    trials=3,
)

PAPER_BENCH = dataclasses.replace(
    SMALL,
    name="bench-paper",
    topo_particles=250_000,
    topo_order=10,
    topo_processors=4_096,
    topo_radius=4,
    scaling_particles=100_000,
    scaling_order=9,
    scaling_processors=(64, 256, 1_024, 4_096),
    trials=3,
)

SEED = 2013


def append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text())
    history.append(record)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _run_pair(ctx):
    """fig6 then fig7 through the shared study driver."""
    fig6 = run_study(TOPOLOGY_STUDY, ctx)
    fig7 = run_study(SCALING_STUDY, ctx)
    return fig6, fig7


@pytest.mark.paper_artifact("ext-study-driver")
def test_study_driver_speedup(benchmark, scale, report, tmp_path, monkeypatch):
    tiny = bool(os.environ.get("REPRO_BENCH_TINY"))
    if tiny:
        preset = TINY
    else:
        preset = PAPER_BENCH if scale.name == "paper" else SMALL_BENCH
    trials = preset.trials
    store = ResultStore(tmp_path / "store")
    ctx = StudyContext(scale=preset, seed=SEED, trials=trials, store=store)

    previous = set_event_cache(EventArtifactCache())
    try:
        # Warm-up pass (no store): pays the lazy distance-matrix builds
        # so the timed passes all see the same warm topology cache.
        benchmark.pedantic(
            _run_pair,
            args=(StudyContext(scale=preset, seed=SEED, trials=trials, store=None),),
            rounds=1,
            iterations=1,
        )

        # Per-case baseline: what the pre-framework study loops did —
        # one run_case per grid point, no event sharing at all.
        plans = (plan_topology_study(ctx), plan_scaling_study(ctx))
        cases = [unit.case for plan in plans for unit in plan.units]
        set_event_cache(EventArtifactCache(max_bytes=0))
        t0 = time.perf_counter()
        per_case = {
            c: run_case(c, trials=trials, seed=SEED, jobs=1) for c in cases
        }
        t1 = time.perf_counter()

        # Cold shared engine into an empty store.
        set_event_cache(EventArtifactCache())
        t2 = time.perf_counter()
        cold6, cold7 = _run_pair(ctx)
        t3 = time.perf_counter()

        # Warm store: zero trial computations allowed.
        import repro.experiments.campaign as campaign_mod

        def forbidden(*args, **kwargs):
            raise AssertionError("trial computed despite warm store")

        monkeypatch.setattr(campaign_mod, "run_instance_trial", forbidden)
        t4 = time.perf_counter()
        warm6, warm7 = _run_pair(ctx)
        t5 = time.perf_counter()
    finally:
        set_event_cache(previous)

    # The shared engine and the store must change nothing but the speed.
    assert (warm6, warm7) == (cold6, cold7)
    fig6_plan, fig7_plan = plans
    for unit in fig6_plan.units:
        topo, curve = unit.key
        assert cold6.nfi[topo][curve] == per_case[unit.case].nfi_acd
        assert cold6.ffi[topo][curve] == per_case[unit.case].ffi_acd
    counts = fig7_plan.meta["processor_counts"]
    for unit in fig7_plan.units:
        p, curve = unit.key
        assert cold7.nfi[curve][counts.index(p)] == per_case[unit.case].nfi_acd
        assert cold7.ffi[curve][counts.index(p)] == per_case[unit.case].ffi_acd

    per_case_s, shared_s, warm_s = t1 - t0, t3 - t2, t5 - t4
    speedup = per_case_s / shared_s if shared_s else float("inf")
    record = {
        "scale": preset.name,
        "tiny": tiny,
        "num_cases": len(cases),
        "trials": trials,
        "per_case_s": round(per_case_s, 3),
        "shared_s": round(shared_s, 3),
        "warm_store_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "store_entries": len(store),
        "store_hits": store.hits,
    }
    append_trajectory(record)
    report(
        f"Study driver: per-case loops vs shared engine vs warm store (scale={preset.name})",
        json.dumps(record, indent=2),
    )
    assert len(store) == len(cases)
    # fig6's six topologies share each curve's events; the pair must win
    # >= 3x end to end (relaxed under tiny CI sizes).
    floor = 1.5 if tiny else 3.0
    assert speedup >= floor, f"speedup {speedup:.2f}x below the {floor}x floor"
