"""Regenerate the §VII design guide: ACD of communication primitives.

§VII argues that the ACD of classic collectives "can be computed in
advance ... to allow algorithm designers to select the appropriate SFCs
for data separation and processor ranking".  This bench evaluates every
primitive on every processor-ordering of a torus and prints the
resulting decision matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import format_matrix
from repro.metrics import compute_acd
from repro.primitives import allgather_ring, allreduce, alltoall, broadcast, scan
from repro.sfc.registry import PAPER_CURVES
from repro.topology import make_topology

PRIMITIVES = {
    "broadcast": broadcast,
    "allreduce": allreduce,
    "allgather": allgather_ring,
    "alltoall": alltoall,
    "scan": scan,
}


def primitive_matrix(num_processors: int) -> dict[str, dict[str, float]]:
    participants = np.arange(num_processors)
    events = {name: fn(participants) for name, fn in PRIMITIVES.items()}
    matrix: dict[str, dict[str, float]] = {}
    for prim, ev in events.items():
        matrix[prim] = {}
        for curve in PAPER_CURVES:
            net = make_topology("torus", num_processors, processor_curve=curve)
            matrix[prim][curve] = compute_acd(ev, net).acd
    return matrix


@pytest.mark.paper_artifact("sec7")
def test_primitive_design_guide(benchmark, scale, report):
    p = 4096 if scale.name == "paper" else 256
    matrix = benchmark.pedantic(primitive_matrix, args=(p,), rounds=1, iterations=1)
    report(
        f"§VII primitive ACD on a {p}-processor torus (scale={scale.name})",
        format_matrix(
            matrix,
            list(PRIMITIVES),
            list(PAPER_CURVES),
            title="ACD per {primitive, processor-order SFC}",
            row_axis="Primitive",
            col_axis="Processor Order",
        ),
    )
    # unit-stride allgather must be optimal on the Hilbert layout
    assert matrix["allgather"]["hilbert"] == min(matrix["allgather"].values())
