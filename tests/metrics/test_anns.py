"""Tests for the ANNS metric and its radius generalisation (§V)."""

from __future__ import annotations

import pytest

from repro.metrics import (
    analytic_anns_gray,
    analytic_anns_rowmajor,
    analytic_anns_zcurve,
    anns,
    neighbor_stretch,
)
from repro.sfc import get_curve
from repro.sfc.registry import PAPER_CURVES


def brute_force_stretch(curve, radius):
    """O(n^2) stretch over all in-radius pairs."""
    pts = curve.ordering()
    n = pts.shape[0]
    total, count, worst = 0.0, 0, 0.0
    for i in range(n):
        for j in range(i + 1, n):
            d = abs(int(pts[i, 0] - pts[j, 0])) + abs(int(pts[i, 1] - pts[j, 1]))
            if 1 <= d <= radius:
                s = abs(i - j) / d
                total += s
                count += 1
                worst = max(worst, s)
    return total, count, worst


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name", PAPER_CURVES)
    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_matches(self, name, radius):
        curve = get_curve(name, 3)
        result = neighbor_stretch(curve, radius=radius)
        total, count, worst = brute_force_stretch(curve, radius)
        assert result.count == count
        assert result.total_stretch == pytest.approx(total)
        assert result.max_stretch == pytest.approx(worst)


class TestAnalyticForms:
    @pytest.mark.parametrize("order", range(1, 9))
    def test_rowmajor_closed_form(self, order):
        assert anns("rowmajor", order) == pytest.approx(analytic_anns_rowmajor(order))

    @pytest.mark.parametrize("order", range(1, 9))
    def test_zcurve_closed_form(self, order):
        assert anns("zcurve", order) == pytest.approx(analytic_anns_zcurve(order))

    @pytest.mark.parametrize("order", range(1, 9))
    def test_gray_closed_form(self, order):
        assert anns("gray", order) == pytest.approx(analytic_anns_gray(order))

    def test_rowmajor_value(self):
        assert analytic_anns_rowmajor(4) == 8.5  # (16 + 1) / 2

    def test_gray_asymptotically_1_5x_zcurve(self):
        for order in (7, 8, 9):
            assert analytic_anns_gray(order) == pytest.approx(
                1.5 * analytic_anns_zcurve(order), rel=0.02
            )

    def test_degenerate_lattice(self):
        assert analytic_anns_rowmajor(0) == 0.0
        assert analytic_anns_zcurve(0) == 0.0
        assert analytic_anns_gray(0) == 0.0


class TestPaperFindings:
    """§V: 'the Z-curve and row major significantly outperform the Gray
    code and the Hilbert curve' — and the ordering is radius-stable."""

    @pytest.mark.parametrize("order", [5, 6, 7])
    def test_z_and_rowmajor_beat_hilbert_and_gray(self, order):
        vals = {name: anns(name, order) for name in PAPER_CURVES}
        assert vals["zcurve"] < vals["hilbert"]
        assert vals["zcurve"] < vals["gray"]
        assert vals["rowmajor"] < vals["hilbert"]
        assert vals["rowmajor"] < vals["gray"]

    def test_z_equals_rowmajor(self):
        """Xu & Tirthapura's asymptotic equivalence is exact here."""
        for order in (3, 5, 7):
            assert anns("zcurve", order) == pytest.approx(anns("rowmajor", order))

    @pytest.mark.parametrize("radius", [2, 4, 6])
    def test_ordering_stable_across_radii(self, radius):
        """'irregardless the radius used, the relative ordering ... was the same'"""
        order = 6
        r1 = {n: neighbor_stretch(n, order, radius=1).mean for n in PAPER_CURVES}
        rr = {n: neighbor_stretch(n, order, radius=radius).mean for n in PAPER_CURVES}
        rank = lambda d: sorted(d, key=d.get)  # noqa: E731
        assert rank(r1) == rank(rr)

    def test_gap_grows_with_resolution(self):
        """'the differences between SFC performances increases'"""
        gap = lambda k: anns("gray", k) - anns("zcurve", k)  # noqa: E731
        assert gap(7) > gap(5) > gap(3)


class TestValidation:
    def test_radius_zero_rejected(self):
        with pytest.raises(ValueError):
            neighbor_stretch("hilbert", 4, radius=0)

    def test_name_without_order_rejected(self):
        with pytest.raises(ValueError):
            neighbor_stretch("hilbert")

    def test_curve_instance_accepted(self):
        curve = get_curve("hilbert", 4)
        assert neighbor_stretch(curve).mean == anns("hilbert", 4)

    def test_trivial_lattice(self):
        assert neighbor_stretch("hilbert", 0).count == 0
