"""Property tests: memory-bounded tiled ACD ≡ dense ≡ streaming.

The tiled path partitions the (src, dst) rank plane into budget-sized
tiles and reduces exact ``int64`` partials; these tests pin the
bit-identity the million-rank campaigns rest on, plus the tile-grid
edge cases (single-cell tiles, non-divisible sides, boundary ranks,
empty tile rows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.fmm.events import CommunicationEvents
from repro.metrics.acd import (
    TILE_BYTES_PER_CELL,
    acd_breakdown,
    compute_acd,
    dense_matrix_bytes,
    iter_histogram_tiles,
    tile_side_for_budget,
)
from repro.runtime import configure
from repro.topology.registry import make_topology, topology_names

#: 64 ranks is valid for every registered topology.
P = 64


def random_events(rng: np.random.Generator, p: int, weighted: bool) -> CommunicationEvents:
    events = CommunicationEvents(component="random")
    for _ in range(rng.integers(1, 5)):
        n = int(rng.integers(1, 400))
        weights = rng.integers(0, 7, n) if weighted else None
        events.add(rng.integers(0, p, n), rng.integers(0, p, n), weights)
    return events


@pytest.mark.parametrize("topology_name", topology_names())
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_tiled_matches_dense_and_streaming(topology_name, weighted):
    topology = make_topology(topology_name, P, processor_curve="hilbert")
    rng = np.random.default_rng(sum(map(ord, topology_name)) * 3 + int(weighted))
    for _ in range(3):
        events = random_events(rng, P, weighted)
        histogram = events.compact(P)
        dense = compute_acd(histogram, topology, memory_budget=None)
        streamed = compute_acd(events, topology, memory_budget=None)
        assert dense == streamed
        # a budget far below the 16 KiB dense matrix forces the tiled path
        for budget in (32, 1000, 5000):
            assert compute_acd(histogram, topology, memory_budget=budget) == dense
            assert compute_acd(events, topology, memory_budget=budget) == dense
        # tiled without any cache (direct kernel evaluation per tile)
        assert compute_acd(histogram, topology, cache=None, memory_budget=1000) == dense


def test_tile_size_one_is_exact():
    topology = make_topology("torus", 16, processor_curve="hilbert")
    events = CommunicationEvents()
    events.add([0, 15, 7, 0], [15, 0, 7, 15], [3, 1, 2, 4])
    histogram = events.compact(16)
    dense = compute_acd(histogram, topology, memory_budget=None)
    # budget below 4*TILE_BYTES_PER_CELL -> isqrt(budget/32) <= 1 -> 1x1 tiles
    assert tile_side_for_budget(TILE_BYTES_PER_CELL, 16) == 1
    assert compute_acd(histogram, topology, memory_budget=TILE_BYTES_PER_CELL) == dense


def test_last_tile_boundary_ranks():
    """Pairs at rank p-1 land in a clipped edge tile and stay exact."""
    p = 30  # not divisible by most tile sides
    topology = make_topology("ring", p)
    events = CommunicationEvents()
    events.add([p - 1, p - 1, 0], [0, p - 1, p - 1], [7, 5, 2])
    histogram = events.compact(p)
    dense = compute_acd(histogram, topology, memory_budget=None)
    for budget in (TILE_BYTES_PER_CELL * k * k for k in (1, 2, 4, 7)):
        assert compute_acd(histogram, topology, memory_budget=budget) == dense


def test_iter_histogram_tiles_partitions_pairs():
    rng = np.random.default_rng(5)
    events = random_events(rng, P, weighted=True)
    histogram = events.compact(P)
    for tile_side in (1, 3, 7, 64, 100):
        tiles = list(iter_histogram_tiles(histogram, P, min(tile_side, P)))
        # every tile is non-empty, within its ranges, and the union is
        # a permutation of the histogram
        total_pairs = 0
        seen_keys = []
        for (r0, r1), (c0, c1), src, dst, weights in tiles:
            assert src.size > 0
            assert 0 <= r0 < r1 <= P and 0 <= c0 < c1 <= P
            assert r1 - r0 <= tile_side and c1 - c0 <= tile_side
            assert (src >= r0).all() and (src < r1).all()
            assert (dst >= c0).all() and (dst < c1).all()
            total_pairs += src.size
            seen_keys.append(src * P + dst)
        assert total_pairs == histogram.num_pairs
        np.testing.assert_array_equal(
            np.sort(np.concatenate(seen_keys)), histogram.flat_keys()
        )


def test_iter_histogram_tiles_empty_histogram():
    histogram = CommunicationEvents().compact(8)
    assert list(iter_histogram_tiles(histogram, 8, 3)) == []


def test_iter_histogram_tiles_rejects_bad_inputs():
    events = CommunicationEvents()
    events.add([0], [1])
    histogram = events.compact(4)
    with pytest.raises(ValueError, match="tile_side"):
        list(iter_histogram_tiles(histogram, 4, 0))
    with pytest.raises(ValueError, match="grid"):
        list(iter_histogram_tiles(histogram, 2, 1))


def test_tile_side_formula():
    assert tile_side_for_budget(2 << 30, 1 << 20) == 8192
    assert tile_side_for_budget(1, 100) == 1  # degrades, never fails
    assert tile_side_for_budget(1 << 40, 64) == 64  # clamped to p
    with pytest.raises(ValueError):
        tile_side_for_budget(0, 64)
    with pytest.raises(ValueError):
        tile_side_for_budget(1024, 0)
    assert dense_matrix_bytes(4096) == 4096 * 4096 * 4


def test_budget_resolves_from_runtime_config():
    topology = make_topology("torus", 16, processor_curve="hilbert")
    events = CommunicationEvents()
    events.add([0, 5], [9, 3], [2, 2])
    histogram = events.compact(16)
    dense = compute_acd(histogram, topology)
    with configure(memory_budget=64), obs.recording() as rec:
        assert compute_acd(histogram, topology) == dense
    assert rec.counters.get("acd.tiles", 0) > 0  # tiled path actually ran


def test_invalid_explicit_budget_rejected():
    topology = make_topology("ring", 4)
    events = CommunicationEvents()
    events.add([0], [1])
    with pytest.raises(ValueError, match="memory_budget"):
        compute_acd(events.compact(4), topology, memory_budget=0)


def test_acd_breakdown_forwards_budget():
    rng = np.random.default_rng(9)
    topology = make_topology("hypercube", P)
    phases = {name: random_events(rng, P, weighted=True) for name in ("a", "b")}
    unbounded = acd_breakdown(phases, topology, memory_budget=None)
    tiled = acd_breakdown(
        {name: ev.compact(P) for name, ev in phases.items()},
        topology,
        memory_budget=500,
    )
    assert unbounded == tiled


def test_tiled_observability():
    topology = make_topology("torus", P, processor_curve="hilbert")
    events = random_events(np.random.default_rng(2), P, weighted=False)
    histogram = events.compact(P)
    with obs.recording() as rec:
        compute_acd(histogram, topology, memory_budget=1000)
    (span,) = rec.find_spans("acd.tiled")
    assert span.attrs["processors"] == P
    assert rec.counters["acd.tiles"] > 0
    assert "acd.tile_bytes_peak" in rec.gauges
