"""Tests for the ACD metric itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fmm import CommunicationEvents
from repro.metrics import ACDResult, acd_breakdown, compute_acd
from repro.topology import make_topology


def events_of(pairs):
    ev = CommunicationEvents()
    if pairs:
        arr = np.asarray(pairs)
        ev.add(arr[:, 0], arr[:, 1])
    return ev


class TestACDResult:
    def test_mean(self):
        assert ACDResult(10, 4).acd == 2.5

    def test_empty_is_zero(self):
        assert ACDResult(0, 0).acd == 0.0

    def test_merged(self):
        merged = ACDResult(10, 4).merged(ACDResult(2, 2))
        assert merged.total_distance == 12 and merged.count == 6


class TestComputeACD:
    def test_hand_computed_bus(self):
        bus = make_topology("bus", 8)
        result = compute_acd(events_of([(0, 7), (1, 1), (2, 4)]), bus)
        assert result.total_distance == 7 + 0 + 2
        assert result.count == 3
        assert result.acd == 3.0

    def test_streams_over_chunks(self):
        bus = make_topology("bus", 8)
        ev = CommunicationEvents()
        ev.add([0], [7])
        ev.add([1], [2])
        result = compute_acd(ev, bus)
        assert result.total_distance == 8 and result.count == 2

    def test_empty_events(self):
        result = compute_acd(CommunicationEvents(), make_topology("ring", 8))
        assert result.count == 0 and result.acd == 0.0

    def test_rank_out_of_range_raises(self):
        bus = make_topology("bus", 4)
        with pytest.raises(ValueError):
            compute_acd(events_of([(0, 4)]), bus)

    @pytest.mark.parametrize("topo", ["bus", "ring", "mesh", "torus", "quadtree", "hypercube"])
    def test_self_communication_is_free(self, topo):
        net = make_topology(topo, 16)
        ranks = np.arange(16)
        ev = CommunicationEvents()
        ev.add(ranks, ranks)
        assert compute_acd(ev, net).acd == 0.0


class TestBreakdown:
    def test_combined_is_pooled_mean(self):
        bus = make_topology("bus", 16)
        phases = {
            "a": events_of([(0, 4)]),  # distance 4
            "b": events_of([(0, 1), (1, 2)]),  # distances 1, 1
        }
        out = acd_breakdown(phases, bus)
        assert out["a"].acd == 4.0
        assert out["b"].acd == 1.0
        assert out["combined"].acd == pytest.approx(6 / 3)

    def test_keys(self):
        out = acd_breakdown({"only": events_of([(0, 1)])}, make_topology("bus", 4))
        assert set(out) == {"only", "combined"}

    def test_reserved_phase_name_rejected(self):
        """A user phase named "combined" must not be silently overwritten."""
        from repro.errors import ConfigurationError

        phases = {"combined": events_of([(0, 1)]), "other": events_of([(1, 2)])}
        with pytest.raises(ConfigurationError, match="combined"):
            acd_breakdown(phases, make_topology("bus", 4))


class TestCacheIntegration:
    def test_cached_and_uncached_agree(self):
        from repro.topology.cache import TopologyCache

        net = make_topology("torus", 64, processor_curve="hilbert")
        rng = np.random.default_rng(3)
        ev = CommunicationEvents()
        # enough volume to force the cache over its lazy-build threshold
        ev.add(rng.integers(0, 64, 500), rng.integers(0, 64, 500))
        fresh = compute_acd(ev, net, cache=None)
        cached = compute_acd(ev, net, cache=TopologyCache())
        assert fresh == cached
