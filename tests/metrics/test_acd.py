"""Tests for the ACD metric itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fmm import CommunicationEvents
from repro.metrics import ACDResult, acd_breakdown, compute_acd
from repro.topology import make_topology


def events_of(pairs):
    ev = CommunicationEvents()
    if pairs:
        arr = np.asarray(pairs)
        ev.add(arr[:, 0], arr[:, 1])
    return ev


class TestACDResult:
    def test_mean(self):
        assert ACDResult(10, 4).acd == 2.5

    def test_empty_is_zero(self):
        assert ACDResult(0, 0).acd == 0.0

    def test_merged(self):
        merged = ACDResult(10, 4).merged(ACDResult(2, 2))
        assert merged.total_distance == 12 and merged.count == 6


class TestComputeACD:
    def test_hand_computed_bus(self):
        bus = make_topology("bus", 8)
        result = compute_acd(events_of([(0, 7), (1, 1), (2, 4)]), bus)
        assert result.total_distance == 7 + 0 + 2
        assert result.count == 3
        assert result.acd == 3.0

    def test_streams_over_chunks(self):
        bus = make_topology("bus", 8)
        ev = CommunicationEvents()
        ev.add([0], [7])
        ev.add([1], [2])
        result = compute_acd(ev, bus)
        assert result.total_distance == 8 and result.count == 2

    def test_empty_events(self):
        result = compute_acd(CommunicationEvents(), make_topology("ring", 8))
        assert result.count == 0 and result.acd == 0.0

    def test_rank_out_of_range_raises(self):
        bus = make_topology("bus", 4)
        with pytest.raises(ValueError):
            compute_acd(events_of([(0, 4)]), bus)

    @pytest.mark.parametrize("topo", ["bus", "ring", "mesh", "torus", "quadtree", "hypercube"])
    def test_self_communication_is_free(self, topo):
        net = make_topology(topo, 16)
        ranks = np.arange(16)
        ev = CommunicationEvents()
        ev.add(ranks, ranks)
        assert compute_acd(ev, net).acd == 0.0


class TestBreakdown:
    def test_combined_is_pooled_mean(self):
        bus = make_topology("bus", 16)
        phases = {
            "a": events_of([(0, 4)]),  # distance 4
            "b": events_of([(0, 1), (1, 2)]),  # distances 1, 1
        }
        out = acd_breakdown(phases, bus)
        assert out["a"].acd == 4.0
        assert out["b"].acd == 1.0
        assert out["combined"].acd == pytest.approx(6 / 3)

    def test_keys(self):
        out = acd_breakdown({"only": events_of([(0, 1)])}, make_topology("bus", 4))
        assert set(out) == {"only", "combined"}

    def test_reserved_phase_name_rejected(self):
        """A user phase named "combined" must not be silently overwritten."""
        from repro.errors import ConfigurationError

        phases = {"combined": events_of([(0, 1)]), "other": events_of([(1, 2)])}
        with pytest.raises(ConfigurationError, match="combined"):
            acd_breakdown(phases, make_topology("bus", 4))


class TestCacheIntegration:
    def test_cached_and_uncached_agree(self):
        from repro.topology.cache import TopologyCache

        net = make_topology("torus", 64, processor_curve="hilbert")
        rng = np.random.default_rng(3)
        ev = CommunicationEvents()
        # enough volume to force the cache over its lazy-build threshold
        ev.add(rng.integers(0, 64, 500), rng.integers(0, 64, 500))
        fresh = compute_acd(ev, net, cache=None)
        cached = compute_acd(ev, net, cache=TopologyCache())
        assert fresh == cached


class TestRankValidation:
    """Streaming and histogram evaluation reject bad ranks identically.

    Regression: the streaming path used to hand raw ranks straight to
    the distance lookup, so a cached matrix silently wrapped negative
    ranks (garbage totals) and turned over-range ranks into an
    IndexError instead of the ValueError the histogram path raises.
    """

    @staticmethod
    def _warm_cache(net):
        from repro.topology.cache import TopologyCache

        cache = TopologyCache()
        # push the query-volume account over the lazy-build threshold
        ranks = np.arange(net.num_processors)
        cache.distances(net, ranks, ranks[::-1])
        assert cache.stats["matrices"] == 1
        return cache

    @pytest.mark.parametrize("bad_rank", [-1, 16, 1000])
    def test_streaming_rejects_bad_ranks_without_cache(self, bad_rank):
        net = make_topology("torus", 16)
        with pytest.raises(ValueError, match="rank"):
            compute_acd(events_of([(0, 1), (bad_rank, 2)]), net, cache=None)

    @pytest.mark.parametrize("bad_rank", [-1, 16, 1000])
    def test_streaming_rejects_bad_ranks_with_warm_cache(self, bad_rank):
        net = make_topology("torus", 16)
        cache = self._warm_cache(net)
        with pytest.raises(ValueError, match="rank"):
            compute_acd(events_of([(3, bad_rank)]), net, cache=cache)

    @pytest.mark.parametrize("bad_rank", [-1, 16, 1000])
    def test_histogram_raises_the_same_error(self, bad_rank):
        from repro.fmm.events import PairHistogram

        net = make_topology("torus", 16)
        cache = self._warm_cache(net)
        histogram = PairHistogram(
            src=np.array([3], dtype=np.int64),
            dst=np.array([bad_rank], dtype=np.int64),
            weights=np.array([1], dtype=np.int64),
            num_processors=net.num_processors,
            num_events=1,
        )
        with pytest.raises(ValueError, match="rank") as hist_err:
            compute_acd(histogram, net, cache=cache)
        with pytest.raises(ValueError, match="rank") as stream_err:
            compute_acd(events_of([(3, bad_rank)]), net, cache=cache)
        assert str(hist_err.value) == str(stream_err.value)

    def test_negative_ranks_no_longer_wrap_through_the_matrix(self):
        # With the matrix resident, rank -1 used to gather column p-1.
        net = make_topology("ring", 8)
        cache = self._warm_cache(net)
        with pytest.raises(ValueError, match="rank -1"):
            compute_acd(events_of([(0, -1)]), net, cache=cache)


class TestBreakdownCacheForwarding:
    """``acd_breakdown`` forwards its ``cache`` argument to every phase.

    Regression: the breakdown used to have no ``cache`` parameter, so
    cache ablations could not bypass the shared process cache.
    """

    @staticmethod
    def _phases(p, n=200):
        rng = np.random.default_rng(7)
        return {
            "near": events_of(list(zip(rng.integers(0, p, n), rng.integers(0, p, n)))),
            "far": events_of(list(zip(rng.integers(0, p, n), rng.integers(0, p, n)))),
        }

    def test_cache_none_bypasses_shared_cache(self):
        from repro import obs
        from repro.topology.cache import TopologyCache, set_topology_cache

        net = make_topology("torus", 64)
        previous = set_topology_cache(TopologyCache())
        try:
            with obs.recording() as rec:
                acd_breakdown(self._phases(64), net, cache=None)
            from repro.topology.cache import get_topology_cache

            stats = get_topology_cache().stats
            assert stats["matrix_hits"] == 0 and stats["matrix_misses"] == 0
            deltas = {k: v for k, v in rec.counters.items() if k.startswith("topo_cache.")}
            assert deltas == {}
        finally:
            set_topology_cache(previous)

    def test_explicit_cache_is_used_by_every_phase(self):
        from repro.topology.cache import TopologyCache

        net = make_topology("torus", 64)
        cache = TopologyCache()
        shared = acd_breakdown(self._phases(64), net, cache=cache)
        bypass = acd_breakdown(self._phases(64), net, cache=None)
        assert shared == bypass  # bit-identical results either way
        stats = cache.stats
        assert stats["matrix_hits"] + stats["matrix_misses"] > 0
