"""Property tests: pair-histogram ACD ≡ streaming ACD.

The campaign runner evaluates shared event artifacts as
:class:`~repro.fmm.events.PairHistogram` instances; these tests pin the
exact equivalence (integer arithmetic, any topology, weighted or not)
that the bit-identity of grouped campaigns rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fmm.events import CommunicationEvents, PairHistogram
from repro.metrics.acd import acd_breakdown, compute_acd
from repro.topology.registry import make_topology, topology_names

#: 64 ranks is valid for every registered topology (4**3 quadtree
#: leaves, 8**2 octree leaves, 4**3 cube for the 3D grids, 2**6
#: hypercube labels).
P = 64


def random_events(rng: np.random.Generator, p: int, weighted: bool) -> CommunicationEvents:
    """A multi-chunk event multiset with repeated pairs and varied sizes."""
    events = CommunicationEvents(component="random")
    for _ in range(rng.integers(1, 5)):
        n = int(rng.integers(1, 400))
        src = rng.integers(0, p, n)
        dst = rng.integers(0, p, n)
        weights = rng.integers(0, 7, n) if weighted else None
        events.add(src, dst, weights)
    return events


@pytest.mark.parametrize("topology_name", topology_names())
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_histogram_acd_matches_streaming(topology_name, weighted):
    topology = make_topology(topology_name, P, processor_curve="hilbert")
    rng = np.random.default_rng(sum(map(ord, topology_name)) * 2 + int(weighted))
    for trial in range(5):
        events = random_events(rng, P, weighted)
        histogram = events.compact(P)
        streamed = compute_acd(events, topology)
        compacted = compute_acd(histogram, topology)
        assert streamed == compacted  # exact, both integer aggregates
        # and identically without the distance-matrix cache
        assert compute_acd(histogram, topology, cache=None) == streamed


def test_compact_aggregates_weights():
    events = CommunicationEvents()
    events.add([0, 1, 0], [2, 3, 2], [5, 1, 2])
    events.add([0], [2])  # unweighted chunk behaves as weight 1
    hist = events.compact(4)
    assert hist.num_events == 4
    assert hist.num_pairs == 2
    by_pair = dict(zip(zip(hist.src.tolist(), hist.dst.tolist()), hist.weights.tolist()))
    assert by_pair == {(0, 2): 8, (1, 3): 1}
    assert hist.total_weight == events.total_weight == 9


def test_compact_drops_zero_weight_pairs():
    events = CommunicationEvents()
    events.add([0, 1], [1, 2], [0, 3])
    hist = events.compact(3)
    assert hist.num_pairs == 1
    assert hist.total_weight == 3
    topology = make_topology("ring", 3)
    assert compute_acd(hist, topology) == compute_acd(events, topology)


def test_compact_empty_events():
    hist = CommunicationEvents().compact(8)
    assert hist.num_pairs == 0 and hist.num_events == 0 and hist.total_weight == 0
    assert compute_acd(hist, make_topology("ring", 8)).acd == 0.0


def test_compact_rejects_out_of_range_ranks():
    events = CommunicationEvents()
    events.add([0, 5], [1, 2])
    with pytest.raises(ValueError, match="outside"):
        events.compact(4)


def test_compact_dense_and_sparse_paths_agree(monkeypatch):
    import repro.fmm.events as events_mod

    rng = np.random.default_rng(11)
    events = random_events(rng, 32, weighted=True)
    dense = events.compact(32)
    monkeypatch.setattr(events_mod, "_DENSE_COMPACT_CELLS", 0)  # force sparse
    sparse = events.compact(32)
    for a, b in zip((dense.src, dense.dst, dense.weights), (sparse.src, sparse.dst, sparse.weights)):
        np.testing.assert_array_equal(a, b)
    assert dense.num_events == sparse.num_events


def test_compact_cutoff_derives_from_memory_budget():
    """A configured budget moves the dense/sparse crossover, not the result."""
    from repro.runtime import configure

    rng = np.random.default_rng(13)
    events = random_events(rng, 32, weighted=True)
    default = events.compact(32)
    # 32*32 cells need 8 KiB of dense scratch; a tiny budget forces the
    # sparse path, a large one allows the dense path — identical output.
    for budget in (64, 1 << 30):
        with configure(memory_budget=budget):
            hist = events.compact(32)
        for a, b in zip(
            (default.src, default.dst, default.weights), (hist.src, hist.dst, hist.weights)
        ):
            np.testing.assert_array_equal(a, b)


def test_compact_independent_of_chunk_boundaries():
    rng = np.random.default_rng(3)
    src = rng.integers(0, 16, 200)
    dst = rng.integers(0, 16, 200)
    one_chunk = CommunicationEvents()
    one_chunk.add(src, dst)
    many_chunks = CommunicationEvents()
    for lo in range(0, 200, 17):
        many_chunks.add(src[lo : lo + 17], dst[lo : lo + 17])
    a, b = one_chunk.compact(16), many_chunks.compact(16)
    np.testing.assert_array_equal(a.src, b.src)
    np.testing.assert_array_equal(a.dst, b.dst)
    np.testing.assert_array_equal(a.weights, b.weights)


def test_histogram_rejects_larger_rank_space_than_topology():
    events = CommunicationEvents()
    events.add([0, 9], [1, 3])
    hist = events.compact(16)
    with pytest.raises(ValueError, match="ranks"):
        compute_acd(hist, make_topology("ring", 8))


def test_acd_breakdown_accepts_histograms():
    rng = np.random.default_rng(7)
    topology = make_topology("torus", 16, processor_curve="hilbert")
    phases = {name: random_events(rng, 16, weighted=False) for name in ("a", "b")}
    streamed = acd_breakdown(phases, topology)
    compacted = acd_breakdown(
        {name: ev.compact(16) for name, ev in phases.items()}, topology
    )
    assert streamed == compacted


def test_flat_keys_round_trip():
    events = CommunicationEvents()
    events.add([3, 1], [2, 0])
    hist = events.compact(5)
    np.testing.assert_array_equal(hist.flat_keys(), hist.src * 5 + hist.dst)
    assert isinstance(hist, PairHistogram)
