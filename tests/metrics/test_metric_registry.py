"""Tests for the pluggable metric protocol and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnknownNameError
from repro.fmm.events import CommunicationEvents
from repro.metrics.base import CommunicationMetric, MetricValue, PartitionMetric
from repro.metrics.data_volume import DataVolumeMetric
from repro.metrics.energy import EnergyMetric
from repro.metrics.registry import METRICS, get_metric, list_metrics, metric_names
from repro.topology import make_topology


def _histogram(pairs, p):
    ev = CommunicationEvents("test")
    for src, dst, w in pairs:
        ev.add(np.array([src]), np.array([dst]), np.array([w]))
    return ev.compact(p)


class TestMetricValue:
    def test_mean(self):
        assert MetricValue(10, 4).mean == 2.5
        assert MetricValue(0, 0).mean == 0.0

    def test_merged(self):
        assert MetricValue(3, 2).merged(MetricValue(5, 1)) == MetricValue(8, 3)

    def test_scaled(self):
        assert MetricValue(3, 2).scaled(4) == MetricValue(12, 8)


class TestRegistry:
    def test_names(self):
        assert list_metrics() == ("acd", "energy", "data_volume", "surface_to_volume")
        assert metric_names() == list_metrics()

    def test_aliases(self):
        assert METRICS.canonical("Average Communicated Distance") == "acd"
        assert METRICS.canonical("bytes") == "data_volume"
        assert METRICS.canonical("surface volume") == "surface_to_volume"

    def test_kinds(self):
        for name in ("acd", "energy", "data_volume"):
            assert isinstance(get_metric(name), CommunicationMetric)
        assert isinstance(get_metric("surface_to_volume"), PartitionMetric)

    def test_unknown_lists_sorted_names(self):
        with pytest.raises(UnknownNameError) as exc:
            get_metric("latency")
        msg = str(exc.value)
        assert "acd, data_volume, energy, surface_to_volume" in msg


class TestCommunicationMetrics:
    """Hand-computable evaluations on a 4-node ring (d(0,2) = 2)."""

    def setup_method(self):
        self.topo = make_topology("ring", 4)
        # 3 units rank-local, 2 units one hop, 1 unit two hops
        self.hist = _histogram([(1, 1, 3), (0, 1, 2), (0, 2, 1)], 4)

    def test_acd_through_protocol(self):
        value = get_metric("acd").evaluate(self.hist, self.topo)
        assert value == MetricValue(total=2 * 1 + 1 * 2, count=6)

    def test_energy(self):
        value = EnergyMetric(hop_cost=3, message_cost=5).evaluate(self.hist, self.topo)
        # hops: 3*4 = 12; messages: 5*6 = 30 (local pays overhead, no hops)
        assert value == MetricValue(total=42, count=6)

    def test_data_volume(self):
        value = DataVolumeMetric(bytes_per_unit=10).evaluate(self.hist, self.topo)
        # link crossings 4 + send/recv copies 2*3 + local copy 3 = 13 units
        assert value == MetricValue(total=130, count=6)

    def test_cost_parameters_validated(self):
        with pytest.raises(ValueError):
            EnergyMetric(hop_cost=0)
        with pytest.raises(ValueError):
            DataVolumeMetric(bytes_per_unit=-1)

    def test_rankings_agree_with_acd_on_uniform_costs(self):
        """Energy is a positive affine map of (total_distance, count), so
        fixing the event multiset preserves the ACD's topology ranking."""
        hist = _histogram([(0, 5, 4), (2, 9, 1), (3, 3, 7), (1, 14, 2)], 16)
        topologies = [make_topology(n, 16) for n in ("bus", "ring", "hypercube")]
        acd = [get_metric("acd").evaluate(hist, t).total for t in topologies]
        energy = [get_metric("energy").evaluate(hist, t).total for t in topologies]
        assert np.argsort(acd).tolist() == np.argsort(energy).tolist()
