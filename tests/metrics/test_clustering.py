"""Tests for the clustering-number metric (Moon et al.)."""

from __future__ import annotations

import pytest

from repro.metrics import average_clusters, cluster_count
from repro.sfc import get_curve


class TestClusterCount:
    def test_whole_lattice_is_one_cluster(self):
        for name in ("hilbert", "zcurve", "gray", "rowmajor"):
            curve = get_curve(name, 3)
            assert cluster_count(curve, 0, 0, 8, 8) == 1

    def test_single_cell(self):
        curve = get_curve("hilbert", 3)
        assert cluster_count(curve, 5, 2, 1, 1) == 1

    def test_rowmajor_column_strip(self):
        # a full column is contiguous in row-major order
        curve = get_curve("rowmajor", 3)
        assert cluster_count(curve, 3, 0, 1, 8) == 1
        # a full row is 8 separate clusters
        assert cluster_count(curve, 0, 3, 8, 1) == 8

    def test_hilbert_aligned_quadrant(self):
        # aligned power-of-two blocks are single clusters for Hilbert
        curve = get_curve("hilbert", 4)
        assert cluster_count(curve, 0, 0, 8, 8) == 1
        assert cluster_count(curve, 8, 8, 8, 8) == 1

    def test_zcurve_aligned_quadrant(self):
        curve = get_curve("zcurve", 4)
        assert cluster_count(curve, 8, 0, 8, 8) == 1

    def test_out_of_bounds_rejected(self):
        curve = get_curve("hilbert", 3)
        with pytest.raises(ValueError):
            cluster_count(curve, 6, 6, 4, 4)

    def test_empty_rect_rejected(self):
        with pytest.raises(ValueError):
            cluster_count(get_curve("hilbert", 3), 0, 0, 0, 1)


class TestAverageClusters:
    def test_literature_ordering(self):
        """Jagadish/Moon et al.: Hilbert has the lowest clustering number
        — the opposite ranking from the ANNS metric (§V's surprise)."""
        vals = {
            name: average_clusters(name, 7, query_size=8, rng=0, samples=300)
            for name in ("hilbert", "zcurve", "gray", "rowmajor")
        }
        assert vals["hilbert"] < vals["zcurve"]
        assert vals["hilbert"] < vals["gray"]
        assert vals["hilbert"] < vals["rowmajor"]

    def test_rowmajor_analytic_average(self):
        # every q x q query hits exactly q clusters in row-major order
        val = average_clusters("rowmajor", 6, query_size=4, rng=1, samples=100)
        assert val == pytest.approx(4.0)

    def test_query_too_large_rejected(self):
        with pytest.raises(ValueError):
            average_clusters("hilbert", 3, query_size=16)

    def test_name_without_order_rejected(self):
        with pytest.raises(ValueError):
            average_clusters("hilbert")
