"""Tests for the 3D nearest-neighbour stretch (extension)."""

from __future__ import annotations

import pytest

from repro.metrics import anns3d, neighbor_stretch3d
from repro.sfc import get_curve3d


def brute_force_stretch3d(curve, radius):
    pts = curve.ordering()
    n = pts.shape[0]
    total, count = 0.0, 0
    for i in range(n):
        for j in range(i + 1, n):
            d = int(abs(pts[i] - pts[j]).sum())
            if 1 <= d <= radius:
                total += abs(i - j) / d
                count += 1
    return total, count


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name", ["hilbert3d", "morton3d", "gray3d", "rowmajor3d"])
    @pytest.mark.parametrize("radius", [1, 2])
    def test_matches(self, name, radius):
        curve = get_curve3d(name, 2)
        result = neighbor_stretch3d(curve, radius=radius)
        total, count = brute_force_stretch3d(curve, radius)
        assert result.count == count
        assert result.total_stretch == pytest.approx(total)


class TestAnalytic3D:
    def test_rowmajor3d_closed_form(self):
        """Per-axis jumps are 1, side and side^2, equally weighted."""
        for order in (2, 3, 4):
            side = 1 << order
            expected = (1 + side + side * side) / 3
            assert anns3d("rowmajor3d", order) == pytest.approx(expected)

    def test_morton_equals_rowmajor_in_3d(self):
        """The Xu-Tirthapura 2D equivalence carries over to 3D."""
        for order in (2, 3, 4):
            assert anns3d("morton3d", order) == pytest.approx(anns3d("rowmajor3d", order))

    def test_fig5_ordering_in_3d(self):
        vals = {
            n: anns3d(n, 4) for n in ("hilbert3d", "morton3d", "gray3d", "rowmajor3d")
        }
        assert vals["morton3d"] < vals["hilbert3d"] < vals["gray3d"]
        assert vals["rowmajor3d"] < vals["hilbert3d"]


class TestValidation3D:
    def test_radius_zero_rejected(self):
        with pytest.raises(ValueError):
            neighbor_stretch3d("hilbert3d", 2, radius=0)

    def test_name_requires_order(self):
        with pytest.raises(ValueError):
            neighbor_stretch3d("hilbert3d")

    def test_trivial_lattice(self):
        assert neighbor_stretch3d("hilbert3d", 0).count == 0
