"""Tests for max-NN and all-pairs stretch metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import all_pairs_stretch, max_nearest_neighbor_stretch
from repro.sfc import get_curve


class TestMaxNNStretch:
    def test_rowmajor(self):
        # worst nearest-neighbour gap in row-major order is a full column
        assert max_nearest_neighbor_stretch("rowmajor", 4) == 16.0

    def test_hilbert_bounded_below_by_anns(self):
        from repro.metrics import anns

        assert max_nearest_neighbor_stretch("hilbert", 5) >= anns("hilbert", 5)

    def test_zcurve_worst_pair(self):
        """The worst Z-curve neighbour jump is the central x-seam:
        2 * (2 * 4**(k-1) + 1) / 3 = (4**k + 2) / 3 exactly."""
        for k in (3, 4, 5):
            assert max_nearest_neighbor_stretch("zcurve", k) == (4**k + 2) / 3


class TestAllPairsStretch:
    def test_exact_small_case(self):
        curve = get_curve("rowmajor", 1)
        # points in order: (0,0),(0,1),(1,0),(1,1) with indices 0..3
        # enumerate the 6 pairs by hand
        expected = np.mean([1 / 1, 2 / 1, 3 / 2, 1 / 2, 2 / 1, 1 / 1])
        assert all_pairs_stretch(curve) == pytest.approx(expected)

    def test_sampled_close_to_exact(self):
        curve = get_curve("hilbert", 5)  # 1024 cells -> exact path
        exact = all_pairs_stretch(curve)
        # force the Monte-Carlo path via a larger curve of the same family
        sampled = all_pairs_stretch(get_curve("hilbert", 7), rng=0, samples=100_000)
        # both should be the same order of magnitude growth ~ O(side)
        assert sampled / exact == pytest.approx(4.0, rel=0.35)

    def test_deterministic_with_seed(self):
        a = all_pairs_stretch("hilbert", 7, rng=5, samples=20_000)
        b = all_pairs_stretch("hilbert", 7, rng=5, samples=20_000)
        assert a == b

    def test_degenerate(self):
        assert all_pairs_stretch("hilbert", 0) == 0.0

    def test_name_requires_order(self):
        with pytest.raises(ValueError):
            all_pairs_stretch("hilbert")
