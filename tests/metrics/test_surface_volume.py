"""Tests for the discrete surface-to-volume partition metric.

The analytic envelopes follow Gadouleau & Weinzierl: any polyomino obeys
the isoperimetric lower bound ``surface >= 2 * ceil(2 * sqrt(V))``, and
every *connected* part (any segment of a continuous curve) fits under
the worst-case envelope ``surface <= 2V + 2``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics.registry import get_metric
from repro.metrics.surface_volume import SurfaceVolumeMetric, partition_surfaces

CONTINUOUS = ("hilbert", "snake", "peano")
DISCONTINUOUS = ("zcurve", "gray", "rowmajor")


class TestPartitionSurfaces:
    def test_volumes_cover_lattice(self):
        surfaces, volumes = partition_surfaces("hilbert", 4, 16)
        assert volumes.sum() == 256
        assert np.all(volumes == 16)  # 256 cells split 16 ways evenly

    def test_single_part_is_domain_boundary(self):
        """p = 1: the only part's surface is the lattice perimeter."""
        for curve, order, side in (("hilbert", 3, 8), ("peano", 2, 9)):
            surfaces, volumes = partition_surfaces(curve, order, 1)
            assert volumes[0] == side * side
            assert surfaces[0] == 4 * side

    def test_full_split_unit_cells(self):
        """p = size: every part is one cell with 4 exposed faces."""
        surfaces, volumes = partition_surfaces("zcurve", 2, 16)
        assert np.all(volumes == 1)
        assert np.all(surfaces == 4)

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            partition_surfaces("hilbert", 2, 17)


class TestAnalyticEnvelopes:
    @pytest.mark.parametrize("curve", CONTINUOUS + DISCONTINUOUS)
    @pytest.mark.parametrize("p", [2, 4, 7, 16])
    def test_isoperimetric_lower_bound(self, curve, p):
        order = 3 if curve == "peano" else 5
        surfaces, volumes = partition_surfaces(curve, order, p)
        for s, v in zip(surfaces.tolist(), volumes.tolist()):
            assert s >= 2 * math.ceil(2 * math.sqrt(v))

    @pytest.mark.parametrize("curve", CONTINUOUS)
    @pytest.mark.parametrize("p", [2, 4, 7, 16])
    def test_connected_chunk_upper_bound(self, curve, p):
        """Continuous curves cut into connected polyominoes: s <= 2V + 2."""
        order = 3 if curve == "peano" else 5
        surfaces, volumes = partition_surfaces(curve, order, p)
        for s, v in zip(surfaces.tolist(), volumes.tolist()):
            assert s <= 2 * v + 2

    def test_hilbert_square_chunks_exact(self):
        """Order-4 Hilbert split 16 ways gives sixteen 4x4 squares:
        ratio = 16/16 = 1 for every part."""
        result = SurfaceVolumeMetric().evaluate("hilbert", 4, 16)
        assert result["max_ratio"] == pytest.approx(1.0)
        assert result["mean_ratio"] == pytest.approx(1.0)
        assert result["max_surface"] == 16 and result["max_volume"] == 16

    def test_peano_square_chunks_exact(self):
        """Order-2 Peano split 9 ways gives nine 3x3 squares:
        ratio = 12/9 = 4/3 for every part."""
        result = SurfaceVolumeMetric().evaluate("peano", 2, 9)
        assert result["max_ratio"] == pytest.approx(4 / 3)
        assert result["mean_ratio"] == pytest.approx(4 / 3)

    def test_continuous_beats_discontinuous(self):
        """§IV chunking: Hilbert's worst part stays more compact than the
        Z-curve's, whose chunks shatter across the lattice."""
        metric = get_metric("surface_to_volume")
        hilbert = metric.evaluate("hilbert", 5, 7)
        zcurve = metric.evaluate("zcurve", 5, 7)
        assert hilbert["max_ratio"] < zcurve["max_ratio"]

    def test_result_is_json_native(self):
        result = get_metric("surface_to_volume").evaluate("gray", 4, 8)
        for value in result.values():
            assert isinstance(value, (int, float, str))
