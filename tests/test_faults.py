"""Tests for the deterministic fault-injection harness (repro.faults)."""

from __future__ import annotations

import pytest

from repro.faults import (
    DEFAULT_HANG_SECONDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    _draw,
    inject,
    parse_faults,
)


class TestParseFaults:
    def test_none_and_empty_are_empty_plans(self):
        assert parse_faults(None) == FaultPlan()
        assert parse_faults("") == FaultPlan()
        assert not parse_faults("  ;  ; ")
        assert bool(parse_faults("raise:rate=0.5")) is True

    def test_plan_passthrough(self):
        plan = parse_faults("crash:unit=3")
        assert parse_faults(plan) is plan

    def test_single_unit_spec(self):
        plan = parse_faults("crash:unit=3")
        assert plan.specs == (FaultSpec(kind="crash", units=(3,)),)

    def test_unit_list(self):
        (spec,) = parse_faults("raise:unit=0,2,5").specs
        assert spec.units == (0, 2, 5)

    def test_rate_seed_spec(self):
        (spec,) = parse_faults("raise:rate=0.1:seed=7").specs
        assert spec.kind == "raise"
        assert spec.units is None
        assert spec.rate == 0.1
        assert spec.seed == 7

    def test_multiple_specs_with_whitespace(self):
        plan = parse_faults("crash:unit=3; raise:rate=0.1:seed=7 ;hang:unit=5:seconds=2")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["crash", "raise", "hang"]
        assert plan.specs[2].seconds == 2.0

    def test_hang_default_seconds(self):
        (spec,) = parse_faults("hang:unit=5").specs
        assert spec.seconds == DEFAULT_HANG_SECONDS

    def test_attempts_option(self):
        (spec,) = parse_faults("raise:unit=1:attempts=3").specs
        assert spec.attempts == 3

    @pytest.mark.parametrize(
        "text,match",
        [
            ("explode:unit=1", "unknown fault kind"),
            ("crash", "needs unit=... or rate=..."),
            ("crash:unit", "malformed fault option"),
            ("crash:unit=", "malformed fault option"),
            ("crash:unit=three", "bad value"),
            ("raise:rate=1.5", "rate must be in"),
            ("raise:rate=-0.1", "rate must be in"),
            ("raise:unit=1:attempts=0", "attempts must be >= 1"),
            ("crash:unit=1:color=red", "unknown fault option"),
        ],
    )
    def test_bad_specs_raise(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(text)

    def test_plan_is_picklable(self):
        import pickle

        plan = parse_faults("crash:unit=3; raise:rate=0.1:seed=7")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFires:
    def test_unit_targeted_fires_first_attempt_only(self):
        (spec,) = parse_faults("crash:unit=3").specs
        assert spec.fires(3, 0) is True
        assert spec.fires(3, 1) is False  # default attempts=1: retry succeeds
        assert spec.fires(2, 0) is False

    def test_unit_targeted_attempts_override(self):
        (spec,) = parse_faults("crash:unit=3:attempts=2").specs
        assert [spec.fires(3, a) for a in range(4)] == [True, True, False, False]

    def test_rate_redraws_every_attempt(self):
        (spec,) = parse_faults("raise:rate=0.5:seed=1").specs
        fired = [spec.fires(u, a) for u in range(50) for a in range(2)]
        assert any(fired) and not all(fired)

    def test_rate_zero_never_fires(self):
        (spec,) = parse_faults("raise:rate=0.0").specs
        assert not any(spec.fires(u, 0) for u in range(100))

    def test_rate_one_always_fires(self):
        (spec,) = parse_faults("raise:rate=1.0").specs
        assert all(spec.fires(u, a) for u in range(10) for a in range(3))


class TestDeterminism:
    def test_draw_is_stable_and_uniform_ish(self):
        draws = [_draw(7, u, 0) for u in range(200)]
        assert draws == [_draw(7, u, 0) for u in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        near = sum(1 for d in draws if d < 0.1)
        assert 5 <= near <= 40  # ~20 expected at rate 0.1

    def test_different_seeds_differ(self):
        assert [_draw(1, u, 0) for u in range(20)] != [_draw(2, u, 0) for u in range(20)]

    def test_different_attempts_differ(self):
        assert _draw(7, 3, 0) != _draw(7, 3, 1)


class TestInject:
    def test_raise_fires_everywhere(self):
        plan = parse_faults("raise:unit=2")
        with pytest.raises(InjectedFault):
            inject(plan, 2, 0, in_worker=False)
        with pytest.raises(InjectedFault):
            inject(plan, 2, 0, in_worker=True)
        inject(plan, 1, 0, in_worker=True)  # wrong unit: no-op
        inject(plan, 2, 1, in_worker=True)  # retry: no-op

    def test_crash_and_hang_skipped_outside_workers(self):
        # Would os._exit / sleep an hour if the in_worker guard failed.
        inject(parse_faults("crash:unit=0"), 0, 0, in_worker=False)
        inject(parse_faults("hang:unit=0"), 0, 0, in_worker=False)

    def test_hang_sleeps_in_worker(self, monkeypatch):
        import repro.faults as faults_mod

        slept = []
        monkeypatch.setattr(faults_mod.time, "sleep", slept.append)
        inject(parse_faults("hang:unit=0:seconds=9"), 0, 0, in_worker=True)
        assert slept == [9.0]

    def test_crash_exits_in_worker(self, monkeypatch):
        import repro.faults as faults_mod

        codes = []
        monkeypatch.setattr(faults_mod.os, "_exit", codes.append)
        inject(parse_faults("crash:unit=0"), 0, 0, in_worker=True)
        assert codes == [70]

    def test_empty_plan_is_noop(self):
        inject(FaultPlan(), 0, 0, in_worker=True)

    def test_kinds_constant(self):
        assert FAULT_KINDS == ("crash", "raise", "hang")
