"""Tests for the figure renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Particles, get_distribution
from repro.viz import (
    render_curve,
    render_interaction_list,
    render_particle_order,
    render_particles,
)


class TestRenderCurve:
    def test_shape(self):
        art = render_curve("hilbert", 3)
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)

    def test_hilbert_is_fully_connected(self):
        """A continuous curve has no open ends except the two endpoints."""
        art = render_curve("hilbert", 4)
        half_open = sum(art.count(c) for c in "╷╵╶╴")
        assert half_open == 2
        assert "·" not in art

    def test_rowmajor_shows_scan_lines(self):
        art = render_curve("rowmajor", 3)
        # x indexes printed rows, so the row-major scan draws one straight
        # line per printed row and no cross-row connections at all
        assert "─" in art
        assert "│" not in art
        assert all(line == "╶──────╴" for line in art.splitlines())

    def test_zcurve_mostly_disconnected(self):
        art = render_curve("zcurve", 3)
        half_open = sum(art.count(c) for c in "╷╵╶╴")
        assert half_open > 8  # many jumps

    def test_isolated_cells_possible(self):
        # order 0 lattice: a single cell with no connections
        assert render_curve("hilbert", 0) == "·"

    def test_name_requires_order(self):
        with pytest.raises(ValueError):
            render_curve("hilbert")


class TestRenderParticles:
    def test_dimensions(self):
        particles = get_distribution("uniform").sample(500, 6, rng=0)
        art = render_particles(particles, width=16)
        lines = art.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 16 for line in lines)

    def test_width_capped_at_side(self):
        particles = get_distribution("uniform").sample(10, 3, rng=0)
        art = render_particles(particles, width=64)
        assert len(art.splitlines()) == 8

    def test_density_contrast(self):
        # exponential distribution: origin corner darker than far corner
        particles = get_distribution("exponential").sample(2000, 7, rng=1)
        lines = render_particles(particles, width=16).splitlines()
        assert lines[0][0] != " "
        assert lines[-1][-1] in " ."


class TestRenderParticleOrder:
    def test_labels_every_particle(self):
        particles = Particles(np.array([0, 1, 2]), np.array([0, 1, 2]), order=2)
        art = render_particle_order(particles, "hilbert")
        for rank in range(3):
            assert str(rank) in art

    def test_order_respects_curve(self):
        # two particles: origin is always first on the Hilbert curve
        particles = Particles(np.array([3, 0]), np.array([3, 0]), order=2)
        art = render_particle_order(particles, "hilbert")
        rows = [r.split() for r in art.splitlines()]
        assert rows[0][0] == "0"
        assert rows[3][3] == "1"

    def test_too_many_particles_rejected(self):
        particles = get_distribution("uniform").sample(200, 5, rng=0)
        with pytest.raises(ValueError, match="at most"):
            render_particle_order(particles, "hilbert")


class TestRenderInteractionList:
    def test_fig4_counts(self):
        art = render_interaction_list(1, 2, level=2)
        assert art.count("a") == 1
        assert art.count("b") == 7  # inner cell at the 4x4 level

    def test_marker_positions_match_reference(self):
        from repro.quadtree import interaction_list_cells

        art = render_interaction_list(3, 4, level=4)
        rows = [r.split() for r in art.splitlines()]
        expected = {tuple(c) for c in interaction_list_cells(3, 4, 4).tolist()}
        got = {
            (x, y)
            for x, row in enumerate(rows)
            for y, mark in enumerate(row)
            if mark == "b"
        }
        assert got == expected
        assert rows[3][4] == "a"
