"""Migration accounting vs brute force, stale partitions, p > n audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import get_distribution
from repro.dynamics import (
    TrajectorySpec,
    clear_trajectory_cache,
    migration_volume,
    owners_by_id,
    stale_assignment,
    trajectory,
)
from repro.fmm.ffi import ffi_events
from repro.fmm.nfi import nfi_events
from repro.partition import curve_keys, partition_particles
from repro.sfc import PAPER_CURVES
from repro.topology import make_topology


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_trajectory_cache()
    yield
    clear_trajectory_cache()


def brute_force_owners(particles, curve, p):
    """id -> processor map via explicit per-particle sort bookkeeping."""
    keys = curve_keys(particles, curve)
    ranked = sorted(range(len(particles)), key=lambda i: (int(keys[i]), i))
    n = len(particles)
    base, extra = divmod(n, p)
    owners = {}
    position = 0
    for proc in range(p):
        size = base + (1 if proc < extra else 0)
        for _ in range(size):
            owners[ranked[position]] = proc
            position += 1
    return owners


class TestMigrationBruteForce:
    @pytest.mark.parametrize("curve", PAPER_CURVES)
    def test_matches_set_difference_of_owner_maps(self, curve):
        spec = TrajectorySpec.create(
            distribution="uniform", num_particles=220, order=6, motion="diffusion", seed=17
        )
        frames = trajectory(spec, 3)
        p = 16
        topo = make_topology("mesh", p, processor_curve=curve)
        for prev_frame, next_frame in zip(frames, frames[1:]):
            prev = owners_by_id(prev_frame, curve, p)
            nxt = owners_by_id(next_frame, curve, p)

            prev_map = brute_force_owners(prev_frame, curve, p)
            next_map = brute_force_owners(next_frame, curve, p)
            assert prev_map == {i: int(r) for i, r in enumerate(prev)}
            assert next_map == {i: int(r) for i, r in enumerate(nxt)}

            moved_ids = {i for i in prev_map if prev_map[i] != next_map[i]}
            expected_hops = sum(
                int(topo.distance(np.array([prev_map[i]]), np.array([next_map[i]]))[0])
                for i in moved_ids
            )
            migrated, hops = migration_volume(prev, nxt, topo)
            assert migrated == len(moved_ids)
            assert hops == expected_hops

    def test_identical_frames_zero_migration(self):
        dist = get_distribution("uniform").sample(100, 5, rng=3)
        owners = owners_by_id(dist, "hilbert", 4)
        assert migration_volume(owners, owners) == (0, 0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            migration_volume(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64))


class TestStaleAssignment:
    def test_step_zero_stale_equals_resorted(self):
        particles = get_distribution("uniform").sample(120, 5, rng=8)
        owners0 = owners_by_id(particles, "hilbert", 8)
        stale = stale_assignment(particles, "hilbert", owners0, 8)
        fresh = partition_particles(particles, "hilbert", 8)
        assert np.array_equal(stale.processor, fresh.processor)
        assert np.array_equal(stale.owner_grid(), fresh.owner_grid())

    def test_ownership_frozen_while_positions_move(self):
        spec = TrajectorySpec.create(
            distribution="uniform", num_particles=150, order=6, motion="drift", seed=23
        )
        frames = trajectory(spec, 4)
        owners0 = owners_by_id(frames[0], "zcurve", 16)
        stale = stale_assignment(frames[4], "zcurve", owners0, 16)
        # every rank still owns exactly its step-0 particle count
        counts0 = np.bincount(owners0, minlength=16)
        assert np.array_equal(stale.particles_per_processor(), counts0)
        # event generation runs on the stale grid without complaint
        hist = nfi_events(stale, 1, "chebyshev").compact(16)
        assert hist.num_events > 0

    def test_owner_length_mismatch_rejected(self):
        particles = get_distribution("uniform").sample(50, 5, rng=2)
        with pytest.raises(ValueError, match="one entry per particle"):
            stale_assignment(particles, "hilbert", np.zeros(49, dtype=np.int64), 4)


class TestEmptyProcessors:
    """`p > n` audit: empty ranks must flow through the whole pipeline."""

    @pytest.mark.parametrize("n,p", [(3, 8), (0, 4), (5, 64)])
    def test_partition_handles_more_processors_than_particles(self, n, p):
        particles = get_distribution("uniform").sample(n, 5, rng=9)
        asg = partition_particles(particles, "hilbert", p)
        counts = asg.particles_per_processor()
        assert counts.shape == (p,)
        assert counts.sum() == n
        assert counts.max(initial=0) <= 1 or n <= p  # balanced chunks
        grid = asg.owner_grid()
        assert np.count_nonzero(grid >= 0) == n

    def test_events_on_sparse_assignment(self):
        particles = get_distribution("uniform").sample(5, 4, rng=1)
        asg = partition_particles(particles, "gray", 64)
        nfi = nfi_events(asg, 1, "chebyshev").compact(64)
        ffi = ffi_events(asg).combined().compact(64)
        assert nfi.num_processors == ffi.num_processors == 64
        assert ffi.num_events > 0  # interpolation chain always exists

    def test_owners_by_id_with_empty_ranks(self):
        particles = get_distribution("uniform").sample(3, 5, rng=4)
        owners = owners_by_id(particles, "rowmajor", 8)
        assert owners.shape == (3,)
        assert np.all((owners >= 0) & (owners < 8))
        # first n ranks get one particle each under balanced chunking
        assert sorted(owners.tolist()) == [0, 1, 2]
