"""Tests for the time-evolution layer: boundaries, motions, trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Particles
from repro.dynamics import (
    MOTIONS,
    TrajectorySpec,
    clear_trajectory_cache,
    evolve_step,
    get_motion,
    reflect_positions,
    resolve_collisions,
    trajectory,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_trajectory_cache()
    yield
    clear_trajectory_cache()


class TestReflectingBoundary:
    def test_in_bounds_unchanged(self):
        pos = np.array([0, 1, 6, 7])
        assert np.array_equal(reflect_positions(pos, 8), pos)

    def test_single_overshoot_reflects(self):
        assert np.array_equal(
            reflect_positions(np.array([-1, -2, 8, 9]), 8), np.array([1, 2, 6, 5])
        )

    def test_boundary_cells_bounce_inward(self):
        # side=4: 4 -> 2, -1 -> 1 (specular, not clamping)
        assert np.array_equal(
            reflect_positions(np.array([4, -1]), 4), np.array([2, 1])
        )

    def test_large_overshoot_bounces_repeatedly(self):
        # period 6 for side 4: 10 -> mod 6 = 4 -> 6-4 = 2
        assert int(reflect_positions(10, 4)) == 2
        out = reflect_positions(np.arange(-50, 50), 4)
        assert out.min() >= 0 and out.max() < 4

    def test_side_one_collapses_to_zero(self):
        assert np.array_equal(reflect_positions(np.array([0, 5, -3]), 1), np.zeros(3))

    def test_scalar_accepted(self):
        assert int(reflect_positions(5, 4)) == 1


class TestResolveCollisions:
    def test_disjoint_moves_all_accepted(self):
        cur = np.array([0, 10, 20])
        prop = np.array([1, 11, 21])
        out, accepted = resolve_collisions(cur, prop)
        assert np.array_equal(out, prop)
        assert accepted == 3

    def test_contested_cell_goes_to_lowest_id(self):
        cur = np.array([0, 10, 20])
        prop = np.array([5, 5, 5])
        out, accepted = resolve_collisions(cur, prop)
        assert np.array_equal(out, [5, 10, 20])
        assert accepted == 1

    def test_occupied_target_blocks_even_if_vacated(self):
        # particle 1 moves away from 10, but particle 0's move into 10
        # is still blocked: targets must be free *before* the step.
        cur = np.array([0, 10])
        prop = np.array([10, 11])
        out, _ = resolve_collisions(cur, prop)
        assert np.array_equal(out, [0, 11])

    def test_result_stays_distinct(self):
        rng = np.random.default_rng(5)
        cur = rng.choice(100, size=40, replace=False).astype(np.int64)
        prop = rng.integers(0, 100, size=40).astype(np.int64)
        out, _ = resolve_collisions(cur, prop)
        assert np.unique(out).size == out.size

    def test_no_moves_is_noop(self):
        cur = np.array([3, 4])
        out, accepted = resolve_collisions(cur, cur.copy())
        assert np.array_equal(out, cur) and accepted == 0


class TestMotions:
    @pytest.mark.parametrize("name", ["drift", "diffusion", "orbit"])
    def test_registered_and_buildable(self, name):
        assert name in MOTIONS
        motion = get_motion(name)
        assert motion.name == name
        rebuilt = get_motion(name, **motion.params())
        assert rebuilt.params() == motion.params()

    @pytest.mark.parametrize("name", ["drift", "diffusion", "orbit"])
    def test_proposals_in_bounds(self, name):
        spec = TrajectorySpec.create(
            distribution="uniform", num_particles=200, order=5, motion=name, seed=3
        )
        for frame in trajectory(spec, 4):
            assert frame.x.min() >= 0 and frame.x.max() < frame.side
            assert frame.y.min() >= 0 and frame.y.max() < frame.side
            frame.validate_distinct()

    def test_drift_bounces_off_walls(self):
        particles = Particles(np.array([7]), np.array([0]), 3)
        motion = get_motion("drift", speed=1)
        state = {"vx": np.array([1]), "vy": np.array([0])}
        px, py, new_state = motion.propose(particles, state, np.random.default_rng(0))
        assert int(px[0]) == 6  # reflected off x = 8
        assert int(new_state["vx"][0]) == -1  # velocity flipped

    def test_drift_never_all_zero_velocity(self):
        particles = Particles(np.arange(50), np.arange(50), 6)
        motion = get_motion("drift")
        state = motion.init_state(particles, np.random.default_rng(11))
        assert np.all((state["vx"] != 0) | (state["vy"] != 0))

    def test_orbit_moves_particles(self):
        spec = TrajectorySpec.create(
            distribution="clustered", num_particles=150, order=6, motion="orbit", seed=9
        )
        frames = trajectory(spec, 2)
        assert np.any(frames[0].x != frames[2].x) or np.any(frames[0].y != frames[2].y)

    def test_unknown_motion_rejected(self):
        with pytest.raises(KeyError):
            get_motion("teleport")


class TestTrajectory:
    SPEC = dict(
        distribution="uniform", num_particles=150, order=6, motion="diffusion", seed=42
    )

    def test_same_seed_same_trajectory(self):
        spec = TrajectorySpec.create(**self.SPEC)
        a = trajectory(spec, 5)
        clear_trajectory_cache()
        b = trajectory(spec, 5)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.x, fb.x) and np.array_equal(fa.y, fb.y)

    def test_different_seed_differs(self):
        a = trajectory(TrajectorySpec.create(**self.SPEC), 3)
        b = trajectory(TrajectorySpec.create(**{**self.SPEC, "seed": 43}), 3)
        assert not (np.array_equal(a[0].x, b[0].x) and np.array_equal(a[0].y, b[0].y))

    def test_shorter_horizon_is_prefix(self):
        spec = TrajectorySpec.create(**self.SPEC)
        long = trajectory(spec, 6)
        clear_trajectory_cache()
        short = trajectory(spec, 2)
        for fs, fl in zip(short, long):
            assert np.array_equal(fs.x, fl.x) and np.array_equal(fs.y, fl.y)

    def test_cache_extension_matches_cold_run(self):
        spec = TrajectorySpec.create(**self.SPEC)
        trajectory(spec, 2)
        extended = trajectory(spec, 6)  # extends the cached prefix
        clear_trajectory_cache()
        cold = trajectory(spec, 6)
        for fe, fc in zip(extended, cold):
            assert np.array_equal(fe.x, fc.x) and np.array_equal(fe.y, fc.y)

    def test_frame_count(self):
        spec = TrajectorySpec.create(**self.SPEC)
        assert len(trajectory(spec, 0)) == 1
        assert len(trajectory(spec, 4)) == 5

    def test_evolve_step_preserves_count_and_identity_positions(self):
        spec = TrajectorySpec.create(**self.SPEC)
        frames = trajectory(spec, 1)
        assert len(frames[0]) == len(frames[1]) == 150

    def test_evolve_step_counts_moves(self):
        particles = Particles(np.array([1, 5]), np.array([1, 5]), 4)
        motion = get_motion("diffusion", scale=1)
        _, _, moved = evolve_step(particles, motion, {}, np.random.default_rng(0))
        assert 0 <= moved <= 2


class TestOutOfLatticeValidation:
    def test_overflow_names_lattice_and_fix(self):
        with pytest.raises(ValueError, match=r"order-2 lattice \[0, 4\).*reflect_positions"):
            Particles(np.array([5]), np.array([0]), 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=r"got range \[-1, 0\]"):
            Particles(np.array([0, 0]), np.array([-1, 0]), 3)
