"""Tests for argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.util.validation import (
    as_index_array,
    check_in_range,
    check_nonnegative,
    check_order,
    check_positive,
    check_power_of_two,
)


class TestCheckOrder:
    def test_accepts_valid(self):
        assert check_order(0) == 0
        assert check_order(10) == 10

    def test_rejects_negative(self):
        with pytest.raises(ResolutionError):
            check_order(-1)

    def test_rejects_oversized(self):
        with pytest.raises(ResolutionError):
            check_order(64)

    def test_custom_max(self):
        assert check_order(5, max_order=5) == 5
        with pytest.raises(ResolutionError):
            check_order(6, max_order=5)


class TestScalarChecks:
    def test_positive(self):
        assert check_positive(3, "n") == 3
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive(0, "n")

    def test_nonnegative(self):
        assert check_nonnegative(0, "n") == 0
        with pytest.raises(ValueError):
            check_nonnegative(-1, "n")

    def test_power_of_two(self):
        assert check_power_of_two(8, "p") == 8
        with pytest.raises(ValueError):
            check_power_of_two(6, "p")


class TestArrayChecks:
    def test_in_range_passes(self):
        out = check_in_range([0, 3, 7], 0, 8, "v")
        assert out.dtype == np.int64

    def test_in_range_rejects_low_and_high(self):
        with pytest.raises(ValueError):
            check_in_range([-1], 0, 8, "v")
        with pytest.raises(ValueError):
            check_in_range([8], 0, 8, "v")

    def test_empty_array_passes(self):
        assert check_in_range(np.empty(0, dtype=int), 0, 4, "v").size == 0

    def test_as_index_array_accepts_integral_floats(self):
        out = as_index_array(np.array([1.0, 2.0]), "v")
        assert out.dtype == np.int64 and out.tolist() == [1, 2]

    def test_as_index_array_rejects_fractional(self):
        with pytest.raises(TypeError):
            as_index_array(np.array([1.5]), "v")

    def test_as_index_array_rejects_strings(self):
        with pytest.raises(TypeError):
            as_index_array(np.array(["a"]), "v")
