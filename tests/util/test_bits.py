"""Unit and property tests for the bit-manipulation kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    bit_length,
    deinterleave2,
    deinterleave3,
    gray_decode,
    gray_encode,
    interleave2,
    interleave3,
    is_power_of_two,
    popcount,
)

coords2d = st.integers(min_value=0, max_value=(1 << MAX_BITS_2D) - 1)
coords3d = st.integers(min_value=0, max_value=(1 << MAX_BITS_3D) - 1)
u63 = st.integers(min_value=0, max_value=(1 << 63) - 1)


class TestInterleave2:
    def test_known_values(self):
        # x supplies the high bit of each pair
        assert interleave2(0, 0) == 0
        assert interleave2(0, 1) == 1
        assert interleave2(1, 0) == 2
        assert interleave2(1, 1) == 3
        assert interleave2(2, 0) == 8
        assert interleave2(3, 3) == 15

    def test_vectorised_matches_scalar(self):
        xs = np.array([0, 1, 5, 100, 2**20])
        ys = np.array([3, 1, 2, 50, 2**19])
        vec = interleave2(xs, ys)
        for i in range(xs.size):
            assert vec[i] == interleave2(int(xs[i]), int(ys[i]))

    @given(coords2d, coords2d)
    def test_roundtrip(self, x, y):
        code = interleave2(x, y)
        assert deinterleave2(code) == (x, y)

    @given(coords2d, coords2d)
    def test_monotone_in_high_coordinate(self, x, y):
        # Fixing y, increasing x can only increase the code.
        if x < (1 << MAX_BITS_2D) - 1:
            assert interleave2(x + 1, y) > interleave2(x, y)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            interleave2(-1, 0)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            interleave2(1 << MAX_BITS_2D, 0)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            interleave2(np.array([0.5]), np.array([1.0]))


class TestInterleave3:
    def test_known_values(self):
        assert interleave3(0, 0, 0) == 0
        assert interleave3(0, 0, 1) == 1
        assert interleave3(0, 1, 0) == 2
        assert interleave3(1, 0, 0) == 4
        assert interleave3(1, 1, 1) == 7

    @given(coords3d, coords3d, coords3d)
    def test_roundtrip(self, x, y, z):
        assert deinterleave3(interleave3(x, y, z)) == (x, y, z)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            interleave3(1 << MAX_BITS_3D, 0, 0)


class TestGray:
    def test_sequence_prefix(self):
        # Classic reflected Gray sequence
        assert [int(gray_encode(i)) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_codes_differ_in_one_bit(self):
        vals = gray_encode(np.arange(1024))
        diffs = popcount(vals[1:] ^ vals[:-1])
        assert np.all(diffs == 1)

    @given(u63)
    def test_roundtrip(self, v):
        assert gray_decode(gray_encode(v)) == v

    @given(u63)
    def test_decode_then_encode(self, v):
        assert gray_encode(gray_decode(v)) == v


class TestPopcount:
    def test_known_values(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0xFF) == 8
        assert popcount((1 << 63) - 1) == 63

    @given(u63)
    def test_matches_python(self, v):
        assert popcount(v) == bin(v).count("1")

    def test_vectorised(self):
        vals = np.array([0, 3, 7, 255, 2**40 - 1])
        assert popcount(vals).tolist() == [0, 2, 3, 8, 40]


class TestBitLength:
    @given(u63)
    def test_matches_python(self, v):
        assert bit_length(v) == v.bit_length()

    def test_vectorised(self):
        vals = np.array([0, 1, 2, 3, 4, 255, 256])
        assert bit_length(vals).tolist() == [0, 1, 2, 2, 3, 8, 9]


class TestScalarAndShapeContract:
    """Every public kernel honours the scalar/0-d/empty conventions.

    Scalars in -> integer scalars out (not 0-d arrays); 0-d arrays in ->
    0-d arrays out; empty arrays pass through with shape preserved.
    """

    # (callable taking positional uint inputs, arity, tuple-valued?)
    KERNELS = [
        (interleave2, 2, False),
        (deinterleave2, 1, True),
        (interleave3, 3, False),
        (deinterleave3, 1, True),
        (gray_encode, 1, False),
        (gray_decode, 1, False),
        (popcount, 1, False),
        (bit_length, 1, False),
    ]

    @staticmethod
    def _outputs(result, is_tuple):
        return result if is_tuple else (result,)

    @pytest.mark.parametrize("fn,arity,is_tuple", KERNELS)
    def test_scalar_in_scalar_out(self, fn, arity, is_tuple):
        for out in self._outputs(fn(*([3] * arity)), is_tuple):
            assert np.isscalar(out), f"{fn.__name__} returned {type(out)}"
            assert not isinstance(out, np.ndarray)

    @pytest.mark.parametrize("fn,arity,is_tuple", KERNELS)
    def test_numpy_scalar_in_scalar_out(self, fn, arity, is_tuple):
        # np.isscalar(np.int64(3)) is True, so numpy scalars count too.
        for out in self._outputs(fn(*([np.int64(3)] * arity)), is_tuple):
            assert np.isscalar(out)

    @pytest.mark.parametrize("fn,arity,is_tuple", KERNELS)
    def test_zero_d_array_in_dimensionless_int64_out(self, fn, arity, is_tuple):
        # NumPy collapses 0-d operands to scalars inside the kernels, so
        # 0-d arrays come back as dimensionless int64 values.
        for out in self._outputs(fn(*([np.array(3)] * arity)), is_tuple):
            assert np.ndim(out) == 0
            assert np.asarray(out).dtype == np.int64

    @pytest.mark.parametrize("fn,arity,is_tuple", KERNELS)
    def test_empty_array_passes_through(self, fn, arity, is_tuple):
        empty = np.array([], dtype=np.int64)
        for out in self._outputs(fn(*([empty] * arity)), is_tuple):
            assert isinstance(out, np.ndarray)
            assert out.shape == (0,) and out.dtype == np.int64

    def test_interleave2_exact_31_bit_limit(self):
        top = (1 << MAX_BITS_2D) - 1
        code = interleave2(top, top)
        assert code == (1 << 2 * MAX_BITS_2D) - 1  # fits in int64
        assert deinterleave2(code) == (top, top)
        with pytest.raises(ValueError):
            interleave2(top + 1, 0)
        with pytest.raises(ValueError):
            interleave2(0, top + 1)

    def test_interleave3_exact_21_bit_limit(self):
        top = (1 << MAX_BITS_3D) - 1
        code = interleave3(top, top, top)
        assert code == (1 << 3 * MAX_BITS_3D) - 1
        assert deinterleave3(code) == (top, top, top)
        for args in [(top + 1, 0, 0), (0, top + 1, 0), (0, 0, top + 1)]:
            with pytest.raises(ValueError):
                interleave3(*args)

    def test_is_power_of_two_scalar_inputs(self):
        assert is_power_of_two(np.int64(64))
        assert not is_power_of_two(np.int64(65))
        assert isinstance(is_power_of_two(2), bool)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("v", [1, 2, 4, 8, 1024, 2**30])
    def test_powers(self, v):
        assert is_power_of_two(v)

    @pytest.mark.parametrize("v", [0, -1, -2, 3, 6, 12, 2**30 + 1])
    def test_non_powers(self, v):
        assert not is_power_of_two(v)
