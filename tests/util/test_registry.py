"""Tests for the generic name → factory registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownNameError
from repro.util.registry import Registry


def make_registry():
    reg: Registry[str] = Registry("widget")
    reg.register("alpha", lambda: "A", aliases=("first", "a-one"))
    reg.register("beta", lambda: "B")
    return reg


class TestRegistry:
    def test_create_by_canonical_name(self):
        assert make_registry().create("alpha") == "A"

    def test_create_by_alias(self):
        assert make_registry().create("first") == "A"

    def test_lookup_is_case_and_separator_insensitive(self):
        reg = make_registry()
        assert reg.create("ALPHA") == "A"
        assert reg.create("A One") == "A"
        assert reg.create("a_one") == "A"

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(UnknownNameError) as exc:
            make_registry().create("gamma")
        assert "alpha" in str(exc.value) and "beta" in str(exc.value)

    def test_duplicate_name_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("alpha", lambda: "A2")

    def test_conflicting_alias_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("gamma", lambda: "C", aliases=("first",))

    def test_self_alias_tolerated(self):
        reg = make_registry()
        reg.register("gamma", lambda: "C", aliases=("gamma",))
        assert reg.create("gamma") == "C"

    def test_contains_and_names(self):
        reg = make_registry()
        assert "alpha" in reg and "first" in reg and "nope" not in reg
        assert reg.names() == ("alpha", "beta")
        assert list(reg) == ["alpha", "beta"]

    def test_canonical(self):
        reg = make_registry()
        assert reg.canonical("First") == "alpha"
        with pytest.raises(UnknownNameError):
            reg.canonical("gamma")

    def test_factory_arguments_forwarded(self):
        reg: Registry[tuple] = Registry("pair")
        reg.register("p", lambda a, b=0: (a, b))
        assert reg.create("p", 1, b=2) == (1, 2)
