"""Tests for the generic name → factory registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownNameError
from repro.util.registry import Registry


def make_registry():
    reg: Registry[str] = Registry("widget")
    reg.register("alpha", lambda: "A", aliases=("first", "a-one"))
    reg.register("beta", lambda: "B")
    return reg


class TestRegistry:
    def test_create_by_canonical_name(self):
        assert make_registry().create("alpha") == "A"

    def test_create_by_alias(self):
        assert make_registry().create("first") == "A"

    def test_lookup_is_case_and_separator_insensitive(self):
        reg = make_registry()
        assert reg.create("ALPHA") == "A"
        assert reg.create("A One") == "A"
        assert reg.create("a_one") == "A"

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(UnknownNameError) as exc:
            make_registry().create("gamma")
        assert "alpha" in str(exc.value) and "beta" in str(exc.value)

    def test_duplicate_name_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("alpha", lambda: "A2")

    def test_conflicting_alias_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("gamma", lambda: "C", aliases=("first",))

    def test_self_alias_tolerated(self):
        reg = make_registry()
        reg.register("gamma", lambda: "C", aliases=("gamma",))
        assert reg.create("gamma") == "C"

    def test_contains_and_names(self):
        reg = make_registry()
        assert "alpha" in reg and "first" in reg and "nope" not in reg
        assert reg.names() == ("alpha", "beta")
        assert list(reg) == ["alpha", "beta"]

    def test_canonical(self):
        reg = make_registry()
        assert reg.canonical("First") == "alpha"
        with pytest.raises(UnknownNameError):
            reg.canonical("gamma")

    def test_factory_arguments_forwarded(self):
        reg: Registry[tuple] = Registry("pair")
        reg.register("p", lambda a, b=0: (a, b))
        assert reg.create("p", 1, b=2) == (1, 2)


def _package_registries():
    from repro.distributions.registry import DISTRIBUTIONS
    from repro.distributions.three_d import DISTRIBUTIONS3D
    from repro.metrics.registry import METRICS
    from repro.sfc.curves3d import CURVES3D
    from repro.sfc.registry import CURVES
    from repro.topology.registry import TOPOLOGIES

    return {
        "curves": CURVES,
        "curves3d": CURVES3D,
        "topologies": TOPOLOGIES,
        "distributions": DISTRIBUTIONS,
        "distributions3d": DISTRIBUTIONS3D,
        "metrics": METRICS,
    }


class TestPackageRegistries:
    """Shared contract every repro registry must honour."""

    @pytest.mark.parametrize("which", sorted(_package_registries()))
    def test_unknown_name_lists_names_sorted(self, which):
        reg = _package_registries()[which]
        with pytest.raises(UnknownNameError) as exc:
            reg.canonical("definitely-not-registered")
        err = exc.value
        assert err.known == tuple(sorted(err.known))
        assert err.known == tuple(sorted(reg.names()))
        for name in reg.names():
            assert name in str(err)

    @pytest.mark.parametrize("which", sorted(_package_registries()))
    def test_every_name_round_trips_canonical(self, which):
        reg = _package_registries()[which]
        for name in reg.names():
            assert reg.canonical(name) == name
            assert reg.canonical(name.upper().replace("_", "-")) == name
