"""Tests for RNG normalisation and seed spawning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_seeds


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = as_generator(seq).integers(0, 1000, 5)
        b = as_generator(np.random.SeedSequence(5)).integers(0, 1000, 5)
        assert np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_deterministic(self):
        a = [s.entropy for s in spawn_seeds(3, 4)]
        b = [s.entropy for s in spawn_seeds(3, 4)]
        assert a == b

    def test_children_are_independent_streams(self):
        kids = spawn_seeds(0, 2)
        x = np.random.default_rng(kids[0]).integers(0, 2**31, 100)
        y = np.random.default_rng(kids[1]).integers(0, 2**31, 100)
        assert not np.array_equal(x, y)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_generator_input_accepted(self):
        kids = spawn_seeds(np.random.default_rng(9), 3)
        assert len(kids) == 3
