"""Integration tests for the registered studies at a tiny scale."""

from __future__ import annotations

import pytest

from repro.experiments import (
    Scale,
    StudyContext,
    format_anns_study,
    format_scaling_study,
    format_sfc_pairs,
    format_sweep,
    format_topology_study,
    run_study,
)
from repro.experiments.parametric import plan_input_size_sweep, plan_radius_sweep

TINY = Scale(
    name="tiny",
    pairs_particles=400,
    pairs_order=5,
    pairs_processors=16,
    topo_particles=400,
    topo_order=6,
    topo_processors=16,
    topo_radius=2,
    scaling_particles=400,
    scaling_order=6,
    scaling_processors=(4, 16),
    anns_orders=(1, 2, 3, 4),
    trials=1,
)


class TestAnnsStudy:
    def test_structure(self):
        result = run_study("fig5", StudyContext(scale=TINY))
        assert result.orders == (1, 2, 3, 4)
        assert set(result.values) == {1, 6}
        assert set(result.values[1]) == {"hilbert", "zcurve", "gray", "rowmajor"}
        assert len(result.values[1]["hilbert"]) == 4

    def test_sides(self):
        assert run_study("fig5", StudyContext(scale=TINY)).sides() == [2, 4, 8, 16]

    def test_format_contains_panels(self):
        text = format_anns_study(run_study("fig5", StudyContext(scale=TINY)))
        assert "Fig. 5(a)" in text and "Fig. 5(b)" in text


class TestSfcPairs:
    @pytest.fixture(scope="class")
    def result(self):
        return run_study("tables", StudyContext(scale=TINY, seed=1, trials=1))

    def test_matrix_shape(self, result):
        assert result.distributions == ("uniform", "normal", "exponential")
        for dist in result.distributions:
            for proc in result.processor_curves:
                assert set(result.nfi[dist][proc]) == set(result.particle_curves)
                assert set(result.ffi[dist][proc]) == set(result.particle_curves)

    def test_all_values_positive(self, result):
        for dist in result.distributions:
            for proc in result.processor_curves:
                for part in result.particle_curves:
                    assert result.nfi[dist][proc][part] >= 0
                    assert result.ffi[dist][proc][part] >= 0

    def test_format(self, result):
        text = format_sfc_pairs(result)
        assert "Table I (NFI)" in text and "Table II (FFI)" in text
        assert "Hilbert Curve" in text


class TestTopologyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_study("fig6", StudyContext(scale=TINY, seed=1, trials=1))

    def test_all_cells_present(self, result):
        assert set(result.topologies) == {"bus", "ring", "mesh", "torus", "quadtree", "hypercube"}
        for topo in result.topologies:
            assert set(result.nfi[topo]) == set(result.curves)

    def test_bus_worse_than_torus_for_hilbert(self, result):
        assert result.nfi["bus"]["hilbert"] >= result.nfi["torus"]["hilbert"]

    def test_format(self, result):
        text = format_topology_study(result)
        assert "Fig. 6(a)" in text and "Fig. 6(b)" in text


class TestScalingStudy:
    def test_series_lengths(self):
        result = run_study("fig7", StudyContext(scale=TINY, seed=1, trials=1))
        assert result.processor_counts == (4, 16)
        for curve in result.curves:
            assert len(result.nfi[curve]) == 2
            assert len(result.ffi[curve]) == 2

    def test_acd_grows_with_processors(self):
        result = run_study("fig7", StudyContext(scale=TINY, seed=1, trials=1))
        for curve in result.curves:
            assert result.nfi[curve][1] >= result.nfi[curve][0]

    def test_format(self):
        text = format_scaling_study(run_study("fig7", StudyContext(scale=TINY, seed=1, trials=1)))
        assert "Fig. 7(a)" in text and "Fig. 7(b)" in text


class TestSweeps:
    def test_radius_sweep_monotone_event_growth(self):
        ctx = StudyContext(scale=TINY, seed=1, trials=1)
        result = run_study("sweep_radius", ctx, plan=plan_radius_sweep(ctx, (1, 2)))
        assert result.parameter == "radius"
        assert result.values == (1, 2)

    def test_input_size_sweep(self):
        ctx = StudyContext(scale=TINY, seed=1, trials=1)
        result = run_study(
            "sweep_input_size", ctx, plan=plan_input_size_sweep(ctx, (0.5, 1.0))
        )
        assert len(result.values) == 2
        assert result.values[0] < result.values[1]

    def test_distribution_sweep(self):
        result = run_study("sweep_distribution", StudyContext(scale=TINY, seed=1, trials=1))
        assert result.values == ("uniform", "normal", "exponential")

    def test_format(self):
        ctx = StudyContext(scale=TINY, seed=1, trials=1)
        text = format_sweep(
            run_study("sweep_radius", ctx, plan=plan_radius_sweep(ctx, (1, 2)))
        )
        assert "NFI ACD vs radius" in text
