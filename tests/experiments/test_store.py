"""Tests for the persistent result store and resumable study runs."""

from __future__ import annotations

import json

import pytest

import repro.experiments.campaign as campaign_mod
import repro.experiments.study as study_mod
from repro import obs
from repro.experiments import Scale
from repro.experiments.ablation import AblationRow
from repro.experiments.anns_study import ANNS_STUDY, plan_anns_study
from repro.experiments.config import FmmCase
from repro.experiments.runner import CaseResult
from repro.experiments.sfc_pairs import SFC_PAIRS_STUDY, plan_sfc_pairs
from repro.experiments.store import MISS, ResultStore, default_store
from repro.experiments.study import StudyContext, run_study, store_key

TINY = Scale(
    name="store-tiny",
    pairs_particles=200,
    pairs_order=4,
    pairs_processors=16,
    topo_particles=200,
    topo_order=5,
    topo_processors=16,
    topo_radius=1,
    scaling_particles=200,
    scaling_order=5,
    scaling_processors=(4, 16),
    anns_orders=(1, 2),
    trials=2,
)

SEED = 5


def _case(**overrides) -> FmmCase:
    base = dict(
        num_particles=100,
        order=4,
        num_processors=16,
        topology="torus",
        particle_curve="hilbert",
        processor_curve="hilbert",
        distribution="uniform",
    )
    base.update(overrides)
    return FmmCase(**base)


class TestResultStore:
    def test_scalar_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = {"kind": "test", "x": 1}
        assert store.get(key) is MISS
        store.put(key, 3.25)
        assert store.get(key) == 3.25
        assert store.stats["entries"] == 1

    def test_container_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        value = {"a": [1, 2.5, "s", None, True], "b": {"c": [0.1]}}
        store.put("k", value)
        assert store.get("k") == value

    def test_tuples_come_back_as_lists(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", (1, 2))
        assert store.get("k") == [1, 2]

    def test_case_result_codec(self, tmp_path):
        store = ResultStore(tmp_path)
        result = CaseResult(
            case=_case(), trials=2, nfi_acd=1.5, nfi_acd_std=0.1,
            ffi_acd=2.5, ffi_acd_std=0.2,
            ffi_phases={"combined": 2.5}, nfi_events=10.0, ffi_events=20.0,
        )
        store.put("k", result)
        loaded = store.get("k")
        assert isinstance(loaded, CaseResult)
        assert loaded.case == result.case
        assert loaded.nfi_acd == result.nfi_acd

    def test_ablation_row_codec(self, tmp_path):
        store = ResultStore(tmp_path)
        rows = [AblationRow("a,b", 1.0, 2.0), AblationRow("c", 3.0, 4.0)]
        store.put("k", rows)
        assert store.get("k") == rows

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        store.path_for("k").write_text("not json{")
        assert store.get("k") is MISS

    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        path = store.path_for("k")
        path.write_text("not json{")
        with obs.recording() as rec:
            assert store.get("k") is MISS
        assert store.corrupt == 1
        assert rec.counters["store.corrupt"] == 1
        assert rec.counters["store.misses"] == 1
        # the bad bytes left the addressable namespace but are kept
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # ... and the key is writable and readable again
        store.put("k", 2)
        assert store.get("k") == 2

    def test_truncated_payload_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"a": [1, 2, 3]})
        path = store.path_for("k")
        path.write_text(path.read_text()[:25])
        assert store.get("k") is MISS
        assert store.corrupt == 1 and not path.exists()

    def test_codec_schema_drift_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        path = store.path_for("k")
        payload = json.loads(path.read_text())
        payload["value"] = {"__store__": "NoSuchCodec", "data": {}}
        path.write_text(json.dumps(payload))
        assert store.get("k") is MISS  # decode failure, not an exception
        assert store.corrupt == 1
        assert path.with_suffix(".corrupt").exists()

    def test_non_dict_payload_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        store.path_for("k").write_text('["not", "a", "payload"]')
        assert store.get("k") is MISS
        assert store.corrupt == 1

    def test_clear_removes_quarantined_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        store.path_for("k").write_text("garbage")
        store.get("k")
        assert list(tmp_path.glob("*.corrupt"))
        store.clear()
        assert not list(tmp_path.glob("*.corrupt"))
        assert store.stats == {"hits": 0, "misses": 0, "corrupt": 0, "entries": 0}

    def test_put_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        import repro.experiments.backends as backends_mod

        synced = []
        monkeypatch.setattr(backends_mod.os, "fsync", synced.append)
        store = ResultStore(tmp_path)
        store.put("k", 1)
        # once for the temp payload file, once for the directory entry
        assert len(synced) == 2
        assert all(isinstance(fd, int) for fd in synced)

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        # simulate a hash collision / tampered entry: same file, other key
        payload = json.loads(store.path_for("k").read_text())
        payload["key"] = "other"
        store.path_for("k").write_text(json.dumps(payload))
        assert store.get("k") is MISS

    def test_unstorable_value_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(TypeError):
            store.put("k", object())
        with pytest.raises(TypeError):
            store.put("k", {1: "non-string key"})

    def test_no_temp_files_left(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(f"k{i}", i)
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        store.clear()
        assert len(store) == 0
        assert store.get("k") is MISS

    def test_default_store_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store() is None
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s"))
        store = default_store()
        assert store is not None and store.root == tmp_path / "s"


class TestStoreKey:
    def test_covers_case_and_campaign_params(self):
        plan = plan_sfc_pairs(
            StudyContext(scale=TINY, seed=SEED, trials=2),
            distributions=("uniform",),
            curves=("hilbert",),
        )
        (unit,) = plan.units
        key = store_key(unit, plan)
        assert key["trials"] == 2 and key["seed"] == SEED
        assert key["case"]["particle_curve"] == "hilbert"
        # a different trial count addresses a different entry
        other = plan_sfc_pairs(
            StudyContext(scale=TINY, seed=SEED, trials=1),
            distributions=("uniform",),
            curves=("hilbert",),
        )
        assert store_key(other.units[0], other) != key

    def test_unkeyable_seed_bypasses_store(self):
        plan = plan_sfc_pairs(
            StudyContext(scale=TINY, seed=object(), trials=1),
            distributions=("uniform",),
            curves=("hilbert",),
        )
        assert store_key(plan.units[0], plan) is None


@pytest.fixture
def count_instance_trials(monkeypatch):
    """Count grouped-campaign instance-trial computations (jobs=1 path)."""
    calls = {"n": 0}
    orig = campaign_mod.run_instance_trial

    def counting(*args, **kwargs):
        calls["n"] += 1
        return orig(*args, **kwargs)

    monkeypatch.setattr(campaign_mod, "run_instance_trial", counting)
    return calls


@pytest.fixture
def count_compute_units(monkeypatch):
    """Count compute-unit executions (jobs=1 path)."""
    calls = {"n": 0}
    orig = study_mod.execute_compute_unit

    def counting(unit):
        calls["n"] += 1
        return orig(unit)

    monkeypatch.setattr(study_mod, "execute_compute_unit", counting)
    return calls


def _pairs_plan(ctx, curves=("hilbert", "rowmajor")):
    return plan_sfc_pairs(ctx, distributions=("uniform",), curves=curves)


class TestResumableStudies:
    def test_warm_rerun_computes_nothing(self, tmp_path, count_instance_trials):
        store = ResultStore(tmp_path)
        ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=store)
        cold = run_study(SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx))
        # 2 particle-curve instance groups x 2 trials
        assert count_instance_trials["n"] == 4
        assert len(store) == 4  # one entry per case
        count_instance_trials["n"] = 0
        warm = run_study(SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx))
        assert count_instance_trials["n"] == 0
        assert warm == cold

    def test_store_results_bit_identical_to_direct_run(self, tmp_path):
        store = ResultStore(tmp_path)
        stored_ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=store)
        run_study(SFC_PAIRS_STUDY, stored_ctx, plan=_pairs_plan(stored_ctx))
        warm = run_study(SFC_PAIRS_STUDY, stored_ctx, plan=_pairs_plan(stored_ctx))
        plain_ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=None)
        plain = run_study(SFC_PAIRS_STUDY, plain_ctx, plan=_pairs_plan(plain_ctx))
        assert warm == plain

    def test_extended_sweep_computes_only_new_cases(self, tmp_path, count_instance_trials):
        store = ResultStore(tmp_path)
        ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=store)
        run_study(SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx))
        count_instance_trials["n"] = 0
        extended = run_study(
            SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx, curves=("hilbert", "rowmajor", "zcurve"))
        )
        # 9 cases total, 4 stored; the 5 pending span 3 instance groups
        assert count_instance_trials["n"] == 6
        assert len(store) == 9
        assert set(extended.nfi["uniform"]) == {"hilbert", "rowmajor", "zcurve"}

    def test_interrupted_sweep_resumes_from_finished_cases(
        self, tmp_path, monkeypatch, count_instance_trials
    ):
        store = ResultStore(tmp_path)
        ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=store)

        orig = campaign_mod.run_instance_trial
        budget = {"left": 2}

        def failing(*args, **kwargs):
            if budget["left"] == 0:
                raise RuntimeError("simulated crash")
            budget["left"] -= 1
            return orig(*args, **kwargs)

        monkeypatch.setattr(campaign_mod, "run_instance_trial", failing)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_study(SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx))
        # the first instance group (2 trials) finished and was persisted
        assert len(store) == 2

        monkeypatch.setattr(campaign_mod, "run_instance_trial", orig)
        count_instance_trials["n"] = 0
        resumed = run_study(SFC_PAIRS_STUDY, ctx, plan=_pairs_plan(ctx))
        assert count_instance_trials["n"] == 2  # only the unfinished group
        plain_ctx = StudyContext(scale=TINY, seed=SEED, trials=2, store=None)
        assert resumed == run_study(SFC_PAIRS_STUDY, plain_ctx, plan=_pairs_plan(plain_ctx))

    def test_compute_unit_studies_resume(self, tmp_path, count_compute_units):
        store = ResultStore(tmp_path)
        ctx = StudyContext(scale=TINY, store=store)
        cold = run_study(ANNS_STUDY, ctx, plan=plan_anns_study(ctx))
        assert count_compute_units["n"] == len(plan_anns_study(ctx).units)
        count_compute_units["n"] = 0
        warm = run_study(ANNS_STUDY, ctx, plan=plan_anns_study(ctx))
        assert count_compute_units["n"] == 0
        assert warm == cold

    def test_store_none_bypasses_env(self, tmp_path, monkeypatch, count_compute_units):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        ctx = StudyContext(scale=TINY, store=None)
        run_study(ANNS_STUDY, ctx, plan=plan_anns_study(ctx))
        assert not (tmp_path / "envstore").exists()

    def test_env_store_used_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        ctx = StudyContext(scale=TINY)
        run_study(ANNS_STUDY, ctx, plan=plan_anns_study(ctx))
        assert len(list((tmp_path / "envstore").glob("*.json"))) == len(
            plan_anns_study(ctx).units
        )


@pytest.fixture
def tiny_result() -> CaseResult:
    return CaseResult(
        case=_case(), trials=2, nfi_acd=1.5, nfi_acd_std=0.1,
        ffi_acd=2.5, ffi_acd_std=0.2,
        ffi_phases={"combined": 2.5}, nfi_events=10.0, ffi_events=20.0,
    )


class TestEncodeDispatchCache:
    """encode_value resolves codecs through an exact-type cache."""

    def test_cache_populated_on_first_encode(self):
        import repro.experiments.store as store_mod

        store_mod._ENCODE_DISPATCH.clear()
        store_mod.encode_value({"n": 1, "xs": [1.5, "a", None]})
        # plain types are cached as "no codec" so the registry is never
        # rescanned for them
        assert store_mod._ENCODE_DISPATCH[int] is None
        assert store_mod._ENCODE_DISPATCH[str] is None
        assert all(cls is not int for cls, _, _ in store_mod._CODECS.values())

    def test_codec_types_cached(self, tiny_result):
        import repro.experiments.store as store_mod

        store_mod._ENCODE_DISPATCH.clear()
        encoded = store_mod.encode_value(tiny_result)
        assert encoded["__store__"] == "CaseResult"
        cached = store_mod._ENCODE_DISPATCH[CaseResult]
        assert cached is not None and cached[0] == "CaseResult"

    def test_subclass_dispatches_to_base_codec(self, tiny_result):
        import dataclasses

        import repro.experiments.store as store_mod

        sub_cls = dataclasses.make_dataclass(
            "SubResult", [], bases=(CaseResult,), frozen=True
        )
        sub = sub_cls(**dataclasses.asdict(tiny_result) | {"case": tiny_result.case})
        encoded = store_mod.encode_value(sub)
        assert encoded["__store__"] == "CaseResult"
        decoded = store_mod.decode_value(encoded)
        assert decoded == tiny_result  # isinstance semantics preserved

    def test_registration_invalidates_cache(self):
        import repro.experiments.store as store_mod

        class Marker:
            pass

        store_mod._ENCODE_DISPATCH.clear()
        with pytest.raises(TypeError):
            store_mod.encode_value(Marker())  # cached as "no codec"
        assert store_mod._ENCODE_DISPATCH[Marker] is None
        tag = "test-marker-codec"
        try:
            store_mod.register_store_codec(tag, Marker, lambda m: {}, lambda d: Marker())
            encoded = store_mod.encode_value(Marker())  # cache was cleared
            assert encoded["__store__"] == tag
        finally:
            store_mod._CODECS.pop(tag, None)
            store_mod._ENCODE_DISPATCH.clear()
