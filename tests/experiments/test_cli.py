"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_fig5_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out and "Fig. 5(b)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--scale", "gigantic"])

    def test_help_mentions_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "tables" in out and "fig7" in out

    def test_jobs_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--jobs", "0"])

    def test_jobs_flag_installs_default(self, capsys, monkeypatch):
        from repro.experiments.runner import resolve_jobs, set_default_jobs

        monkeypatch.setenv("REPRO_SCALE", "small")
        try:
            assert main(["fig5", "--jobs", "2"]) == 0
            assert resolve_jobs(None) == 2
        finally:
            set_default_jobs(None)
        capsys.readouterr()
