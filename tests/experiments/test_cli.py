"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_fig5_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out and "Fig. 5(b)" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--scale", "gigantic"])

    def test_help_mentions_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "tables" in out and "fig7" in out

    def test_jobs_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--jobs", "0"])

    def test_jobs_flag_installs_default(self, capsys, monkeypatch):
        from repro.experiments.runner import resolve_jobs, set_default_jobs

        monkeypatch.setenv("REPRO_SCALE", "small")
        try:
            assert main(["fig5", "--jobs", "2"]) == 0
            assert resolve_jobs(None) == 2
        finally:
            set_default_jobs(None)
        capsys.readouterr()

    def test_store_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--store", "somewhere", "--no-store"])

    def test_single_result_outputs(self, capsys, monkeypatch, tmp_path):
        from repro.experiments.io import load_result

        monkeypatch.setenv("REPRO_SCALE", "small")
        json_path = tmp_path / "fig5.json"
        csv_path = tmp_path / "fig5.csv"
        assert main(["fig5", "--json", str(json_path), "--csv", str(csv_path)]) == 0
        capsys.readouterr()
        assert load_result(json_path).orders
        assert csv_path.read_text().startswith("radius,curve,side,stretch")

    def test_multi_result_outputs_write_directories(self, capsys, monkeypatch, tmp_path):
        from repro.experiments.io import load_result

        monkeypatch.setenv("REPRO_SCALE", "small")
        out = tmp_path / "out"
        assert main(["ablations", "--json", str(out), "--csv", str(out)]) == 0
        capsys.readouterr()
        json_files = sorted(p.name for p in out.glob("*.json"))
        assert json_files == [
            "ablation_continuity.json",
            "ablation_ffi_granularity.json",
            "ablation_hypercube_layout.json",
            "ablation_interpolation_reading.json",
            "ablation_quadtree_convention.json",
        ]
        assert len(list(out.glob("*.csv"))) == 5
        loaded = load_result(out / "ablation_continuity.json")
        assert loaded.ablation == "continuity"

    def test_store_flag_persists_and_resumes(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "small")
        store_dir = tmp_path / "store"
        assert main(["clustering", "--store", str(store_dir)]) == 0
        first = capsys.readouterr().out
        entries = len(list(store_dir.glob("*.json")))
        assert entries > 0

        import repro.experiments.study as study_mod

        def boom(unit):  # the warm rerun must not compute anything
            raise AssertionError("compute unit executed despite warm store")

        monkeypatch.setattr(study_mod, "execute_compute_unit", boom)
        assert main(["clustering", "--store", str(store_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_no_store_bypasses_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        assert main(["clustering", "--no-store"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "envstore").exists()

    def test_fault_tolerance_flags_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--max-retries", "-1"])
        with pytest.raises(SystemExit):
            main(["fig5", "--unit-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["fig5", "--strict", "--best-effort"])

    def test_memory_budget_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--memory-budget", "plenty"])
        with pytest.raises(SystemExit):
            main(["fig5", "--memory-budget", "0"])

    def test_memory_budget_flag_installs_config(self, capsys, monkeypatch):
        import repro.runtime as runtime_mod
        from repro.experiments.runner import set_default_jobs
        from repro.runtime import runtime_config

        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setattr(runtime_mod, "_active", runtime_mod._active)
        try:
            assert main(["fig5", "--memory-budget", "512MiB"]) == 0
            assert runtime_config().memory_budget == 512 << 20
        finally:
            set_default_jobs(None)
        capsys.readouterr()

    def test_fault_tolerance_flags_install_config(self, capsys, monkeypatch):
        import repro.runtime as runtime_mod
        from repro.experiments.runner import set_default_jobs
        from repro.runtime import runtime_config

        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setattr(runtime_mod, "_active", runtime_mod._active)
        try:
            assert main(["fig5", "--max-retries", "5", "--unit-timeout", "9.5", "--strict"]) == 0
            config = runtime_config()
            assert config.max_retries == 5
            assert config.unit_timeout == 9.5
            assert config.strict is True
        finally:
            set_default_jobs(None)
        capsys.readouterr()

    def test_best_effort_overrides_strict_env(self, capsys, monkeypatch):
        import repro.runtime as runtime_mod
        from repro.experiments.runner import set_default_jobs
        from repro.runtime import runtime_config

        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setenv("REPRO_STRICT", "1")
        monkeypatch.setattr(runtime_mod, "_active", runtime_mod._active)
        try:
            assert main(["fig5", "--best-effort"]) == 0
            assert runtime_config().strict is False
        finally:
            set_default_jobs(None)
        capsys.readouterr()
