"""Round-trip tests for result serialisation."""

from __future__ import annotations

import pytest

from repro.experiments import Scale, StudyContext, run_study
from repro.experiments.scaling_study import plan_scaling_study
from repro.experiments.sfc_pairs import plan_sfc_pairs
from repro.experiments.io import load_result, result_to_csv_rows, save_result, write_csv

TINY = Scale(
    name="io-tiny",
    pairs_particles=200,
    pairs_order=4,
    pairs_processors=16,
    topo_particles=200,
    topo_order=5,
    topo_processors=16,
    topo_radius=1,
    scaling_particles=200,
    scaling_order=5,
    scaling_processors=(4, 16),
    anns_orders=(1, 2, 3),
    trials=1,
)


@pytest.fixture(scope="module")
def anns_result():
    return run_study("fig5", StudyContext(scale=TINY))


@pytest.fixture(scope="module")
def pairs_result():
    ctx = StudyContext(scale=TINY, seed=0, trials=1)
    return run_study(
        "tables", ctx, plan=plan_sfc_pairs(ctx, curves=("hilbert", "rowmajor"))
    )


class TestJsonRoundtrip:
    def test_anns(self, tmp_path, anns_result):
        path = save_result(anns_result, tmp_path / "anns.json")
        loaded = load_result(path)
        assert loaded == anns_result

    def test_pairs(self, tmp_path, pairs_result):
        path = save_result(pairs_result, tmp_path / "pairs.json")
        assert load_result(path) == pairs_result

    def test_scaling(self, tmp_path):
        ctx = StudyContext(scale=TINY, seed=0, trials=1)
        result = run_study("fig7", ctx, plan=plan_scaling_study(ctx, ("hilbert",)))
        path = save_result(result, tmp_path / "scaling.json")
        assert load_result(path) == result

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result({"not": "a result"}, tmp_path / "x.json")

    def test_bad_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"type": "Nonsense", "data": {}}')
        with pytest.raises(ValueError):
            load_result(bad)


class TestCsv:
    def test_anns_rows(self, anns_result):
        rows = result_to_csv_rows(anns_result)
        # radii x curves x orders
        assert len(rows) == 2 * 4 * 3
        assert {r["radius"] for r in rows} == {1, 6}

    def test_pairs_rows(self, pairs_result):
        rows = result_to_csv_rows(pairs_result)
        assert len(rows) == 2 * 3 * 2 * 2  # models x dists x proc x part
        assert all(r["acd"] >= 0 for r in rows)

    def test_write_csv(self, tmp_path, anns_result):
        path = write_csv(anns_result, tmp_path / "anns.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "radius,curve,side,stretch"
        assert len(lines) == 1 + 24

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_to_csv_rows(42)


class TestCsvQuoting:
    """Values with commas, quotes or newlines must round-trip (RFC 4180)."""

    def _evil_result(self):
        from repro.experiments.ablation import AblationResult, AblationRow

        return AblationResult(
            ablation="quoting",
            title="quoting",
            rows=[
                AblationRow('comma,separated', 1.0, 2.0),
                AblationRow('has "quotes"', 3.0, 4.0),
                AblationRow("multi\nline", 5.0, 6.0),
            ],
        )

    def test_special_characters_round_trip(self, tmp_path):
        import csv

        path = write_csv(self._evil_result(), tmp_path / "evil.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [r["variant"] for r in rows] == [
            "comma,separated", 'has "quotes"', "multi\nline"
        ]
        assert [float(r["nfi_acd"]) for r in rows] == [1.0, 3.0, 5.0]

    def test_comma_value_does_not_add_columns(self, tmp_path):
        import csv

        path = write_csv(self._evil_result(), tmp_path / "evil.csv")
        with open(path, newline="") as handle:
            widths = {len(row) for row in csv.reader(handle)}
        assert widths == {4}  # ablation, variant, nfi_acd, ffi_acd


class TestAtomicWrites:
    def test_no_temp_files_after_save(self, tmp_path, anns_result):
        save_result(anns_result, tmp_path / "a.json")
        write_csv(anns_result, tmp_path / "a.csv")
        assert not list(tmp_path.glob("*.tmp"))

    def test_atomic_write_text_replaces(self, tmp_path):
        from repro.experiments.io import atomic_write_text

        target = tmp_path / "t.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert not list(tmp_path.glob("*.tmp"))
