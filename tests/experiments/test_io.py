"""Round-trip tests for result serialisation."""

from __future__ import annotations

import pytest

from repro.experiments import Scale, run_anns_study, run_scaling_study, run_sfc_pairs
from repro.experiments.io import load_result, result_to_csv_rows, save_result, write_csv

TINY = Scale(
    name="io-tiny",
    pairs_particles=200,
    pairs_order=4,
    pairs_processors=16,
    topo_particles=200,
    topo_order=5,
    topo_processors=16,
    topo_radius=1,
    scaling_particles=200,
    scaling_order=5,
    scaling_processors=(4, 16),
    anns_orders=(1, 2, 3),
    trials=1,
)


@pytest.fixture(scope="module")
def anns_result():
    return run_anns_study(TINY)


@pytest.fixture(scope="module")
def pairs_result():
    return run_sfc_pairs(TINY, seed=0, trials=1, curves=("hilbert", "rowmajor"))


class TestJsonRoundtrip:
    def test_anns(self, tmp_path, anns_result):
        path = save_result(anns_result, tmp_path / "anns.json")
        loaded = load_result(path)
        assert loaded == anns_result

    def test_pairs(self, tmp_path, pairs_result):
        path = save_result(pairs_result, tmp_path / "pairs.json")
        assert load_result(path) == pairs_result

    def test_scaling(self, tmp_path):
        result = run_scaling_study(TINY, seed=0, trials=1, curves=("hilbert",))
        path = save_result(result, tmp_path / "scaling.json")
        assert load_result(path) == result

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result({"not": "a result"}, tmp_path / "x.json")

    def test_bad_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"type": "Nonsense", "data": {}}')
        with pytest.raises(ValueError):
            load_result(bad)


class TestCsv:
    def test_anns_rows(self, anns_result):
        rows = result_to_csv_rows(anns_result)
        # radii x curves x orders
        assert len(rows) == 2 * 4 * 3
        assert {r["radius"] for r in rows} == {1, 6}

    def test_pairs_rows(self, pairs_result):
        rows = result_to_csv_rows(pairs_result)
        assert len(rows) == 2 * 3 * 2 * 2  # models x dists x proc x part
        assert all(r["acd"] >= 0 for r in rows)

    def test_write_csv(self, tmp_path, anns_result):
        path = write_csv(anns_result, tmp_path / "anns.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "radius,curve,side,stretch"
        assert len(lines) == 1 + 24

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_to_csv_rows(42)
