"""Tests for the consolidated runtime configuration (repro.runtime)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments import artifacts
from repro.experiments import config as experiments_config
from repro.experiments.runner import map_units, resolve_jobs
from repro.experiments.store import default_store
from repro.runtime import ENV_VARS, RuntimeConfig, configure, runtime_config
from repro.topology import cache as topo_cache


class TestFromEnv:
    def test_defaults_with_empty_env(self):
        config = RuntimeConfig.from_env({})
        assert config == RuntimeConfig()
        assert config.scale == "small"
        assert config.jobs is None
        assert config.store_dir is None
        assert config.cache_entries == 32
        assert config.cache_matrix_bytes == 256 << 20
        assert config.trace is False
        assert config.metrics_path is None

    def test_every_documented_var_parses(self):
        env = {
            "REPRO_SCALE": "paper",
            "REPRO_JOBS": "4",
            "REPRO_STORE": "results/",
            "REPRO_CACHE_ENTRIES": "7",
            "REPRO_CACHE_MATRIX_BYTES": "1024",
            "REPRO_EVENT_CACHE_BYTES": "2048",
            "REPRO_EVENT_CACHE_ENTRIES": "9",
            "REPRO_TRACE": "1",
            "REPRO_METRICS": "out/manifest.json",
            "REPRO_MAX_RETRIES": "5",
            "REPRO_UNIT_TIMEOUT": "2.5",
            "REPRO_STRICT": "1",
            "REPRO_FAULTS": "raise:rate=0.1:seed=7",
            "REPRO_KERNEL_BACKEND": "Native ",
            "REPRO_MEMORY_BUDGET": "2GiB",
        }
        assert set(env) == set(ENV_VARS)
        config = RuntimeConfig.from_env(env)
        assert config.scale == "paper"
        assert config.jobs == 4
        assert config.store_dir == "results/"
        assert config.cache_entries == 7
        assert config.cache_matrix_bytes == 1024
        assert config.event_cache_bytes == 2048
        assert config.event_cache_entries == 9
        assert config.trace is True
        assert config.metrics_path == "out/manifest.json"
        assert config.max_retries == 5
        assert config.unit_timeout == 2.5
        assert config.strict is True
        assert config.faults == "raise:rate=0.1:seed=7"
        assert config.kernel_backend == "native"  # normalised (strip + lower)
        assert config.memory_budget == 2 << 30

    def test_fault_tolerance_defaults(self):
        config = RuntimeConfig.from_env({})
        assert config.max_retries == 2
        assert config.unit_timeout is None
        assert config.strict is False
        assert config.faults is None

    def test_bad_unit_timeout_raises(self):
        with pytest.raises(ValueError, match="REPRO_UNIT_TIMEOUT"):
            RuntimeConfig.from_env({"REPRO_UNIT_TIMEOUT": "fast"})

    def test_bad_fault_plan_raises(self):
        with pytest.raises(ValueError, match="fault"):
            RuntimeConfig(faults="explode:unit=1")

    def test_fault_tolerance_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(unit_timeout=0.0)

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("", False), ("off", False),
    ])
    def test_trace_truthiness(self, raw, expected):
        assert RuntimeConfig.from_env({"REPRO_TRACE": raw}).trace is expected

    def test_invalid_int_raises(self):
        with pytest.raises(ValueError, match="REPRO_CACHE_ENTRIES"):
            RuntimeConfig.from_env({"REPRO_CACHE_ENTRIES": "lots"})

    def test_kernel_backend_defaults_and_validation(self):
        assert RuntimeConfig.from_env({}).kernel_backend == "auto"
        assert RuntimeConfig.from_env({"REPRO_KERNEL_BACKEND": ""}).kernel_backend == "auto"
        with pytest.raises(ValueError, match="kernel_backend"):
            RuntimeConfig(kernel_backend="fortran")

    def test_memory_budget_parsing(self):
        from repro.runtime import parse_bytes

        assert RuntimeConfig.from_env({}).memory_budget is None
        assert RuntimeConfig.from_env({"REPRO_MEMORY_BUDGET": "1048576"}).memory_budget == 1 << 20
        assert RuntimeConfig.from_env({"REPRO_MEMORY_BUDGET": "512MiB"}).memory_budget == 512 << 20
        assert parse_bytes("2GiB") == parse_bytes("2g") == parse_bytes("2GB") == 2 << 30
        assert parse_bytes("1.5KiB") == 1536
        assert parse_bytes(4096) == 4096
        assert parse_bytes("64k") == 64 << 10  # binary multiples throughout
        for bad in ("", "fast", "12 parsecs", "-1", "5..0MB"):
            with pytest.raises(ValueError):
                parse_bytes(bad)
        with pytest.raises(ValueError, match="REPRO_MEMORY_BUDGET"):
            RuntimeConfig.from_env({"REPRO_MEMORY_BUDGET": "plenty"})
        with pytest.raises(ValueError, match="memory_budget"):
            RuntimeConfig(memory_budget=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(jobs=0)
        with pytest.raises(ValueError):
            RuntimeConfig(cache_matrix_bytes=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(event_cache_entries=0)

    def test_roundtrip_as_dict(self):
        config = RuntimeConfig(jobs=2, store_dir="x", trace=True)
        assert RuntimeConfig(**config.as_dict()) == config


class TestPrecedence:
    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert runtime_config().scale == "paper"

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        with configure(scale="small"):
            assert runtime_config().scale == "small"
        assert runtime_config().scale == "paper"

    def test_env_reread_when_not_configured(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runtime_config().jobs == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert runtime_config().jobs is None


class TestSingleParseSite:
    """The consuming layers read the config, not os.environ."""

    def test_resolve_jobs_uses_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_store_uses_config(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "s"
        monkeypatch.delenv("REPRO_STORE")
        assert default_store() is None

    def test_active_scale_uses_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert experiments_config.active_scale().name == "paper"

    def test_no_direct_environ_reads_in_consumers(self):
        import inspect

        import repro.experiments.artifacts
        import repro.experiments.runner
        import repro.experiments.store
        import repro.topology.cache

        for mod in (
            repro.experiments.artifacts,
            repro.experiments.runner,
            repro.experiments.store,
            repro.topology.cache,
        ):
            assert "os.environ" not in inspect.getsource(mod)

    def test_reexported_from_experiments_config(self):
        assert experiments_config.RuntimeConfig is RuntimeConfig
        assert experiments_config.configure is configure
        assert experiments_config.runtime_config is runtime_config


class TestConfigureSideEffects:
    def test_swaps_caches_on_budget_change(self):
        before_topo = topo_cache.get_topology_cache()
        before_events = artifacts.get_event_cache()
        with configure(cache_entries=3, event_cache_bytes=1024):
            assert topo_cache.get_topology_cache() is not before_topo
            assert topo_cache.get_topology_cache().max_entries == 3
            assert artifacts.get_event_cache().max_bytes == 1024
        assert topo_cache.get_topology_cache() is before_topo
        assert artifacts.get_event_cache() is before_events

    def test_unchanged_budgets_keep_caches(self):
        before = topo_cache.get_topology_cache()
        with configure(scale="paper"):
            assert topo_cache.get_topology_cache() is before

    def test_jobs_default_installed_and_restored(self):
        with configure(jobs=2):
            assert resolve_jobs(None) == 2
        assert resolve_jobs(None) == 1

    def test_trace_installs_recorder(self):
        assert obs.get_recorder() is None
        with configure(trace=True):
            assert obs.get_recorder() is not None
        assert obs.get_recorder() is None

    def test_restore_is_idempotent(self):
        handle = configure(jobs=2)
        handle.restore()
        handle.restore()
        assert resolve_jobs(None) == 1


def _counting_unit(n: int) -> int:
    """Top-level (picklable) unit that reports deterministic telemetry."""
    obs.count("test.calls")
    obs.count("test.total", n)
    return n * n


class TestMapUnitsAggregation:
    """Worker counters merge into the parent identically at any job count."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_counters_agree_with_serial_totals(self, jobs):
        args = [(i,) for i in range(8)]
        with obs.recording() as rec:
            results = list(map_units(_counting_unit, args, jobs))
        assert results == [i * i for i in range(8)]
        assert rec.counters["test.calls"] == 8
        assert rec.counters["test.total"] == sum(range(8))
        if jobs > 1:
            assert rec.counters["pool.units"] == 8
            assert rec.counters["pool.busy_s"] >= 0
            assert rec.gauges["pool.jobs"] == 4
        else:
            assert rec.counters["units.serial"] == 8

    def test_no_recorder_no_overhead_path(self):
        results = list(map_units(_counting_unit, [(2,), (3,)], 1))
        assert results == [4, 9]
        assert obs.get_recorder() is None
