"""Sharded ACD evaluation: bit-identity, resume, fault tolerance.

The sharded path reuses the study engine's executor and result store;
these tests pin that (a) the merged result is exactly the dense one at
any job count, (b) a failed run leaves its finished tiles in the store
and the rerun pays only what is missing, and (c) faults injected into
tile units follow the ordinary retry policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.experiments.executor import (
    ExecutionPolicy,
    UnitFailedError,
    shutdown_shared_executor,
)
from repro.experiments.sharded import (
    ShardedAcdResult,
    acd_tile_key,
    evaluate_acd_sharded,
)
from repro.experiments.store import ResultStore
from repro.faults import parse_faults
from repro.fmm.events import CommunicationEvents
from repro.metrics.acd import compute_acd
from repro.runtime import configure
from repro.topology.registry import make_topology

P = 64
BUDGET = 4096  # far below the 16 KiB dense matrix: forces tiling


@pytest.fixture
def fresh_pool():
    yield
    shutdown_shared_executor(wait=False, cancel_futures=True, timeout=5.0)


def _events(seed: int = 0, weighted: bool = True) -> CommunicationEvents:
    rng = np.random.default_rng(seed)
    events = CommunicationEvents()
    n = 3000
    weights = rng.integers(1, 6, n) if weighted else None
    events.add(rng.integers(0, P, n), rng.integers(0, P, n), weights)
    return events


def _policy(**overrides) -> ExecutionPolicy:
    kwargs = dict(max_retries=2, backoff_base=0.0)
    kwargs.update(overrides)
    if isinstance(kwargs.get("faults"), str):
        kwargs["faults"] = parse_faults(kwargs["faults"])
    return ExecutionPolicy(**kwargs)


class TestBitIdentity:
    @pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
    def test_matches_dense(self, weighted, tmp_path):
        events = _events(weighted=weighted)
        topology = make_topology("torus", P, processor_curve="hilbert")
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        sharded = evaluate_acd_sharded(
            events, topology, memory_budget=BUDGET, store=ResultStore(tmp_path)
        )
        assert isinstance(sharded, ShardedAcdResult)
        assert sharded.result == dense
        assert sharded.computed == sharded.tiles and sharded.resumed == 0

    def test_matches_dense_without_store(self):
        events = _events(1)
        topology = make_topology("hypercube", P)
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        assert evaluate_acd_sharded(
            events, topology, memory_budget=BUDGET, store=None
        ).result == dense

    @pytest.mark.usefixtures("fresh_pool")
    def test_matches_dense_at_any_job_count(self, tmp_path):
        events = _events(2)
        topology = make_topology("mesh", P, processor_curve="hilbert")
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        for jobs in (1, 3):
            result = evaluate_acd_sharded(
                events, topology, memory_budget=BUDGET, store=None, jobs=jobs
            )
            assert result.result == dense

    def test_accepts_precompacted_histogram(self):
        events = _events(3)
        topology = make_topology("ring", P)
        hist = events.compact(P)
        assert (
            evaluate_acd_sharded(hist, topology, memory_budget=BUDGET, store=None).result
            == compute_acd(hist, topology, memory_budget=None)
        )


class TestResume:
    def test_second_run_pays_nothing(self, tmp_path):
        events = _events(4)
        topology = make_topology("torus", P, processor_curve="hilbert")
        store = ResultStore(tmp_path)
        first = evaluate_acd_sharded(events, topology, memory_budget=BUDGET, store=store)
        second = evaluate_acd_sharded(events, topology, memory_budget=BUDGET, store=store)
        assert second.result == first.result
        assert second.computed == 0 and second.resumed == second.tiles

    def test_failed_run_flushes_finished_tiles(self, tmp_path):
        """Strict failure mid-run leaves completed tiles; rerun pays the rest."""
        events = _events(5)
        topology = make_topology("torus", P, processor_curve="hilbert")
        store = ResultStore(tmp_path)
        with pytest.raises(UnitFailedError):
            evaluate_acd_sharded(
                events,
                topology,
                memory_budget=BUDGET,
                store=store,
                policy=_policy(strict=True, faults="raise:unit=2:attempts=99"),
            )
        flushed = len(store)
        assert flushed >= 2  # units 0 and 1 completed and were persisted
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        rerun = evaluate_acd_sharded(events, topology, memory_budget=BUDGET, store=store)
        assert rerun.result == dense
        assert rerun.resumed == flushed
        assert rerun.computed == rerun.tiles - flushed

    def test_key_distinguishes_histograms_and_geometry(self, tmp_path):
        topology = make_topology("torus", P, processor_curve="hilbert")
        key = acd_tile_key(topology, "digest", 8, (0, 8), (8, 16))
        assert key["row"] == 0 and key["col"] == 8 and key["tile_side"] == 8
        other = acd_tile_key(topology, "digest2", 8, (0, 8), (8, 16))
        assert key != other
        events_a, events_b = _events(6), _events(7)
        store = ResultStore(tmp_path)
        ra = evaluate_acd_sharded(events_a, topology, memory_budget=BUDGET, store=store)
        rb = evaluate_acd_sharded(events_b, topology, memory_budget=BUDGET, store=store)
        assert rb.resumed == 0  # different histogram digest: no aliasing
        assert ra.result != rb.result


class TestPolicyAndErrors:
    def test_transient_fault_is_retried(self):
        events = _events(8)
        topology = make_topology("ring", P)
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        with obs.recording() as rec:
            result = evaluate_acd_sharded(
                events,
                topology,
                memory_budget=BUDGET,
                store=None,
                policy=_policy(faults="raise:unit=1"),
            )
        assert result.result == dense
        assert rec.counters["units.retries"] == 1

    def test_budget_is_required(self):
        events = _events(9)
        topology = make_topology("ring", P)
        with configure(memory_budget=None):
            with pytest.raises(ValueError, match="memory budget"):
                evaluate_acd_sharded(events, topology, store=None)

    def test_budget_from_runtime_config(self):
        events = _events(10)
        topology = make_topology("ring", P)
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        with configure(memory_budget=BUDGET):
            result = evaluate_acd_sharded(events, topology, store=None)
        assert result.result == dense and result.tiles > 1

    def test_rejects_oversized_histogram(self):
        events = CommunicationEvents()
        events.add([0, 9], [1, 3])
        hist = events.compact(16)
        with pytest.raises(ValueError, match="ranks"):
            evaluate_acd_sharded(
                hist, make_topology("ring", 8), memory_budget=BUDGET, store=None
            )

    def test_observability(self):
        events = _events(11)
        topology = make_topology("torus", P, processor_curve="hilbert")
        with obs.recording() as rec:
            result = evaluate_acd_sharded(
                events, topology, memory_budget=BUDGET, store=None
            )
        (span,) = rec.find_spans("acd.sharded")
        assert span.attrs["tiles"] == result.tiles
        assert rec.counters["acd.tiles"] == result.tiles
        assert "acd.tile_bytes_peak" in rec.gauges


class TestTopologyTransport:
    """Units receive a tiny registry spec, not megabytes of pickled layout."""

    def test_registry_topologies_ship_as_specs(self):
        from repro.experiments.sharded import (
            _TopologySpec,
            _resolve_topology,
            _topology_transport,
        )
        from repro.topology.cache import topology_cache_key
        from repro.topology.registry import topology_names

        for name in topology_names():
            topology = make_topology(name, P, processor_curve="hilbert")
            transport = _topology_transport(topology)
            assert isinstance(transport, _TopologySpec), name
            rebuilt = _resolve_topology(transport)
            assert topology_cache_key(rebuilt) == topology_cache_key(topology)
            # the worker-side memo hands back the same instance next time
            assert _resolve_topology(transport) is rebuilt

    def test_unregistered_topology_falls_back_to_instance(self):
        from repro.experiments.sharded import _resolve_topology, _topology_transport
        from repro.topology.ring import RingTopology

        class BespokeTopology(RingTopology):
            pass

        topology = BespokeTopology(P)
        transport = _topology_transport(topology)
        assert transport is topology  # pickled as-is, never misrebuilt
        assert _resolve_topology(transport) is topology

    def test_spec_transport_preserves_results(self, fresh_pool):
        events = _events(21)
        topology = make_topology("torus", P, processor_curve="zcurve")
        dense = compute_acd(events.compact(P), topology, memory_budget=None)
        result = evaluate_acd_sharded(
            events, topology, memory_budget=BUDGET, jobs=2, store=None
        )
        assert result.result == dense
